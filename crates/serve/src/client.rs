//! Blocking wire-protocol client mirroring [`Engine`]'s API.
//!
//! [`Client`] exposes the same methods with the same signatures as the
//! in-process engine — `classify`, `similar`, `embed_row`,
//! `apply_updates`, `stats`, `execute`, `execute_batch` — so the two are
//! interchangeable behind the protocol and their equivalence is directly
//! property-testable (`tests/network.rs` does exactly that). The only
//! additions are transport-shaped: [`Client::connect`]/[`Client::over`]
//! to establish and handshake a connection, and [`Client::pipeline`] to
//! exploit the protocol's request pipelining by sending many batches
//! before reading any reply.

use std::net::ToSocketAddrs;

use crate::codec::FrameCodec;
use crate::engine::{Envelope, GraphReport, Request, Response};
use crate::index::SearchPolicy;
use crate::metrics::MetricsReport;
use crate::registry::Update;
use crate::transport::{TcpTransport, Transport};
use crate::wire::{self, ClientFrame, ServerFrame, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::ServeError;

/// A connected, handshaken wire-protocol client (v6 current; pins,
/// search overrides, and metrics probes are refused on downlevel
/// connections; post-handshake frames ride the codec the negotiated
/// version implies — binary from v6, JSON below).
pub struct Client {
    transport: Box<dyn Transport>,
    version: u32,
    codec: FrameCodec,
    next_id: u64,
}

impl Client {
    /// Connect over TCP and handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Self::over(TcpTransport::connect(addr)?)
    }

    /// Handshake over an already-established transport (e.g. one end of
    /// [`duplex`](crate::transport::duplex)).
    pub fn over(transport: impl Transport + 'static) -> Result<Client, ServeError> {
        Self::over_versions(transport, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION)
    }

    /// Handshake advertising an explicit version range instead of this
    /// build's full `[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]`. Capping
    /// `max_version` below [`wire::BINARY_FRAME_VERSION`] forces a JSON
    /// connection against a v6 server — useful for codec comparisons
    /// and downlevel-compatibility tests.
    pub fn over_versions(
        transport: impl Transport + 'static,
        min_version: u32,
        max_version: u32,
    ) -> Result<Client, ServeError> {
        let mut transport: Box<dyn Transport> = Box::new(transport);
        // The handshake is always JSON, regardless of what gets
        // negotiated: the codec for the rest of the connection is an
        // outcome of this exchange, never an input to it.
        transport.send(wire::encode(&ClientFrame::Hello {
            min_version,
            max_version,
        }))?;
        let reply = transport
            .recv()?
            .ok_or_else(|| ServeError::protocol("server closed during handshake"))?;
        match wire::decode::<ServerFrame>(&reply)? {
            ServerFrame::HelloAck { version } => Ok(Client {
                transport,
                version,
                codec: FrameCodec::for_version(version),
                next_id: 0,
            }),
            ServerFrame::Error { error } => Err(error),
            other => Err(ServeError::protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// The protocol version negotiated in the handshake.
    pub fn protocol_version(&self) -> u32 {
        self.version
    }

    /// Execute an ordered batch remotely. Mirrors
    /// [`Engine::execute_batch`](crate::Engine::execute_batch): responses
    /// come back in request order and each request fails independently.
    /// The outer `Result` carries connection-level failures only.
    pub fn execute_batch(
        &mut self,
        batch: Vec<Envelope>,
    ) -> Result<Vec<Result<Response, ServeError>>, ServeError> {
        let expected = batch.len();
        let id = self.send_batch(batch)?;
        self.recv_batch(id, expected)
    }

    /// How many batches [`Client::pipeline`] keeps in flight. A blocking
    /// transport with a synchronous peer deadlocks if both sides fill
    /// their send buffers at once, so in-flight volume must stay bounded:
    /// after this many unanswered batches the client drains a reply
    /// before sending the next request.
    pub const PIPELINE_WINDOW: usize = 8;

    /// Pipelined execution: keep up to [`Client::PIPELINE_WINDOW`]
    /// batches in flight, collecting replies in order. Round-trip latency
    /// is paid once per window instead of once per batch. For batches so
    /// large that a single window could overflow both socket buffers,
    /// use [`Client::execute_batch`] (strict alternation) instead.
    pub fn pipeline(
        &mut self,
        batches: Vec<Vec<Envelope>>,
    ) -> Result<Vec<Vec<Result<Response, ServeError>>>, ServeError> {
        let mut results = Vec::with_capacity(batches.len());
        let mut in_flight: std::collections::VecDeque<(u64, usize)> =
            std::collections::VecDeque::with_capacity(Self::PIPELINE_WINDOW);
        for batch in batches {
            if in_flight.len() == Self::PIPELINE_WINDOW {
                let (id, expected) = in_flight.pop_front().expect("window is nonempty");
                results.push(self.recv_batch(id, expected)?);
            }
            let expected = batch.len();
            let id = self.send_batch(batch)?;
            in_flight.push_back((id, expected));
        }
        for (id, expected) in in_flight {
            results.push(self.recv_batch(id, expected)?);
        }
        Ok(results)
    }

    /// Execute one request. Mirrors [`Engine::execute`](crate::Engine::execute).
    pub fn execute(&mut self, graph: &str, request: Request) -> Result<Response, ServeError> {
        self.execute_batch(vec![Envelope::new(graph, request)])?
            .pop()
            .expect("one request in, one response out")
    }

    /// Mirrors [`Engine::classify`](crate::Engine::classify).
    pub fn classify(
        &mut self,
        graph: &str,
        vertices: Vec<u32>,
        k: usize,
    ) -> Result<Vec<u32>, ServeError> {
        self.classify_at(graph, vertices, k, None)
    }

    /// Mirrors [`Engine::classify_at`](crate::Engine::classify_at):
    /// classify against a pinned retained epoch.
    pub fn classify_at(
        &mut self,
        graph: &str,
        vertices: Vec<u32>,
        k: usize,
        at_epoch: Option<u64>,
    ) -> Result<Vec<u32>, ServeError> {
        self.classify_with(graph, vertices, k, at_epoch, None)
    }

    /// Mirrors [`Engine::classify_with`](crate::Engine::classify_with):
    /// classify with an epoch pin and/or a search-policy override.
    pub fn classify_with(
        &mut self,
        graph: &str,
        vertices: Vec<u32>,
        k: usize,
        at_epoch: Option<u64>,
        search: Option<SearchPolicy>,
    ) -> Result<Vec<u32>, ServeError> {
        match self.execute(
            graph,
            Request::Classify {
                vertices,
                k,
                at_epoch,
                search,
            },
        )? {
            Response::Classes(classes) => Ok(classes),
            other => Err(unexpected("Classes", &other)),
        }
    }

    /// Mirrors [`Engine::similar`](crate::Engine::similar).
    pub fn similar(
        &mut self,
        graph: &str,
        vertex: u32,
        top: usize,
    ) -> Result<Vec<(u32, f64)>, ServeError> {
        self.similar_at(graph, vertex, top, None)
    }

    /// Mirrors [`Engine::similar_at`](crate::Engine::similar_at).
    pub fn similar_at(
        &mut self,
        graph: &str,
        vertex: u32,
        top: usize,
        at_epoch: Option<u64>,
    ) -> Result<Vec<(u32, f64)>, ServeError> {
        self.similar_with(graph, vertex, top, at_epoch, None)
    }

    /// Mirrors [`Engine::similar_with`](crate::Engine::similar_with).
    pub fn similar_with(
        &mut self,
        graph: &str,
        vertex: u32,
        top: usize,
        at_epoch: Option<u64>,
        search: Option<SearchPolicy>,
    ) -> Result<Vec<(u32, f64)>, ServeError> {
        match self.execute(
            graph,
            Request::Similar {
                vertex,
                top,
                at_epoch,
                search,
            },
        )? {
            Response::Neighbors(neighbors) => Ok(neighbors),
            other => Err(unexpected("Neighbors", &other)),
        }
    }

    /// Mirrors [`Engine::embed_row`](crate::Engine::embed_row).
    pub fn embed_row(&mut self, graph: &str, vertex: u32) -> Result<Vec<f64>, ServeError> {
        self.embed_row_at(graph, vertex, None)
    }

    /// Mirrors [`Engine::embed_row_at`](crate::Engine::embed_row_at).
    pub fn embed_row_at(
        &mut self,
        graph: &str,
        vertex: u32,
        at_epoch: Option<u64>,
    ) -> Result<Vec<f64>, ServeError> {
        match self.execute(graph, Request::EmbedRow { vertex, at_epoch })? {
            Response::Row(row) => Ok(row),
            other => Err(unexpected("Row", &other)),
        }
    }

    /// Mirrors [`Engine::apply_updates`](crate::Engine::apply_updates):
    /// returns `(applied, epoch)`.
    pub fn apply_updates(
        &mut self,
        graph: &str,
        updates: Vec<Update>,
    ) -> Result<(usize, u64), ServeError> {
        match self.execute(graph, Request::ApplyUpdates { updates })? {
            Response::Applied { applied, epoch } => Ok((applied, epoch)),
            other => Err(unexpected("Applied", &other)),
        }
    }

    /// Mirrors [`Engine::stats`](crate::Engine::stats).
    pub fn stats(&mut self, graph: &str) -> Result<GraphReport, ServeError> {
        self.stats_at(graph, None)
    }

    /// Mirrors [`Engine::stats_at`](crate::Engine::stats_at).
    pub fn stats_at(
        &mut self,
        graph: &str,
        at_epoch: Option<u64>,
    ) -> Result<GraphReport, ServeError> {
        match self.execute(graph, Request::Stats { at_epoch })? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Mirrors [`Engine::metrics`](crate::Engine::metrics): the server's
    /// observability counters (protocol v4).
    pub fn metrics(&mut self, graph: &str) -> Result<MetricsReport, ServeError> {
        match self.execute(graph, Request::Metrics)? {
            Response::Metrics(report) => Ok(report),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Tell the server this connection is done (politer than dropping).
    pub fn goodbye(mut self) -> Result<(), ServeError> {
        let bytes = self.codec.encode_client(&ClientFrame::Goodbye);
        self.transport.send(bytes)
    }

    fn send_batch(&mut self, requests: Vec<Envelope>) -> Result<u64, ServeError> {
        // Epoch pins are a v2 extension. A v1 server would silently
        // ignore the `at_epoch` key and answer from the newest epoch —
        // wrong data, no error — so refuse to send one downlevel.
        if self.version < wire::EPOCH_PIN_VERSION {
            if let Some(env) = requests.iter().find(|e| e.request.at_epoch().is_some()) {
                return Err(ServeError::protocol(format!(
                    "at_epoch-pinned {:?} request requires protocol v{} \
                     (negotiated v{})",
                    env.graph,
                    wire::EPOCH_PIN_VERSION,
                    self.version
                )));
            }
        }
        // Search overrides are a v3 extension. A downlevel server would
        // silently ignore the `search` key and answer with its own
        // default policy — a broken exactness contract, no error — so
        // refuse to send one.
        if self.version < wire::SEARCH_POLICY_VERSION {
            if let Some(env) = requests.iter().find(|e| e.request.search().is_some()) {
                return Err(ServeError::protocol(format!(
                    "search-policy override on {:?} requires protocol v{} \
                     (negotiated v{})",
                    env.graph,
                    wire::SEARCH_POLICY_VERSION,
                    self.version
                )));
            }
        }
        // Metrics is a v4 request — a brand-new enum variant, not an
        // extra key. A downlevel server would reject it as a malformed
        // frame and *close the connection*, killing every pipelined
        // batch with it — so refuse to send one.
        if self.version < wire::METRICS_VERSION {
            if let Some(env) = requests
                .iter()
                .find(|e| matches!(e.request, Request::Metrics))
            {
                return Err(ServeError::protocol(format!(
                    "Metrics request on {:?} requires protocol v{} \
                     (negotiated v{})",
                    env.graph,
                    wire::METRICS_VERSION,
                    self.version
                )));
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let bytes = self
            .codec
            .encode_client(&ClientFrame::Batch { id, requests });
        self.transport.send(bytes)?;
        Ok(id)
    }

    fn recv_batch(
        &mut self,
        id: u64,
        expected: usize,
    ) -> Result<Vec<Result<Response, ServeError>>, ServeError> {
        let reply = self
            .transport
            .recv()?
            .ok_or_else(|| ServeError::protocol("server closed with a batch in flight"))?;
        match self.codec.decode_server(&reply)? {
            ServerFrame::Batch { id: got, results } if got == id => {
                if results.len() != expected {
                    return Err(ServeError::protocol(format!(
                        "batch {id}: sent {expected} requests, got {} results",
                        results.len()
                    )));
                }
                Ok(results)
            }
            ServerFrame::Batch { id: got, .. } => Err(ServeError::protocol(format!(
                "response for batch {got} while awaiting {id}"
            ))),
            ServerFrame::Error { error } => Err(error),
            other => Err(ServeError::protocol(format!(
                "expected Batch, got {other:?}"
            ))),
        }
    }
}

fn unexpected(expected: &str, got: &Response) -> ServeError {
    ServeError::protocol(format!("expected {expected} response, got {got:?}"))
}
