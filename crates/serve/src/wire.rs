//! Wire protocol: versioned, transport-agnostic frame types (v6 current,
//! v1–v5 still spoken).
//!
//! A *frame* is one [`ClientFrame`] or [`ServerFrame`] encoded as compact
//! JSON via the workspace serde layer (externally-tagged enums, exact
//! 64-bit integers) on protocol v1–v5, or as a CRC-checked tagged binary
//! body on v6+ ([`crate::codec`]). Framing — how frame boundaries are
//! found in a byte stream — belongs to the
//! [`Transport`](crate::transport::Transport): TCP length-prefixes each
//! frame with a big-endian `u32`, the in-process duplex moves the
//! encoded `Vec<u8>` through a channel untouched.
//!
//! # Protocol versions at a glance
//!
//! | Version | Added | Negotiation / byte-stability guarantee |
//! |---------|-------|----------------------------------------|
//! | v1 | handshake, pipelined `Batch`, per-slot errors | baseline; still spoken ([`MIN_PROTOCOL_VERSION`]) |
//! | v2 | `at_epoch` pins on reads; `EpochEvicted`/`Overloaded` codes | unpinned requests byte-identical to v1 |
//! | v3 | per-request `search` policy overrides | requests without overrides byte-identical to v2 |
//! | v4 | `Metrics` request/response pair | every v1–v3 frame byte-identical |
//! | v5 | replication: `ReadOnlyReplica` code, `replication` report block | non-replicating reports byte-identical to v4 |
//! | v6 | binary frame codec ([`BINARY_FRAME_VERSION`], [`crate::codec`]) | handshake stays JSON; v1–v5 JSON frames untouched |
//!
//! [`negotiate`] always picks the highest version both sides speak —
//! `min(client_max, PROTOCOL_VERSION)` — and fails with a typed
//! [`ServeError::VersionUnsupported`] naming both ranges when the
//! ranges are disjoint. Every bump is additive: a frame that does not
//! use a newer feature encodes byte-identically to its oldest form
//! (pinned by `tests/wire_roundtrip.rs`), so old clients and servers
//! interoperate without flags.
//!
//! Connection lifecycle:
//!
//! 1. client sends [`ClientFrame::Hello`] advertising the protocol
//!    versions it can speak;
//! 2. server answers [`ServerFrame::HelloAck`] with the negotiated
//!    version ([`negotiate`]), or [`ServerFrame::Error`] with
//!    [`ServeError::VersionUnsupported`] and closes;
//! 3. client sends any number of [`ClientFrame::Batch`] frames — each an
//!    ordered [`Envelope`] batch with a client-chosen `id` — without
//!    waiting for replies (pipelining); the server executes each batch
//!    through [`Engine::execute_batch`](crate::Engine::execute_batch) and
//!    answers [`ServerFrame::Batch`] frames echoing the `id`s in order;
//! 4. client sends [`ClientFrame::Goodbye`] (or just closes) to end the
//!    connection.
//!
//! Per-request failures ride *inside* `ServerFrame::Batch` as
//! `Err(ServeError)` results; `ServerFrame::Error` is reserved for
//! connection-fatal conditions (handshake failure, malformed frame).
//!
//! # Protocol v2: epoch-pinned reads
//!
//! v2 adds an optional `at_epoch` field to the read requests
//! (`Classify`/`Similar`/`EmbedRow`/`Stats`) and two error codes
//! ([`crate::ErrorCode::EpochEvicted`] = 13,
//! [`crate::ErrorCode::Overloaded`] = 14). The extension is **additive**:
//! an unpinned request encodes byte-identically to its v1 frame (no
//! `at_epoch` key; `Stats` stays the bare string), and v1 frames decode
//! with `at_epoch: None` — so this build still speaks v1
//! ([`MIN_PROTOCOL_VERSION`]). A client that negotiated v1 refuses to
//! send pins ([`EPOCH_PIN_VERSION`]): a v1 server would silently ignore
//! the unknown key and answer from the newest epoch.
//!
//! # Protocol v3: search-policy overrides (approximate search)
//!
//! v3 adds an optional `search` field to `Classify` and `Similar` — a
//! per-request [`SearchPolicy`](crate::SearchPolicy) override choosing
//! between the exact scan and IVF approximate search (see
//! [`crate::index`]). Like v2, the extension is **additive**: a request
//! without an override encodes byte-identically to its v2 (and, if
//! unpinned, v1) frame, and older frames decode with `search: None`. A
//! client that negotiated below [`SEARCH_POLICY_VERSION`] refuses to
//! send overrides: a downlevel server would silently ignore the key and
//! answer with its configured default — plausible data, wrong
//! exactness contract.
//!
//! # Protocol v4: server metrics
//!
//! v4 adds the [`Request::Metrics`](crate::Request::Metrics) /
//! [`Response::Metrics`](crate::Response::Metrics) pair: a read-only
//! observability probe returning the server's atomically-maintained
//! counters ([`MetricsReport`](crate::metrics::MetricsReport)) —
//! per-request-type counts with log2-bucketed latency histograms, batch
//! coalesce sizes, back-pressure (`Overloaded`) rejections, epoch
//! history depth, WAL fsync count, and IVF index build/hit counters.
//! Like v2 and v3, the extension is **additive**: every v1–v3 request
//! still encodes byte-identically (`Metrics` is a brand-new variant, a
//! bare `"Metrics"` string in the externally-tagged encoding), and
//! older frames decode unchanged. A client that negotiated below
//! [`METRICS_VERSION`] refuses to send `Metrics`: a downlevel server
//! would reject the unknown variant as a malformed frame and close the
//! connection, taking the client's pipelined batches with it.
//!
//! # Protocol v5: replication
//!
//! v5 is the read-replica release ([`crate::replicate`]). On the
//! client-facing wire it adds:
//!
//! * the [`crate::ErrorCode::ReadOnlyReplica`] = 15 error code — a
//!   write (`ApplyUpdates`) sent to a follower is rejected with it,
//!   naming the leader to retry against;
//! * an optional `replication` block on
//!   [`GraphReport`](crate::GraphReport) and
//!   [`MetricsReport`](crate::metrics::MetricsReport)
//!   ([`ReplicationReport`](crate::metrics::ReplicationReport)): role,
//!   shipped-record/byte counters on a leader, lag in epochs and LSNs
//!   plus the durable high-water LSN on a follower.
//!
//! Like every extension before it, v5 is **additive**: a report from a
//! non-replicating server omits the `replication` key entirely, so
//! v1–v4 frames stay byte-identical (pinned by
//! `tests/wire_roundtrip.rs`), and pre-v5 frames decode with
//! `replication: None`. The leader→follower stream itself does *not*
//! ride this protocol — it is a separate binary CRC-framed stream
//! documented in [`crate::replicate`].
//!
//! # Protocol v6: binary frames
//!
//! v6 changes the frame *encoding*, not the frame *vocabulary*: the
//! same `ClientFrame`/`ServerFrame` values ride a compact tagged binary
//! layout with a CRC-32 body checksum ([`crate::codec`]) instead of
//! JSON. The handshake (`Hello`, `HelloAck`, and any pre-negotiation
//! `Error`) is **always JSON** in both directions, so negotiation
//! itself never depends on the version being negotiated; every frame
//! after a `HelloAck { version: 6+ }` is binary. A v6 client meeting a
//! v5 server negotiates 5 and speaks JSON automatically — no refusal
//! gate is needed because the feature set is unchanged. v1–v5 JSON
//! bytes stay pinned by `tests/wire_roundtrip.rs`.
//!
//! # Within-v6 additive extensions: promotion & fencing
//!
//! Follower promotion added two things to the vocabulary without a
//! version bump, both additive in the same sense as v2–v5:
//!
//! * the [`crate::ErrorCode::StaleLeader`] = 16 error code — a write
//!   sent to a *deposed* leader (one that has learned, via a follower
//!   handshake, that a newer leader epoch exists) is rejected with it,
//!   carrying both the deposed epoch and the newer epoch seen. Error
//!   codes are an append-only registry, so downlevel clients surface
//!   the code number and message verbatim;
//! * `leader_epoch` and `fenced` fields at the tail of
//!   [`ReplicationReport`](crate::metrics::ReplicationReport) — JSON
//!   appends keys, the binary codec appends fields, and the pinned v5
//!   stats bytes in `tests/wire_roundtrip.rs` were re-pinned with them.
//!
//! The epoch handshake itself (leader-epoch fencing tokens, stream
//! version 2) rides the replication stream, not this protocol — see
//! [`crate::replicate`] for the v1↔v2 negotiation rules there.

use serde::{Deserialize, Serialize};

use crate::engine::{Envelope, Response};
use crate::ServeError;

/// Current (and highest supported) protocol version.
pub const PROTOCOL_VERSION: u32 = 6;

/// Oldest protocol version this build still speaks.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// First protocol version carrying `at_epoch` pins on read requests.
pub const EPOCH_PIN_VERSION: u32 = 2;

/// First protocol version carrying per-request `search` policy
/// overrides on `Classify`/`Similar`.
pub const SEARCH_POLICY_VERSION: u32 = 3;

/// First protocol version carrying the `Metrics` observability request.
pub const METRICS_VERSION: u32 = 4;

/// First protocol version carrying the `ReadOnlyReplica` error code and
/// the additive `replication` block on `Stats`/`Metrics` reports.
pub const REPLICA_VERSION: u32 = 5;

/// First protocol version whose post-handshake frames ride the binary
/// codec ([`crate::codec`]) instead of JSON. The handshake itself is
/// always JSON.
pub const BINARY_FRAME_VERSION: u32 = 6;

/// Upper bound on one frame's encoded size (64 MiB). Both sides reject
/// larger frames as a protocol violation instead of allocating blindly.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Frames a client may send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Handshake: the closed version range the client can speak.
    Hello { min_version: u32, max_version: u32 },
    /// One ordered request batch; `id` is echoed by the response.
    Batch { id: u64, requests: Vec<Envelope> },
    /// Clean shutdown of this connection.
    Goodbye,
}

/// Frames a server may send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerFrame {
    /// Handshake accepted at `version`.
    HelloAck { version: u32 },
    /// Results for the batch with the same `id`, in request order; each
    /// request fails or succeeds independently.
    Batch {
        id: u64,
        results: Vec<Result<Response, ServeError>>,
    },
    /// Connection-fatal error; the server closes after sending this.
    Error { error: ServeError },
}

/// Encode a frame body as compact JSON bytes.
pub fn encode<T: Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_vec(msg).expect("wire types always serialize")
}

/// Decode a frame body. Any parse or shape mismatch is a
/// [`ServeError::Protocol`] — malformed input from a peer, not a bug.
pub fn decode<T: Deserialize>(bytes: &[u8]) -> Result<T, ServeError> {
    serde_json::from_slice(bytes)
        .map_err(|e| ServeError::protocol(format!("undecodable frame: {e}")))
}

/// Pick the protocol version for a connection: the highest version both
/// sides support, or a typed error naming both ranges.
pub fn negotiate(client_min: u32, client_max: u32) -> Result<u32, ServeError> {
    let version = client_max.min(PROTOCOL_VERSION);
    if client_min <= client_max && version >= MIN_PROTOCOL_VERSION && version >= client_min {
        Ok(version)
    } else {
        Err(ServeError::VersionUnsupported {
            client_min,
            client_max,
            server_min: MIN_PROTOCOL_VERSION,
            server_max: PROTOCOL_VERSION,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Request;

    #[test]
    fn negotiation_picks_highest_common_version() {
        assert_eq!(negotiate(1, 1), Ok(1), "v1-only clients still speak");
        assert_eq!(negotiate(1, 2), Ok(2), "v2-only clients still speak");
        assert_eq!(negotiate(2, 2), Ok(2));
        assert_eq!(negotiate(1, 3), Ok(3), "v3-only clients still speak");
        assert_eq!(negotiate(3, 3), Ok(3));
        assert_eq!(negotiate(1, 4), Ok(4));
        assert_eq!(negotiate(4, 4), Ok(4));
        assert_eq!(negotiate(1, 5), Ok(5), "v5-capped clients still speak");
        assert_eq!(negotiate(5, 5), Ok(5));
        assert_eq!(negotiate(1, 6), Ok(6), "v6 clients get binary frames");
        assert_eq!(negotiate(6, 6), Ok(6));
        assert_eq!(
            negotiate(1, 8),
            Ok(PROTOCOL_VERSION),
            "future-proof client downgrades"
        );
        assert_eq!(negotiate(6, 8), Ok(6), "min within range downgrades too");
        assert!(matches!(
            negotiate(7, 8),
            Err(ServeError::VersionUnsupported { .. })
        ));
        assert!(matches!(
            negotiate(0, 0),
            Err(ServeError::VersionUnsupported { .. })
        ));
        assert!(
            matches!(negotiate(3, 1), Err(ServeError::VersionUnsupported { .. })),
            "inverted range"
        );
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            ClientFrame::Hello {
                min_version: 1,
                max_version: 7,
            },
            ClientFrame::Batch {
                id: u64::MAX,
                requests: vec![
                    Envelope::new("g", Request::classify(vec![0, 1], 3)),
                    Envelope::new("h", Request::stats()),
                    Envelope::new("h", Request::stats().pinned(9)),
                ],
            },
            ClientFrame::Goodbye,
        ];
        for f in frames {
            assert_eq!(decode::<ClientFrame>(&encode(&f)).unwrap(), f);
        }
        let frames = vec![
            ServerFrame::HelloAck { version: 1 },
            ServerFrame::Batch {
                id: 3,
                results: vec![
                    Ok(Response::Classes(vec![1, 0])),
                    Err(ServeError::UnknownGraph { graph: "h".into() }),
                ],
            },
            ServerFrame::Error {
                error: ServeError::protocol("bad"),
            },
        ];
        for f in frames {
            assert_eq!(decode::<ServerFrame>(&encode(&f)).unwrap(), f);
        }
    }

    #[test]
    fn garbage_decodes_to_protocol_error() {
        for bad in [&b"not json"[..], b"{\"Nope\":1}", b"", b"\xff\xfe"] {
            assert!(matches!(
                decode::<ClientFrame>(bad),
                Err(ServeError::Protocol { .. })
            ));
        }
    }
}
