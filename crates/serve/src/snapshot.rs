//! Epoch-versioned, immutable read views, published copy-on-write per
//! shard.
//!
//! A [`Snapshot`] is what queries see: one consistent epoch of a served
//! graph. It is not a monolithic matrix but an `Arc`'d vector of
//! per-shard [`ShardBlock`]s, each owning its shard's slice of the
//! embedding, its raw labels, and its labeled train set. The registry's
//! write path publishes a new epoch by rebuilding **only the blocks a
//! batch dirtied** and structurally sharing the rest with the parent
//! epoch (`Arc::ptr_eq`-provable sharing — see
//! `tests/cow_property.rs`). Readers holding a snapshot are never
//! disturbed, and a bounded history of recent epochs can be retained for
//! time-travel reads ([`crate::HistoryPolicy`]).
//!
//! Which updates dirty which blocks follows from GEE's normalization
//! `Z(u, c) = Ẑ(u, c) / count(c)`:
//!
//! * an edge op touches `Ẑ` rows of its two endpoints only → the two
//!   owning shards' **rows** are dirty;
//! * a label move changes `count(old)`/`count(new)`, rescaling those
//!   columns in **every** row → all shards' rows are dirty, but only the
//!   relabeled vertex's shard has dirty **labels** (and train set).
//!
//! The second case is why labels and train sets are separately `Arc`'d
//! inside a block: a block rebuilt for rows alone shares its parent's
//! labels slice and skips regrouping the train set.

use std::sync::{Arc, OnceLock};

use gee_core::{Embedding, Labels};

use crate::index::IvfIndex;
use crate::shard::ShardLayout;

/// One shard's slice of an epoch: embedding rows, raw labels, and the
/// labeled train set for vertices `lo..hi`.
#[derive(Debug)]
pub struct ShardBlock {
    lo: u32,
    hi: u32,
    dim: usize,
    /// Row-major rows of vertices `lo..hi` (`(hi - lo) × dim`).
    rows: Vec<f64>,
    /// Raw labels of `lo..hi` (`-1` = unknown). `Arc`'d separately so a
    /// rows-only rebuild shares it with the parent block.
    labels: Arc<Vec<i32>>,
    /// Labeled `(vertex, class)` pairs of this shard, vertex ascending.
    /// Shared whenever `labels` is shared (regrouping skipped).
    train: Arc<Vec<(u32, u32)>>,
    /// Lazily built IVF index over this block's rows (`None` cached for
    /// blocks below [`crate::index::ANN_MIN_SHARD_ROWS`]). Lives inside
    /// the block so CoW publication re-indexes only dirty shards: a
    /// clean shard is the parent's block `Arc`, cache included, while a
    /// rebuilt block starts empty and re-indexes on first ANN use.
    ann: OnceLock<Option<Arc<IvfIndex>>>,
}

impl ShardBlock {
    /// Build a block from fresh rows and labels, grouping the train set.
    pub(crate) fn build(lo: u32, hi: u32, dim: usize, rows: Vec<f64>, labels: Vec<i32>) -> Self {
        debug_assert_eq!(rows.len(), (hi - lo) as usize * dim);
        debug_assert_eq!(labels.len(), (hi - lo) as usize);
        let train: Vec<(u32, u32)> = labels
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= 0)
            .map(|(i, &c)| (lo + i as u32, c as u32))
            .collect();
        ShardBlock {
            lo,
            hi,
            dim,
            rows,
            labels: Arc::new(labels),
            train: Arc::new(train),
            ann: OnceLock::new(),
        }
    }

    /// A block with fresh rows but this block's labels and train set
    /// structurally shared — the rows-only CoW rebuild. Skips the
    /// `group_by_shard` regrouping entirely.
    pub(crate) fn with_rows(&self, rows: Vec<f64>) -> Self {
        debug_assert_eq!(rows.len(), self.rows.len());
        ShardBlock {
            lo: self.lo,
            hi: self.hi,
            dim: self.dim,
            rows,
            labels: self.labels.clone(),
            train: self.train.clone(),
            // Fresh rows invalidate any index; the rebuilt block
            // re-indexes lazily on its first ANN query.
            ann: OnceLock::new(),
        }
    }

    /// The half-open vertex range `[lo, hi)` this block covers.
    pub fn range(&self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    /// Row-major embedding rows of the covered range.
    pub fn rows(&self) -> &[f64] {
        &self.rows
    }

    /// Embedding row of global vertex `v` (must lie in this block).
    #[inline]
    pub fn row(&self, v: u32) -> &[f64] {
        debug_assert!(self.lo <= v && v < self.hi);
        let i = (v - self.lo) as usize;
        &self.rows[i * self.dim..(i + 1) * self.dim]
    }

    /// Raw labels (`-1` = unknown) of the covered range.
    pub fn labels(&self) -> &[i32] {
        &self.labels
    }

    /// Labeled `(vertex, class)` pairs of this shard, vertex ascending.
    pub fn train(&self) -> &[(u32, u32)] {
        &self.train
    }

    /// Whether this block's labels slice is structurally shared with
    /// `other`'s (and therefore its train set too).
    pub fn shares_labels_with(&self, other: &ShardBlock) -> bool {
        Arc::ptr_eq(&self.labels, &other.labels)
    }

    /// Embedding dimension `K` of this block's rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The block's IVF index, building and caching it on first use.
    /// `None` for blocks below [`crate::index::ANN_MIN_SHARD_ROWS`]
    /// (the exact sweep is used there). Deterministic in the block's
    /// content, so recovered blocks re-index identically.
    pub fn ann_index(&self) -> Option<&Arc<IvfIndex>> {
        self.ann
            .get_or_init(|| IvfIndex::build(self).map(Arc::new))
            .as_ref()
    }

    /// The cached IVF index without building one: `None` when no ANN
    /// query (or [`Snapshot::warm_ann_indexes`]) has touched this block
    /// yet. Lets tests prove which epochs share an index by pointer.
    pub fn ann_index_cached(&self) -> Option<Arc<IvfIndex>> {
        self.ann.get().and_then(Clone::clone)
    }

    /// Whether an index build was already attempted for this block —
    /// distinguishes "never touched" from a cached built-as-`None`
    /// (too-small block), which [`ShardBlock::ann_index_cached`] cannot.
    /// Drives the registry's IVF build/hit metrics.
    pub(crate) fn ann_initialized(&self) -> bool {
        self.ann.get().is_some()
    }
}

/// One immutable epoch of a served graph: an `Arc`'d set of per-shard
/// [`ShardBlock`]s.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Monotone version: 0 at registration, +1 per applied update batch.
    pub epoch: u64,
    num_vertices: usize,
    dim: usize,
    blocks: Arc<Vec<Arc<ShardBlock>>>,
}

impl Snapshot {
    /// Freeze an epoch from a fully-materialized embedding and labels,
    /// slicing both per shard (the from-scratch build used at
    /// registration; the write path publishes copy-on-write instead).
    pub fn new(epoch: u64, embedding: Embedding, labels: Labels, layout: &ShardLayout) -> Self {
        let k = embedding.dim();
        let n = embedding.num_vertices();
        assert_eq!(labels.len(), n, "labels must cover every vertex");
        let data = embedding.as_slice();
        let raw = labels.raw_slice();
        let blocks: Vec<Arc<ShardBlock>> = layout
            .ranges()
            .iter()
            .map(|&(lo, hi)| {
                Arc::new(ShardBlock::build(
                    lo,
                    hi,
                    k,
                    data[lo as usize * k..hi as usize * k].to_vec(),
                    raw[lo as usize..hi as usize].to_vec(),
                ))
            })
            .collect();
        Snapshot::from_blocks(epoch, n, k, blocks)
    }

    /// Assemble an epoch from per-shard blocks (the CoW publication
    /// path). Blocks must tile `0..num_vertices` in order.
    pub(crate) fn from_blocks(
        epoch: u64,
        num_vertices: usize,
        dim: usize,
        blocks: Vec<Arc<ShardBlock>>,
    ) -> Self {
        debug_assert!(!blocks.is_empty());
        debug_assert_eq!(blocks.last().map(|b| b.hi as usize), Some(num_vertices));
        Snapshot {
            epoch,
            num_vertices,
            dim,
            blocks: Arc::new(blocks),
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Embedding dimension `K`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The per-shard blocks, in shard order.
    pub fn blocks(&self) -> &[Arc<ShardBlock>] {
        &self.blocks
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.blocks.len()
    }

    /// Which block owns vertex `v`.
    #[inline]
    fn block_of(&self, v: u32) -> &ShardBlock {
        debug_assert!((v as usize) < self.num_vertices);
        let i = self.blocks.partition_point(|b| b.hi <= v);
        &self.blocks[i]
    }

    /// Embedding row of vertex `v`.
    #[inline]
    pub fn row(&self, v: u32) -> &[f64] {
        self.block_of(v).row(v)
    }

    /// Label of `v` (`None` = unknown).
    pub fn label(&self, v: u32) -> Option<u32> {
        let b = self.block_of(v);
        let raw = b.labels[(v - b.lo) as usize];
        (raw >= 0).then_some(raw as u32)
    }

    /// Iterate `(vertex, class)` over labeled vertices, shard by shard
    /// (vertex ascending overall, since shards are contiguous).
    pub fn iter_labeled(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.blocks.iter().flat_map(|b| b.train.iter().copied())
    }

    /// Total labeled vertices across shards.
    pub fn num_labeled(&self) -> usize {
        self.blocks.iter().map(|b| b.train.len()).sum()
    }

    /// Build (and cache) every block's IVF index now, shard-parallel,
    /// instead of lazily on first ANN query — for serving start-up and
    /// benches that want the first query warm. Returns how many blocks
    /// carry an index (small blocks stay exact).
    pub fn warm_ann_indexes(&self) -> usize {
        use rayon::prelude::*;
        self.blocks
            .par_iter()
            .map(|b| usize::from(b.ann_index().is_some()))
            .sum()
    }

    /// Materialize the full `n × K` embedding (concatenating block rows).
    /// O(nK); for tests, tools, and oracles — queries read blocks
    /// directly.
    pub fn to_embedding(&self) -> Embedding {
        let mut data = Vec::with_capacity(self.num_vertices * self.dim);
        for b in self.blocks.iter() {
            data.extend_from_slice(&b.rows);
        }
        Embedding::from_vec(self.num_vertices, self.dim, data)
    }

    /// The full raw label vector (`-1` = unknown), concatenated.
    pub fn labels_vec(&self) -> Vec<i32> {
        let mut out = Vec::with_capacity(self.num_vertices);
        for b in self.blocks.iter() {
            out.extend_from_slice(&b.labels);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_train_set_by_shard() {
        let layout = ShardLayout::new(6, 2);
        let labels =
            Labels::from_options_with_k(&[Some(1), None, Some(0), Some(2), None, Some(1)], 3);
        let z = Embedding::zeros(6, 3);
        let s = Snapshot::new(0, z, labels, &layout);
        assert_eq!(s.epoch, 0);
        assert_eq!(s.num_shards(), 2);
        assert_eq!(s.blocks()[0].train(), &[(0, 1), (2, 0)]);
        assert_eq!(s.blocks()[1].train(), &[(3, 2), (5, 1)]);
        assert_eq!(s.num_labeled(), 4);
        assert_eq!(
            s.iter_labeled().collect::<Vec<_>>(),
            vec![(0, 1), (2, 0), (3, 2), (5, 1)]
        );
    }

    #[test]
    fn rows_and_labels_match_the_flat_inputs() {
        let n = 11;
        let k = 3;
        let data: Vec<f64> = (0..n * k).map(|i| i as f64 * 0.5).collect();
        let z = Embedding::from_vec(n, k, data.clone());
        let opts: Vec<Option<u32>> = (0..n).map(|v| (v % 3 == 0).then_some(1)).collect();
        let labels = Labels::from_options_with_k(&opts, 2);
        let layout = ShardLayout::new(n, 4);
        let s = Snapshot::new(7, z, labels, &layout);
        for v in 0..n as u32 {
            assert_eq!(
                s.row(v),
                &data[v as usize * k..(v as usize + 1) * k],
                "row {v}"
            );
            assert_eq!(s.label(v), (v % 3 == 0).then_some(1), "label {v}");
        }
        assert_eq!(s.to_embedding().as_slice(), &data[..]);
        assert_eq!(s.labels_vec().len(), n);
    }

    #[test]
    fn with_rows_shares_labels_and_train() {
        let b = ShardBlock::build(3, 6, 2, vec![0.0; 6], vec![1, -1, 0]);
        let rebuilt = b.with_rows(vec![9.0; 6]);
        assert!(rebuilt.shares_labels_with(&b));
        assert!(Arc::ptr_eq(&rebuilt.train, &b.train));
        assert_eq!(rebuilt.train(), &[(3, 1), (5, 0)]);
        assert_eq!(rebuilt.row(4), &[9.0, 9.0]);
    }
}
