//! Epoch-versioned, immutable read views.
//!
//! A [`Snapshot`] is what queries see: the embedding matrix, the labels it
//! was computed under, and the per-shard labeled train set for kNN — all
//! frozen at a single epoch. Snapshots are published atomically by the
//! registry's write path and shared by `Arc`, so an arbitrarily long batch
//! of reads observes one consistent state no matter how many writes land
//! concurrently behind it.

use std::sync::Arc;

use gee_core::{Embedding, Labels};

use crate::shard::ShardLayout;

/// One immutable epoch of a served graph.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotone version: 0 at registration, +1 per applied update batch.
    pub epoch: u64,
    /// The `n × K` embedding at this epoch.
    pub embedding: Arc<Embedding>,
    /// Labels the embedding was computed under.
    pub labels: Arc<Labels>,
    /// Labeled `(vertex, class)` pairs grouped by owning shard, vertex
    /// ascending within each shard. Precomputed so every `Classify` query
    /// scans shards without re-deriving the train set.
    pub train_by_shard: Arc<Vec<Vec<(u32, u32)>>>,
}

impl Snapshot {
    /// Freeze an epoch from its parts, bucketing the labeled vertices per
    /// shard.
    pub fn new(epoch: u64, embedding: Embedding, labels: Labels, layout: &ShardLayout) -> Self {
        let train_by_shard = layout.group_by_shard(labels.iter_labeled());
        Snapshot {
            epoch,
            embedding: Arc::new(embedding),
            labels: Arc::new(labels),
            train_by_shard: Arc::new(train_by_shard),
        }
    }

    /// Total labeled vertices across shards.
    pub fn num_labeled(&self) -> usize {
        self.train_by_shard.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_train_set_by_shard() {
        let layout = ShardLayout::new(6, 2);
        let labels =
            Labels::from_options_with_k(&[Some(1), None, Some(0), Some(2), None, Some(1)], 3);
        let z = Embedding::zeros(6, 3);
        let s = Snapshot::new(0, z, labels, &layout);
        assert_eq!(s.epoch, 0);
        assert_eq!(s.train_by_shard.len(), 2);
        assert_eq!(s.train_by_shard[0], vec![(0, 1), (2, 0)]);
        assert_eq!(s.train_by_shard[1], vec![(3, 2), (5, 1)]);
        assert_eq!(s.num_labeled(), 4);
    }
}
