//! Tiny readiness-polling layer for the worker-pool server core
//! ([`crate::server`]).
//!
//! One worker thread multiplexes many nonblocking connections, so it
//! must sleep until *some* socket is readable (or writable, while a
//! reply is partially flushed) without burning a core. On Unix that is
//! exactly `poll(2)`, reached through a one-function `extern "C"`
//! declaration — `std` already links libc, so this adds no dependency.
//! Elsewhere a degraded fallback reports every source ready after a
//! short sleep: correctness is unchanged (the sockets are nonblocking,
//! so a spurious "ready" just reads `WouldBlock`), only efficiency
//! drops to 1 kHz busy-wait.

use std::net::TcpStream;
use std::time::Duration;

/// Which events one source is waiting for.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Interest {
    pub readable: bool,
    pub writable: bool,
}

/// What [`wait`] observed for the matching source.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Readiness {
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup: the connection should be torn down.
    pub error: bool,
}

/// A pollable source. TCP connections and the worker's wakeup channel
/// poll through the same set.
pub(crate) enum Source<'a> {
    Tcp(&'a TcpStream),
    #[cfg(unix)]
    Wake(&'a std::os::unix::net::UnixStream),
}

/// Wakes one worker out of [`wait`] from another thread.
pub(crate) struct Waker {
    #[cfg(unix)]
    tx: std::os::unix::net::UnixStream,
}

/// The worker-side end of a wakeup channel; its readability is polled
/// alongside the connections.
pub(crate) struct WakeRx {
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

/// A connected wakeup pair. On platforms without a pollable pair the
/// channel is a no-op: [`wait`]'s fallback already returns on a short
/// timeout, so wakeups are only a latency optimization there.
pub(crate) fn wake_channel() -> std::io::Result<(Waker, WakeRx)> {
    #[cfg(unix)]
    {
        let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((Waker { tx }, WakeRx { rx }))
    }
    #[cfg(not(unix))]
    {
        Ok((Waker {}, WakeRx {}))
    }
}

impl Waker {
    /// Nudge the receiver. Best-effort: a full pipe means a wakeup is
    /// already pending, which is all a wakeup needs to convey.
    pub(crate) fn wake(&self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            let _ = (&self.tx).write(&[1]);
        }
    }
}

impl WakeRx {
    /// The pollable source for this channel, if the platform has one.
    pub(crate) fn source(&self) -> Option<Source<'_>> {
        #[cfg(unix)]
        {
            Some(Source::Wake(&self.rx))
        }
        #[cfg(not(unix))]
        {
            None
        }
    }

    /// Swallow pending wakeup bytes so the channel doesn't stay
    /// readable forever.
    pub(crate) fn drain(&self) {
        #[cfg(unix)]
        {
            use std::io::Read;
            let mut sink = [0u8; 64];
            while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

#[cfg(unix)]
mod sys {
    use super::{Interest, Readiness, Source};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    // `nfds_t` is `c_ulong` on Linux and `c_uint` on the BSDs/macOS.
    #[cfg(target_os = "linux")]
    type NFds = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NFds = std::ffi::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
    }

    pub fn wait(sources: &[(Source<'_>, Interest)], timeout: Duration) -> Vec<Readiness> {
        let mut fds: Vec<PollFd> = sources
            .iter()
            .map(|(source, interest)| {
                let fd = match source {
                    Source::Tcp(s) => s.as_raw_fd(),
                    Source::Wake(s) => s.as_raw_fd(),
                };
                let mut events = 0i16;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                PollFd {
                    fd,
                    events,
                    revents: 0,
                }
            })
            .collect();
        let timeout_ms = i32::try_from(timeout.as_millis())
            .unwrap_or(i32::MAX)
            .max(0);
        // SAFETY: `fds` is a valid, exclusively-borrowed slice of
        // correctly-laid-out pollfd structs for the duration of the
        // call, and `nfds` matches its length.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
        if rc < 0 {
            // EINTR or transient failure: report nothing ready; the
            // caller loops and polls again.
            return vec![Readiness::default(); sources.len()];
        }
        fds.iter()
            .map(|fd| Readiness {
                readable: fd.revents & POLLIN != 0,
                writable: fd.revents & POLLOUT != 0,
                error: fd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
            })
            .collect()
    }
}

/// Block until at least one source is ready (per its interest), the
/// timeout elapses, or a wakeup arrives. Returns one [`Readiness`] per
/// source, index-matched.
pub(crate) fn wait(sources: &[(Source<'_>, Interest)], timeout: Duration) -> Vec<Readiness> {
    #[cfg(unix)]
    {
        sys::wait(sources, timeout)
    }
    #[cfg(not(unix))]
    {
        let _ = timeout;
        std::thread::sleep(Duration::from_millis(1));
        sources
            .iter()
            .map(|(_, interest)| Readiness {
                readable: interest.readable,
                writable: interest.writable,
                error: false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn wait_reports_readable_data_and_respects_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();

        let interest = Interest {
            readable: true,
            writable: false,
        };
        // Nothing written yet: a short wait times out not-ready (on the
        // fallback platforms this is allowed to report ready).
        if cfg!(unix) {
            let start = Instant::now();
            let ready = wait(
                &[(Source::Tcp(&accepted), interest)],
                Duration::from_millis(30),
            );
            assert!(!ready[0].readable, "no data yet");
            assert!(start.elapsed() >= Duration::from_millis(25), "timed out");
        }

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let ready = wait(
            &[(Source::Tcp(&accepted), interest)],
            Duration::from_millis(1000),
        );
        assert!(ready[0].readable, "pending bytes poll readable");
    }

    #[test]
    fn waker_unblocks_and_drains() {
        let (waker, rx) = wake_channel().unwrap();
        let Some(source) = rx.source() else {
            return; // no-op channel on this platform
        };
        let interest = Interest {
            readable: true,
            writable: false,
        };
        waker.wake();
        let ready = wait(&[(source, interest)], Duration::from_millis(1000));
        assert!(ready[0].readable, "wakeup byte polls readable");
        rx.drain();
        let ready = wait(
            &[(rx.source().unwrap(), interest)],
            Duration::from_millis(10),
        );
        assert!(!ready[0].readable, "drained channel goes quiet");
    }
}
