//! Multi-graph store: named graphs, their write state, and published
//! epoch snapshots — optionally durable.
//!
//! Each registered graph owns
//!
//! * a **writer** — the [`DynamicGee`] accumulator, guarded by a `Mutex` so
//!   update batches serialize;
//! * a **published snapshot** — an `Arc<Snapshot>` behind an `RwLock`,
//!   swapped atomically when a write batch commits (readers that already
//!   cloned the `Arc` keep their consistent view);
//! * a [`ShardLayout`] used for shard-parallel materialization and scans.
//!
//! GEE's linearity is what makes this cheap: an update batch costs O(1)
//! per edge op and O(deg) per label move in the writer, and publishing a
//! new epoch is an O(nK) shard-parallel materialization — never a full
//! O(s) edge pass.
//!
//! # Durability
//!
//! A registry opened with [`Durability::Wal`] writes every mutation —
//! [`Registry::register`] (the full epoch-0 input), each
//! [`Registry::apply_updates`] batch, [`Registry::deregister`] — to a
//! write-ahead log ([`crate::wal`]) *before* mutating in-memory state;
//! the append (fsynced under [`SyncPolicy::Always`](crate::SyncPolicy::Always)) is the commit
//! point. Every `checkpoint_every` committed records (batches,
//! registrations, deregistrations) the full writer state is
//! checkpointed ([`crate::checkpoint`]) and fully-covered WAL segments
//! are retired. [`Registry::open`] recovers by loading the latest
//! checkpoint and replaying the WAL tail, arriving at writers and
//! snapshots **bit-identical** to the pre-crash process (same
//! floating-point accumulation order, same adjacency order, same
//! epochs) — `tests/durability.rs` proves it query-by-query.
//!
//! Durable mutations serialize on one log lock (WAL order must equal
//! apply order); reads never touch it. `queries_served` is a read-side
//! counter and intentionally resets on recovery; `updates_applied`
//! survives (it is recomputed by replay and carried by checkpoints).
//! A deregistered graph's durable lineage is dropped from the log at the
//! next checkpoint compaction; until then its records remain but replay
//! removes the graph, so re-registering the same name starts a fresh
//! epoch-0 lineage either way.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use gee_core::{DynamicGee, Embedding, Labels};
use gee_graph::{Edge, EdgeList, VertexId, Weight};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{self, Checkpoint, GraphCheckpoint};
use crate::shard::ShardLayout;
use crate::snapshot::Snapshot;
use crate::wal::{self, Durability, WalRecord, WalWriter};
use crate::ServeError;

/// One streaming graph/label mutation. Part of the wire contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Update {
    /// Insert edge `(u, v, w)` (one direction; symmetric graphs send both).
    InsertEdge { u: VertexId, v: VertexId, w: Weight },
    /// Remove one occurrence of edge `(u, v, w)`.
    RemoveEdge { u: VertexId, v: VertexId, w: Weight },
    /// Set (or clear) the label of `v`.
    SetLabel { v: VertexId, label: Option<u32> },
}

/// Per-graph serving state.
pub(crate) struct Entry {
    pub(crate) layout: ShardLayout,
    /// Shard count as requested at registration (the layout clamps it;
    /// checkpoints persist the request so restore re-clamps identically).
    requested_shards: u32,
    writer: Mutex<DynamicGee>,
    snapshot: RwLock<Arc<Snapshot>>,
    pub(crate) queries_served: AtomicU64,
    pub(crate) updates_applied: AtomicU64,
}

impl Entry {
    /// The currently published snapshot (cheap `Arc` clone).
    pub(crate) fn snapshot(&self) -> Arc<Snapshot> {
        self.snapshot
            .read()
            .expect("snapshot lock poisoned")
            .clone()
    }
}

/// The durable half of a registry: the WAL writer plus checkpoint
/// cadence. One lock serializes all durable mutations so WAL order is
/// apply order.
struct DurableLog {
    writer: WalWriter,
    dir: PathBuf,
    checkpoint_every: u64,
    records_since_checkpoint: u64,
    /// Held for the life of the registry; releases the data-dir lock
    /// file on drop.
    _lock: wal::DirLock,
}

impl DurableLog {
    /// Snapshot every graph's writer state and write a checkpoint at the
    /// current WAL position, then rotate the log and retire covered
    /// segments and older checkpoints. Caller holds the log lock, so no
    /// durable mutation can interleave.
    fn take_checkpoint(
        &mut self,
        entries: &HashMap<String, Arc<Entry>>,
    ) -> Result<u64, ServeError> {
        let lsn = self.writer.next_lsn();
        let mut graphs: Vec<GraphCheckpoint> = entries
            .iter()
            .map(|(name, entry)| {
                let writer = entry.writer.lock().expect("writer lock poisoned");
                GraphCheckpoint {
                    name: name.clone(),
                    shards: entry.requested_shards,
                    epoch: entry.snapshot().epoch,
                    updates_applied: entry.updates_applied.load(Ordering::Relaxed),
                    state: writer.export_state(),
                }
            })
            .collect();
        graphs.sort_by(|a, b| a.name.cmp(&b.name));
        checkpoint::save(&self.dir, &Checkpoint { lsn, graphs })?;
        self.writer.rotate()?;
        checkpoint::retire_older_than(&self.dir, lsn)?;
        self.records_since_checkpoint = 0;
        Ok(lsn)
    }
}

/// Owner of all served graphs.
pub struct Registry {
    entries: RwLock<HashMap<String, Arc<Entry>>>,
    default_shards: usize,
    durable: Option<Mutex<DurableLog>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("graphs", &self.graph_names())
            .field("default_shards", &self.default_shards)
            .field("durable", &self.durable.is_some())
            .finish()
    }
}

impl Registry {
    /// An in-memory registry whose graphs default to `default_shards`
    /// shards (equivalent to [`Registry::open`] with
    /// [`Durability::None`], which cannot fail).
    pub fn new(default_shards: usize) -> Self {
        Registry {
            entries: RwLock::new(HashMap::new()),
            default_shards: default_shards.max(1),
            durable: None,
        }
    }

    /// Open a registry under the given durability policy. With
    /// [`Durability::Wal`] this **recovers**: the data directory is
    /// created if missing, the latest valid checkpoint is loaded, the
    /// WAL tail is replayed on top (a torn final record — a crash
    /// mid-append — is truncated away), and the registry resumes exactly
    /// where the last committed batch left it. Damaged durable state
    /// (checksum mismatches, non-tiling segments, retired history)
    /// surfaces as [`ServeError::Corrupt`]; it never panics and never
    /// silently serves a shortened history.
    pub fn open(default_shards: usize, durability: Durability) -> Result<Self, ServeError> {
        let Durability::Wal {
            dir,
            sync,
            checkpoint_every,
        } = durability
        else {
            return Ok(Self::new(default_shards));
        };
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServeError::storage(format!("creating {}: {e}", dir.display())))?;
        // One process at a time: concurrent writers would interleave
        // frames in the same segment and destroy the log.
        let lock = wal::DirLock::acquire(&dir)?;
        // A crash between a checkpoint's temp write and its rename can
        // orphan a state-sized *.tmp file; nothing else ever reads one.
        checkpoint::sweep_orphaned_temps(&dir)?;
        let loaded = checkpoint::load_latest(&dir)?;
        let min_lsn = loaded.as_ref().map_or(0, |(c, _)| c.lsn);
        let scan = wal::scan(&dir, min_lsn)?;
        let mut entries: HashMap<String, Arc<Entry>> = HashMap::new();
        if let Some((ckpt, path)) = loaded {
            for g in ckpt.graphs {
                let writer =
                    DynamicGee::from_state(g.state).map_err(|detail| ServeError::Corrupt {
                        path: path.display().to_string(),
                        detail: format!("graph {:?}: {detail}", g.name),
                    })?;
                entries.insert(
                    g.name,
                    Arc::new(make_entry(writer, g.shards, g.epoch, g.updates_applied)),
                );
            }
        }
        for (lsn, record) in &scan.records {
            if *lsn < min_lsn {
                continue;
            }
            replay(&mut entries, record).map_err(|detail| ServeError::Corrupt {
                path: dir.display().to_string(),
                detail: format!("replaying lsn {lsn}: {detail}"),
            })?;
        }
        let writer = WalWriter::open(&dir, sync, &scan)?;
        Ok(Registry {
            entries: RwLock::new(entries),
            default_shards: default_shards.max(1),
            durable: Some(Mutex::new(DurableLog {
                writer,
                dir,
                checkpoint_every,
                records_since_checkpoint: 0,
                _lock: lock,
            })),
        })
    }

    /// Whether this registry persists its state.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable data directory, if any.
    pub fn data_dir(&self) -> Option<PathBuf> {
        self.durable
            .as_ref()
            .map(|d| d.lock().expect("log lock poisoned").dir.clone())
    }

    /// Arm a WAL crash point for the crash-recovery harness: the next
    /// durable append writes a chosen prefix of its record, flushes it,
    /// and fails — the on-disk outcome of a process killed mid-append.
    /// No-op on an in-memory registry.
    pub fn inject_wal_fault(&self, fault: crate::wal::FaultPoint) {
        if let Some(durable) = &self.durable {
            durable
                .lock()
                .expect("log lock poisoned")
                .writer
                .inject_fault(fault);
        }
    }

    /// Force a checkpoint now (compacting the WAL). Returns the covered
    /// LSN, or `None` on an in-memory registry.
    pub fn checkpoint_now(&self) -> Result<Option<u64>, ServeError> {
        let Some(durable) = &self.durable else {
            return Ok(None);
        };
        let mut log = durable.lock().expect("log lock poisoned");
        let entries = self.entries.read().expect("registry lock poisoned").clone();
        log.take_checkpoint(&entries).map(Some)
    }

    /// Register `name`, computing the epoch-0 embedding from the edge
    /// list and labels. Replaces any previous graph of the same name.
    /// On a durable registry the full input is WAL-logged (commit point)
    /// before the graph becomes visible; the only error source is that
    /// durable append.
    pub fn register(
        &self,
        name: &str,
        el: &EdgeList,
        labels: &Labels,
    ) -> Result<Arc<Snapshot>, ServeError> {
        self.register_with_shards(name, el, labels, self.default_shards)
    }

    /// [`Registry::register`] with an explicit shard count.
    pub fn register_with_shards(
        &self,
        name: &str,
        el: &EdgeList,
        labels: &Labels,
        shards: usize,
    ) -> Result<Arc<Snapshot>, ServeError> {
        assert_eq!(
            el.num_vertices(),
            labels.len(),
            "labels must cover every vertex"
        );
        let log = self
            .durable
            .as_ref()
            .map(|d| d.lock().expect("log lock poisoned"));
        if let Some(mut log) = log {
            log.writer.append(&WalRecord::Register {
                name: name.to_string(),
                shards: shards.min(u32::MAX as usize) as u32,
                num_vertices: el.num_vertices() as u64,
                num_classes: labels.num_classes() as u32,
                labels: labels.raw_slice().to_vec(),
                edges: el.edges().iter().map(|e| (e.u, e.v, e.w)).collect(),
            })?;
            let snapshot = self.register_in_memory(name, el, labels, shards);
            self.bump_and_maybe_checkpoint(&mut log)?;
            Ok(snapshot)
        } else {
            Ok(self.register_in_memory(name, el, labels, shards))
        }
    }

    fn register_in_memory(
        &self,
        name: &str,
        el: &EdgeList,
        labels: &Labels,
        shards: usize,
    ) -> Arc<Snapshot> {
        let writer = DynamicGee::new(el, labels);
        let entry = Arc::new(make_entry(
            writer,
            shards.min(u32::MAX as usize) as u32,
            0,
            0,
        ));
        let snapshot = entry.snapshot();
        self.entries
            .write()
            .expect("registry lock poisoned")
            .insert(name.to_string(), entry);
        snapshot
    }

    /// Drop a graph. Returns `Ok(false)` if it was not registered. On a
    /// durable registry the removal is WAL-logged, so recovery drops the
    /// graph too, and its durable lineage (Register/Batch records) is
    /// physically retired at the next checkpoint compaction.
    /// Re-registering the same name afterwards starts a fresh epoch-0
    /// lineage.
    pub fn deregister(&self, name: &str) -> Result<bool, ServeError> {
        // The log lock must be held across the in-memory removal (as
        // register/apply_updates hold it across their mutations):
        // releasing it in between would let a concurrent durable write
        // log a Batch/Register *after* the Deregister record while the
        // graph is still visible, and replay of that order fails.
        let log = self
            .durable
            .as_ref()
            .map(|d| d.lock().expect("log lock poisoned"));
        if let Some(mut log) = log {
            let present = self
                .entries
                .read()
                .expect("registry lock poisoned")
                .contains_key(name);
            if !present {
                return Ok(false);
            }
            log.writer.append(&WalRecord::Deregister {
                name: name.to_string(),
            })?;
            let removed = self
                .entries
                .write()
                .expect("registry lock poisoned")
                .remove(name)
                .is_some();
            self.bump_and_maybe_checkpoint(&mut log)?;
            Ok(removed)
        } else {
            Ok(self
                .entries
                .write()
                .expect("registry lock poisoned")
                .remove(name)
                .is_some())
        }
    }

    /// Names of registered graphs, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    pub(crate) fn entry(&self, name: &str) -> Result<Arc<Entry>, ServeError> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownGraph {
                graph: name.to_string(),
            })
    }

    /// The published snapshot of `name`.
    pub fn snapshot(&self, name: &str) -> Result<Arc<Snapshot>, ServeError> {
        Ok(self.entry(name)?.snapshot())
    }

    /// Apply an update batch through the writer and publish the next
    /// epoch. The whole batch becomes visible atomically: readers see
    /// either the old epoch or the new one, never a half-applied state.
    ///
    /// Returns `(applied, snapshot)`; `applied` counts updates that took
    /// effect (`RemoveEdge` of a missing edge is a no-op and doesn't
    /// count). An empty batch is a no-op: it returns the currently
    /// published snapshot without publishing a new epoch (and writes
    /// nothing to the WAL).
    ///
    /// On a durable registry the batch is validated, WAL-appended
    /// (fsynced under [`SyncPolicy::Always`](crate::SyncPolicy::Always) — the commit point), then
    /// applied; a [`ServeError::Storage`] means the batch did **not**
    /// commit. If the automatic post-commit checkpoint fails, its
    /// `Storage` error is returned even though the batch itself is
    /// durable and applied — the next successful batch retries the
    /// checkpoint.
    pub fn apply_updates(
        &self,
        name: &str,
        updates: &[Update],
    ) -> Result<(usize, Arc<Snapshot>), ServeError> {
        // On a durable registry the entry must be resolved *under* the
        // log lock: resolving first would let a concurrent deregister or
        // re-register commit its record between our lookup and our
        // append, making the WAL order diverge from the apply order (a
        // Batch after a Deregister fails replay).
        let log = self
            .durable
            .as_ref()
            .map(|d| d.lock().expect("log lock poisoned"));
        let entry = self.entry(name)?;
        if updates.is_empty() {
            return Ok((0, entry.snapshot()));
        }
        let mut writer = entry.writer.lock().expect("writer lock poisoned");
        validate_batch(&writer, updates)?;
        if let Some(mut log) = log {
            log.writer.append(&WalRecord::Batch {
                name: name.to_string(),
                updates: updates.to_vec(),
            })?;
            let result = apply_batch(&entry, &mut writer, updates);
            drop(writer);
            self.bump_and_maybe_checkpoint(&mut log)?;
            Ok(result)
        } else {
            Ok(apply_batch(&entry, &mut writer, updates))
        }
    }

    /// Count one committed record toward the checkpoint cadence and
    /// compact when it is reached. Caller holds the log lock.
    fn bump_and_maybe_checkpoint(&self, log: &mut DurableLog) -> Result<(), ServeError> {
        log.records_since_checkpoint += 1;
        if log.checkpoint_every > 0 && log.records_since_checkpoint >= log.checkpoint_every {
            let entries = self.entries.read().expect("registry lock poisoned").clone();
            log.take_checkpoint(&entries)?;
        }
        Ok(())
    }
}

/// Build an entry (and publish its snapshot) from a writer at `epoch`.
fn make_entry(
    writer: DynamicGee,
    requested_shards: u32,
    epoch: u64,
    updates_applied: u64,
) -> Entry {
    let layout = ShardLayout::new(writer.num_vertices(), requested_shards as usize);
    let snapshot = Arc::new(publish(&writer, &layout, epoch));
    Entry {
        layout,
        requested_shards,
        writer: Mutex::new(writer),
        snapshot: RwLock::new(snapshot),
        queries_served: AtomicU64::new(0),
        updates_applied: AtomicU64::new(updates_applied),
    }
}

/// Check a batch against writer dimensions without mutating anything, so
/// a mid-batch failure can't leave the writer half-mutated (and, on a
/// durable registry, so an invalid batch never reaches the WAL).
fn validate_batch(writer: &DynamicGee, updates: &[Update]) -> Result<(), ServeError> {
    let n = writer.num_vertices();
    let k = writer.dim();
    for u in updates {
        match *u {
            Update::InsertEdge { u, v, w } | Update::RemoveEdge { u, v, w } => {
                for x in [u, v] {
                    if x as usize >= n {
                        return Err(ServeError::VertexOutOfRange {
                            vertex: x,
                            num_vertices: n,
                        });
                    }
                }
                // A NaN/Inf weight would poison every distance the
                // embedding later feeds — and JSON cannot carry it,
                // so accepting it in-process would break Engine ==
                // Client equivalence.
                if !w.is_finite() {
                    return Err(ServeError::NonFinite {
                        param: format!("weight of edge ({u}, {v})"),
                    });
                }
            }
            Update::SetLabel { v, label } => {
                if v as usize >= n {
                    return Err(ServeError::VertexOutOfRange {
                        vertex: v,
                        num_vertices: n,
                    });
                }
                if let Some(c) = label {
                    if c as usize >= k {
                        return Err(ServeError::ClassOutOfRange {
                            class: c,
                            num_classes: k,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Apply a validated batch and publish the next epoch. Shared verbatim by
/// the live path and WAL replay, which is what makes replay bit-exact.
fn apply_batch(
    entry: &Entry,
    writer: &mut DynamicGee,
    updates: &[Update],
) -> (usize, Arc<Snapshot>) {
    let mut applied = 0usize;
    for u in updates {
        match *u {
            Update::InsertEdge { u, v, w } => {
                writer.insert_edge(u, v, w);
                applied += 1;
            }
            Update::RemoveEdge { u, v, w } => {
                applied += usize::from(writer.remove_edge(u, v, w));
            }
            Update::SetLabel { v, label } => {
                writer.set_label(v, label);
                applied += 1;
            }
        }
    }
    let next_epoch = entry.snapshot().epoch + 1;
    let snapshot = Arc::new(publish(writer, &entry.layout, next_epoch));
    *entry.snapshot.write().expect("snapshot lock poisoned") = snapshot.clone();
    entry
        .updates_applied
        .fetch_add(applied as u64, Ordering::Relaxed);
    (applied, snapshot)
}

/// Apply one WAL record to the recovering entry map. Errors are strings;
/// the caller wraps them with the offending LSN into
/// [`ServeError::Corrupt`].
fn replay(entries: &mut HashMap<String, Arc<Entry>>, record: &WalRecord) -> Result<(), String> {
    match record {
        WalRecord::Register {
            name,
            shards,
            num_vertices,
            num_classes,
            labels,
            edges,
        } => {
            let n = *num_vertices as usize;
            let k = *num_classes as usize;
            if labels.len() != n {
                return Err(format!("{} labels for {n} vertices", labels.len()));
            }
            let opts: Vec<Option<u32>> = labels
                .iter()
                .map(|&c| match c {
                    -1 => Ok(None),
                    c if c >= 0 && (c as usize) < k => Ok(Some(c as u32)),
                    c => Err(format!("label {c} outside K={k}")),
                })
                .collect::<Result<_, _>>()?;
            let mut edge_vec = Vec::with_capacity(edges.len());
            for &(u, v, w) in edges {
                if u as usize >= n || v as usize >= n {
                    return Err(format!("edge ({u}, {v}) outside n={n}"));
                }
                edge_vec.push(Edge::new(u, v, w));
            }
            let el = EdgeList::new_unchecked(n, edge_vec);
            let writer = DynamicGee::new(&el, &Labels::from_options_with_k(&opts, k));
            entries.insert(name.clone(), Arc::new(make_entry(writer, *shards, 0, 0)));
            Ok(())
        }
        WalRecord::Batch { name, updates } => {
            let entry = entries
                .get(name)
                .ok_or_else(|| format!("batch for unregistered graph {name:?}"))?
                .clone();
            let mut writer = entry.writer.lock().expect("writer lock poisoned");
            validate_batch(&writer, updates).map_err(|e| format!("invalid logged batch: {e}"))?;
            apply_batch(&entry, &mut writer, updates);
            Ok(())
        }
        WalRecord::Deregister { name } => match entries.remove(name) {
            Some(_) => Ok(()),
            None => Err(format!("deregister of unregistered graph {name:?}")),
        },
    }
}

/// Materialize a snapshot from the writer state, one shard per thread.
fn publish(writer: &DynamicGee, layout: &ShardLayout, epoch: u64) -> Snapshot {
    let n = writer.num_vertices();
    let k = writer.dim();
    let shard_rows: Vec<Vec<f64>> =
        layout.par_map(|_, lo, hi| writer.embedding_rows(lo as usize, hi as usize));
    let mut data = Vec::with_capacity(n * k);
    for rows in shard_rows {
        data.extend_from_slice(&rows);
    }
    let embedding = Embedding::from_vec(n, k, data);
    Snapshot::new(epoch, embedding, writer.labels(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_gen::LabelSpec;

    fn setup() -> (Registry, EdgeList, Labels) {
        let el = gee_gen::erdos_renyi_gnm(80, 400, 9);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                80,
                LabelSpec {
                    num_classes: 4,
                    labeled_fraction: 0.4,
                },
                5,
            ),
            4,
        );
        (Registry::new(4), el, labels)
    }

    #[test]
    fn register_publishes_epoch_zero_matching_static_embed() {
        let (reg, el, labels) = setup();
        let snap = reg.register("g", &el, &labels).unwrap();
        assert_eq!(snap.epoch, 0);
        let statik = gee_core::serial_optimized::embed(&el, &labels);
        statik.assert_close(&snap.embedding, 1e-12);
    }

    #[test]
    fn apply_updates_bumps_epoch_and_matches_recompute() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels).unwrap();
        let (applied, snap) = reg
            .apply_updates(
                "g",
                &[
                    Update::InsertEdge { u: 1, v: 2, w: 2.0 },
                    Update::SetLabel {
                        v: 3,
                        label: Some(0),
                    },
                    Update::RemoveEdge { u: 1, v: 2, w: 2.0 },
                    Update::RemoveEdge {
                        u: 0,
                        v: 1,
                        w: 555.0,
                    }, // missing: no-op
                ],
            )
            .unwrap();
        assert_eq!(applied, 3);
        assert_eq!(snap.epoch, 1);
        // Oracle: fresh static recompute over the mutated graph/labels.
        let mut dg = DynamicGee::new(&el, &labels);
        dg.set_label(3, Some(0));
        let oracle = gee_core::serial_optimized::embed(&dg.edge_list(), &dg.labels());
        oracle.assert_close(&snap.embedding, 1e-11);
    }

    #[test]
    fn batch_is_atomic_on_validation_failure() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels).unwrap();
        let before = reg.snapshot("g").unwrap();
        let err = reg
            .apply_updates(
                "g",
                &[
                    Update::InsertEdge { u: 0, v: 1, w: 1.0 },
                    Update::InsertEdge {
                        u: 0,
                        v: 10_000,
                        w: 1.0,
                    }, // invalid
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::VertexOutOfRange { .. }));
        let after = reg.snapshot("g").unwrap();
        assert_eq!(after.epoch, before.epoch, "failed batch must not publish");
        assert_eq!(after.embedding.as_slice(), before.embedding.as_slice());
    }

    #[test]
    fn old_snapshots_stay_consistent_after_writes() {
        let (reg, el, labels) = setup();
        let old = reg.register("g", &el, &labels).unwrap();
        let frozen = old.embedding.as_slice().to_vec();
        // Insert an edge to a *labeled* vertex so the write provably
        // changes the embedding (an edge between two unlabeled vertices
        // contributes nothing).
        let (t, _) = labels
            .iter_labeled()
            .next()
            .expect("some vertex is labeled");
        reg.apply_updates(
            "g",
            &[Update::InsertEdge {
                u: 0,
                v: t,
                w: 10.0,
            }],
        )
        .unwrap();
        assert_eq!(
            old.embedding.as_slice(),
            &frozen[..],
            "held snapshot must not move"
        );
        assert_ne!(
            reg.snapshot("g").unwrap().embedding.as_slice(),
            &frozen[..],
            "published snapshot must reflect the write"
        );
    }

    #[test]
    fn unknown_graph_is_an_error() {
        let (reg, ..) = setup();
        assert!(matches!(
            reg.snapshot("nope"),
            Err(ServeError::UnknownGraph { .. })
        ));
    }

    #[test]
    fn non_finite_weights_are_rejected_atomically() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels).unwrap();
        let before = reg.snapshot("g").unwrap();
        for w in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = reg
                .apply_updates(
                    "g",
                    &[
                        Update::InsertEdge { u: 0, v: 1, w: 1.0 },
                        Update::InsertEdge { u: 2, v: 3, w },
                    ],
                )
                .unwrap_err();
            assert!(matches!(err, ServeError::NonFinite { .. }), "{w}: {err}");
        }
        assert_eq!(
            reg.snapshot("g").unwrap().epoch,
            before.epoch,
            "nothing published"
        );
    }

    #[test]
    fn empty_update_batch_does_not_publish_an_epoch() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels).unwrap();
        let before = reg.snapshot("g").unwrap();
        let (applied, snap) = reg.apply_updates("g", &[]).unwrap();
        assert_eq!(applied, 0);
        assert!(
            Arc::ptr_eq(&snap, &before),
            "no-op must return the published snapshot as-is"
        );
        assert_eq!(reg.snapshot("g").unwrap().epoch, before.epoch);
        // A real batch afterwards still publishes the next epoch.
        let (_, snap) = reg
            .apply_updates("g", &[Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
            .unwrap();
        assert_eq!(snap.epoch, before.epoch + 1);
    }

    #[test]
    fn deregister_and_names() {
        let (reg, el, labels) = setup();
        reg.register("b", &el, &labels).unwrap();
        reg.register("a", &el, &labels).unwrap();
        assert_eq!(reg.graph_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.deregister("a").unwrap());
        assert!(!reg.deregister("a").unwrap());
        assert_eq!(reg.graph_names(), vec!["b".to_string()]);
    }

    #[test]
    fn in_memory_registry_reports_no_durability() {
        let (reg, ..) = setup();
        assert!(!reg.is_durable());
        assert_eq!(reg.data_dir(), None);
        assert_eq!(reg.checkpoint_now().unwrap(), None);
        let reg = Registry::open(4, Durability::None).unwrap();
        assert!(!reg.is_durable());
    }
}
