//! Multi-graph store: named graphs, their write state, and published
//! epoch snapshots.
//!
//! Each registered graph owns
//!
//! * a **writer** — the [`DynamicGee`] accumulator, guarded by a `Mutex` so
//!   update batches serialize;
//! * a **published snapshot** — an `Arc<Snapshot>` behind an `RwLock`,
//!   swapped atomically when a write batch commits (readers that already
//!   cloned the `Arc` keep their consistent view);
//! * a [`ShardLayout`] used for shard-parallel materialization and scans.
//!
//! GEE's linearity is what makes this cheap: an update batch costs O(1)
//! per edge op and O(deg) per label move in the writer, and publishing a
//! new epoch is an O(nK) shard-parallel materialization — never a full
//! O(s) edge pass.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use gee_core::{DynamicGee, Embedding, Labels};
use gee_graph::{EdgeList, VertexId, Weight};
use serde::{Deserialize, Serialize};

use crate::shard::ShardLayout;
use crate::snapshot::Snapshot;
use crate::ServeError;

/// One streaming graph/label mutation. Part of the wire contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Update {
    /// Insert edge `(u, v, w)` (one direction; symmetric graphs send both).
    InsertEdge { u: VertexId, v: VertexId, w: Weight },
    /// Remove one occurrence of edge `(u, v, w)`.
    RemoveEdge { u: VertexId, v: VertexId, w: Weight },
    /// Set (or clear) the label of `v`.
    SetLabel { v: VertexId, label: Option<u32> },
}

/// Per-graph serving state.
pub(crate) struct Entry {
    pub(crate) layout: ShardLayout,
    writer: Mutex<DynamicGee>,
    snapshot: RwLock<Arc<Snapshot>>,
    pub(crate) queries_served: AtomicU64,
    pub(crate) updates_applied: AtomicU64,
}

impl Entry {
    /// The currently published snapshot (cheap `Arc` clone).
    pub(crate) fn snapshot(&self) -> Arc<Snapshot> {
        self.snapshot
            .read()
            .expect("snapshot lock poisoned")
            .clone()
    }
}

/// Owner of all served graphs.
pub struct Registry {
    entries: RwLock<HashMap<String, Arc<Entry>>>,
    default_shards: usize,
}

impl Registry {
    /// A registry whose graphs default to `default_shards` shards.
    pub fn new(default_shards: usize) -> Self {
        Registry {
            entries: RwLock::new(HashMap::new()),
            default_shards: default_shards.max(1),
        }
    }

    /// Register `name`, computing the epoch-0 embedding from the edge
    /// list and labels. Replaces any previous graph of the same name.
    pub fn register(&self, name: &str, el: &EdgeList, labels: &Labels) -> Arc<Snapshot> {
        self.register_with_shards(name, el, labels, self.default_shards)
    }

    /// [`Registry::register`] with an explicit shard count.
    pub fn register_with_shards(
        &self,
        name: &str,
        el: &EdgeList,
        labels: &Labels,
        shards: usize,
    ) -> Arc<Snapshot> {
        let writer = DynamicGee::new(el, labels);
        let layout = ShardLayout::new(writer.num_vertices(), shards);
        let snapshot = Arc::new(publish(&writer, &layout, 0));
        let entry = Arc::new(Entry {
            layout,
            writer: Mutex::new(writer),
            snapshot: RwLock::new(snapshot.clone()),
            queries_served: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
        });
        self.entries
            .write()
            .expect("registry lock poisoned")
            .insert(name.to_string(), entry);
        snapshot
    }

    /// Drop a graph. Returns `false` if it was not registered.
    pub fn deregister(&self, name: &str) -> bool {
        self.entries
            .write()
            .expect("registry lock poisoned")
            .remove(name)
            .is_some()
    }

    /// Names of registered graphs, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    pub(crate) fn entry(&self, name: &str) -> Result<Arc<Entry>, ServeError> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownGraph {
                graph: name.to_string(),
            })
    }

    /// The published snapshot of `name`.
    pub fn snapshot(&self, name: &str) -> Result<Arc<Snapshot>, ServeError> {
        Ok(self.entry(name)?.snapshot())
    }

    /// Apply an update batch through the writer and publish the next
    /// epoch. The whole batch becomes visible atomically: readers see
    /// either the old epoch or the new one, never a half-applied state.
    ///
    /// Returns `(applied, snapshot)`; `applied` counts updates that took
    /// effect (`RemoveEdge` of a missing edge is a no-op and doesn't
    /// count). An empty batch is a no-op: it returns the currently
    /// published snapshot without publishing a new epoch.
    pub fn apply_updates(
        &self,
        name: &str,
        updates: &[Update],
    ) -> Result<(usize, Arc<Snapshot>), ServeError> {
        let entry = self.entry(name)?;
        if updates.is_empty() {
            return Ok((0, entry.snapshot()));
        }
        let mut writer = entry.writer.lock().expect("writer lock poisoned");
        let n = writer.num_vertices();
        let k = writer.dim();
        // Validate the whole batch up front so a mid-batch failure can't
        // leave the writer half-mutated.
        for u in updates {
            match *u {
                Update::InsertEdge { u, v, w } | Update::RemoveEdge { u, v, w } => {
                    for x in [u, v] {
                        if x as usize >= n {
                            return Err(ServeError::VertexOutOfRange {
                                vertex: x,
                                num_vertices: n,
                            });
                        }
                    }
                    // A NaN/Inf weight would poison every distance the
                    // embedding later feeds — and JSON cannot carry it,
                    // so accepting it in-process would break Engine ==
                    // Client equivalence.
                    if !w.is_finite() {
                        return Err(ServeError::NonFinite {
                            param: format!("weight of edge ({u}, {v})"),
                        });
                    }
                }
                Update::SetLabel { v, label } => {
                    if v as usize >= n {
                        return Err(ServeError::VertexOutOfRange {
                            vertex: v,
                            num_vertices: n,
                        });
                    }
                    if let Some(c) = label {
                        if c as usize >= k {
                            return Err(ServeError::ClassOutOfRange {
                                class: c,
                                num_classes: k,
                            });
                        }
                    }
                }
            }
        }
        let mut applied = 0usize;
        for u in updates {
            match *u {
                Update::InsertEdge { u, v, w } => {
                    writer.insert_edge(u, v, w);
                    applied += 1;
                }
                Update::RemoveEdge { u, v, w } => {
                    applied += usize::from(writer.remove_edge(u, v, w));
                }
                Update::SetLabel { v, label } => {
                    writer.set_label(v, label);
                    applied += 1;
                }
            }
        }
        let next_epoch = entry.snapshot().epoch + 1;
        let snapshot = Arc::new(publish(&writer, &entry.layout, next_epoch));
        *entry.snapshot.write().expect("snapshot lock poisoned") = snapshot.clone();
        entry
            .updates_applied
            .fetch_add(applied as u64, Ordering::Relaxed);
        drop(writer);
        Ok((applied, snapshot))
    }
}

/// Materialize a snapshot from the writer state, one shard per thread.
fn publish(writer: &DynamicGee, layout: &ShardLayout, epoch: u64) -> Snapshot {
    let n = writer.num_vertices();
    let k = writer.dim();
    let shard_rows: Vec<Vec<f64>> =
        layout.par_map(|_, lo, hi| writer.embedding_rows(lo as usize, hi as usize));
    let mut data = Vec::with_capacity(n * k);
    for rows in shard_rows {
        data.extend_from_slice(&rows);
    }
    let embedding = Embedding::from_vec(n, k, data);
    Snapshot::new(epoch, embedding, writer.labels(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_gen::LabelSpec;

    fn setup() -> (Registry, EdgeList, Labels) {
        let el = gee_gen::erdos_renyi_gnm(80, 400, 9);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                80,
                LabelSpec {
                    num_classes: 4,
                    labeled_fraction: 0.4,
                },
                5,
            ),
            4,
        );
        (Registry::new(4), el, labels)
    }

    #[test]
    fn register_publishes_epoch_zero_matching_static_embed() {
        let (reg, el, labels) = setup();
        let snap = reg.register("g", &el, &labels);
        assert_eq!(snap.epoch, 0);
        let statik = gee_core::serial_optimized::embed(&el, &labels);
        statik.assert_close(&snap.embedding, 1e-12);
    }

    #[test]
    fn apply_updates_bumps_epoch_and_matches_recompute() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels);
        let (applied, snap) = reg
            .apply_updates(
                "g",
                &[
                    Update::InsertEdge { u: 1, v: 2, w: 2.0 },
                    Update::SetLabel {
                        v: 3,
                        label: Some(0),
                    },
                    Update::RemoveEdge { u: 1, v: 2, w: 2.0 },
                    Update::RemoveEdge {
                        u: 0,
                        v: 1,
                        w: 555.0,
                    }, // missing: no-op
                ],
            )
            .unwrap();
        assert_eq!(applied, 3);
        assert_eq!(snap.epoch, 1);
        // Oracle: fresh static recompute over the mutated graph/labels.
        let mut dg = DynamicGee::new(&el, &labels);
        dg.set_label(3, Some(0));
        let oracle = gee_core::serial_optimized::embed(&dg.edge_list(), &dg.labels());
        oracle.assert_close(&snap.embedding, 1e-11);
    }

    #[test]
    fn batch_is_atomic_on_validation_failure() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels);
        let before = reg.snapshot("g").unwrap();
        let err = reg
            .apply_updates(
                "g",
                &[
                    Update::InsertEdge { u: 0, v: 1, w: 1.0 },
                    Update::InsertEdge {
                        u: 0,
                        v: 10_000,
                        w: 1.0,
                    }, // invalid
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::VertexOutOfRange { .. }));
        let after = reg.snapshot("g").unwrap();
        assert_eq!(after.epoch, before.epoch, "failed batch must not publish");
        assert_eq!(after.embedding.as_slice(), before.embedding.as_slice());
    }

    #[test]
    fn old_snapshots_stay_consistent_after_writes() {
        let (reg, el, labels) = setup();
        let old = reg.register("g", &el, &labels);
        let frozen = old.embedding.as_slice().to_vec();
        // Insert an edge to a *labeled* vertex so the write provably
        // changes the embedding (an edge between two unlabeled vertices
        // contributes nothing).
        let (t, _) = labels
            .iter_labeled()
            .next()
            .expect("some vertex is labeled");
        reg.apply_updates(
            "g",
            &[Update::InsertEdge {
                u: 0,
                v: t,
                w: 10.0,
            }],
        )
        .unwrap();
        assert_eq!(
            old.embedding.as_slice(),
            &frozen[..],
            "held snapshot must not move"
        );
        assert_ne!(
            reg.snapshot("g").unwrap().embedding.as_slice(),
            &frozen[..],
            "published snapshot must reflect the write"
        );
    }

    #[test]
    fn unknown_graph_is_an_error() {
        let (reg, ..) = setup();
        assert!(matches!(
            reg.snapshot("nope"),
            Err(ServeError::UnknownGraph { .. })
        ));
    }

    #[test]
    fn non_finite_weights_are_rejected_atomically() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels);
        let before = reg.snapshot("g").unwrap();
        for w in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = reg
                .apply_updates(
                    "g",
                    &[
                        Update::InsertEdge { u: 0, v: 1, w: 1.0 },
                        Update::InsertEdge { u: 2, v: 3, w },
                    ],
                )
                .unwrap_err();
            assert!(matches!(err, ServeError::NonFinite { .. }), "{w}: {err}");
        }
        assert_eq!(
            reg.snapshot("g").unwrap().epoch,
            before.epoch,
            "nothing published"
        );
    }

    #[test]
    fn empty_update_batch_does_not_publish_an_epoch() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels);
        let before = reg.snapshot("g").unwrap();
        let (applied, snap) = reg.apply_updates("g", &[]).unwrap();
        assert_eq!(applied, 0);
        assert!(
            Arc::ptr_eq(&snap, &before),
            "no-op must return the published snapshot as-is"
        );
        assert_eq!(reg.snapshot("g").unwrap().epoch, before.epoch);
        // A real batch afterwards still publishes the next epoch.
        let (_, snap) = reg
            .apply_updates("g", &[Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
            .unwrap();
        assert_eq!(snap.epoch, before.epoch + 1);
    }

    #[test]
    fn deregister_and_names() {
        let (reg, el, labels) = setup();
        reg.register("b", &el, &labels);
        reg.register("a", &el, &labels);
        assert_eq!(reg.graph_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.deregister("a"));
        assert!(!reg.deregister("a"));
        assert_eq!(reg.graph_names(), vec!["b".to_string()]);
    }
}
