//! Multi-graph store: named graphs, their write state, and published
//! epoch snapshots — copy-on-write, history-bounded, back-pressured,
//! and optionally durable.
//!
//! Each registered graph owns
//!
//! * a **writer** — the [`DynamicGee`] accumulator, guarded by a `Mutex` so
//!   update batches serialize;
//! * a **published history** — a ring of `Arc<Snapshot>`s behind an
//!   `RwLock`, newest last. Publishing pushes the next epoch and evicts
//!   the oldest beyond [`HistoryPolicy::keep`]; readers that already
//!   cloned an `Arc` keep their consistent view regardless;
//! * a [`ShardLayout`] used for shard-parallel materialization and scans.
//!
//! # Copy-on-write publication
//!
//! [`Registry::apply_updates`] tracks which shards a batch dirties while
//! applying it (edge ops dirty their endpoints' shards; a label move
//! dirties every shard's rows — the class-count rescale touches whole
//! columns — but only one shard's labels), then publishes a snapshot
//! that rebuilds **only the dirty blocks** and structurally shares the
//! rest with the parent epoch. A single-shard edge batch on an S-shard
//! graph re-materializes 1/S of the embedding; the other `S - 1` blocks
//! are the parent's blocks, `Arc::ptr_eq`-identical. Blocks rebuilt for
//! rows alone additionally share the parent's labels slice and train
//! set, skipping the `group_by_shard` regrouping.
//!
//! # Back-pressure
//!
//! Update batches for one graph serialize on the writer lock. Under a
//! bounded [`BackpressurePolicy`], a batch that would exceed
//! `max_pending_batches` in-flight batches is rejected up front with a
//! typed [`ServeError::Overloaded`] instead of queueing unboundedly —
//! the caller retries, sheds load, or batches coarser.
//!
//! GEE's linearity is what makes all of this cheap: an update batch
//! costs O(1) per edge op and O(deg) per label move in the writer, and
//! publishing an epoch costs O(nK/S) per dirty shard — never a full
//! O(s) edge pass.
//!
//! # Durability
//!
//! A registry opened with [`Durability::Wal`] writes every mutation —
//! [`Registry::register`] (the full epoch-0 input), each
//! [`Registry::apply_updates`] batch, [`Registry::deregister`] — to a
//! write-ahead log ([`crate::wal`]) *before* mutating in-memory state;
//! the append (fsynced under [`SyncPolicy::Always`](crate::SyncPolicy::Always)) is the commit
//! point. Every `checkpoint_every` committed records (batches,
//! registrations, deregistrations) the full writer state is
//! checkpointed ([`crate::checkpoint`]) and fully-covered WAL segments
//! are retired. [`Registry::open`] recovers by loading the latest
//! checkpoint and replaying the WAL tail, arriving at writers and
//! snapshots **bit-identical** to the pre-crash process (same
//! floating-point accumulation order, same adjacency order, same
//! epochs) — `tests/durability.rs` proves it query-by-query. Replay
//! runs the same dirty-tracking apply path as live traffic, so the
//! recovered history ring has the same per-shard sharing structure and
//! the same retained epochs as the uninterrupted process (given the
//! same [`HistoryPolicy`]); epochs older than the replayed tail are
//! gone — history is in-memory, not logged.
//!
//! Durable mutations serialize on one log lock (WAL order must equal
//! apply order); reads never touch it. `queries_served` is a read-side
//! counter and intentionally resets on recovery; `updates_applied`
//! survives (it is recomputed by replay and carried by checkpoints).
//! A deregistered graph's durable lineage is dropped from the log at the
//! next checkpoint compaction; until then its records remain but replay
//! removes the graph, so re-registering the same name starts a fresh
//! epoch-0 lineage either way.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use gee_core::{DynamicGee, Labels};
use gee_graph::{Edge, EdgeList, VertexId, Weight};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{self, Checkpoint, GraphCheckpoint};
use crate::index::SearchPolicy;
use crate::metrics::{ReplicationReport, ReplicationRole, ServeMetrics};
use crate::replicate::ReplicationStatus;
use crate::shard::ShardLayout;
use crate::snapshot::{ShardBlock, Snapshot};
use crate::wal::{self, Durability, SyncPolicy, WalRecord, WalWriter};
use crate::ServeError;

/// One streaming graph/label mutation. Part of the wire contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Update {
    /// Insert edge `(u, v, w)` (one direction; symmetric graphs send both).
    InsertEdge { u: VertexId, v: VertexId, w: Weight },
    /// Remove one occurrence of edge `(u, v, w)`.
    RemoveEdge { u: VertexId, v: VertexId, w: Weight },
    /// Set (or clear) the label of `v`.
    SetLabel { v: VertexId, label: Option<u32> },
}

/// How many published epochs a graph retains for time-travel reads.
///
/// The newest epoch is always retained; `keep = 1` (the default) is the
/// classic latest-only behavior. With `keep = N`, reads pinned with
/// `at_epoch` succeed for the `N` most recent epochs and fail with a
/// typed [`ServeError::EpochEvicted`] beyond that. Memory cost is
/// bounded by CoW sharing: consecutive epochs share every block their
/// batch did not dirty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryPolicy {
    /// Number of epochs retained (clamped to at least 1).
    pub keep: usize,
}

impl HistoryPolicy {
    /// Retain the `keep` most recent epochs.
    pub fn keep(keep: usize) -> Self {
        HistoryPolicy { keep: keep.max(1) }
    }
}

impl Default for HistoryPolicy {
    fn default() -> Self {
        HistoryPolicy { keep: 1 }
    }
}

/// Bound on update batches in flight per graph (applying + queued on
/// the writer lock). A batch beyond the bound is rejected with
/// [`ServeError::Overloaded`] before it takes any lock. The default is
/// unbounded — today's queue-forever behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackpressurePolicy {
    /// Maximum batches in flight per graph.
    pub max_pending_batches: usize,
}

impl BackpressurePolicy {
    /// Reject the `(max + 1)`-th concurrent batch per graph.
    pub fn max_pending(max: usize) -> Self {
        BackpressurePolicy {
            max_pending_batches: max.max(1),
        }
    }

    /// No bound (the default).
    pub fn unbounded() -> Self {
        BackpressurePolicy {
            max_pending_batches: usize::MAX,
        }
    }
}

impl Default for BackpressurePolicy {
    fn default() -> Self {
        BackpressurePolicy::unbounded()
    }
}

/// Everything [`Registry::with_config`] needs: sharding, history,
/// back-pressure, and durability in one place.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Shards per graph unless overridden at registration.
    pub default_shards: usize,
    /// Epoch retention for time-travel reads.
    pub history: HistoryPolicy,
    /// Bound on in-flight update batches per graph.
    pub backpressure: BackpressurePolicy,
    /// WAL + checkpoint persistence.
    pub durability: Durability,
    /// Default search policy for `Similar`/`Classify` reads. Individual
    /// requests may override it; [`SearchPolicy::Exact`] (the default)
    /// keeps pre-index behavior bit-identical.
    pub search: SearchPolicy,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            default_shards: 4,
            history: HistoryPolicy::default(),
            backpressure: BackpressurePolicy::default(),
            durability: Durability::None,
            search: SearchPolicy::Exact,
        }
    }
}

/// Per-graph serving state.
pub(crate) struct Entry {
    pub(crate) layout: ShardLayout,
    /// Shard count as requested at registration (the layout clamps it;
    /// checkpoints persist the request so restore re-clamps identically).
    requested_shards: u32,
    writer: Mutex<DynamicGee>,
    /// Published epochs, oldest first, newest (the published epoch) last.
    history: RwLock<VecDeque<Arc<Snapshot>>>,
    keep: usize,
    /// Update batches currently inside `apply_updates` (the
    /// back-pressure gauge).
    pending: AtomicU64,
    max_pending: u64,
    pub(crate) queries_served: AtomicU64,
    pub(crate) updates_applied: AtomicU64,
}

impl Entry {
    /// The currently published snapshot (cheap `Arc` clone).
    pub(crate) fn snapshot(&self) -> Arc<Snapshot> {
        self.history
            .read()
            .expect("history lock poisoned")
            .back()
            .expect("history is never empty")
            .clone()
    }

    /// Retained epochs in the history ring right now (the protocol-v4
    /// `history_depth` metric; at most [`HistoryPolicy::keep`]).
    pub(crate) fn history_depth(&self) -> usize {
        self.history.read().expect("history lock poisoned").len()
    }

    /// The retained epoch range `(oldest, newest)`.
    pub(crate) fn epoch_range(&self) -> (u64, u64) {
        let ring = self.history.read().expect("history lock poisoned");
        (
            ring.front().expect("history is never empty").epoch,
            ring.back().expect("history is never empty").epoch,
        )
    }

    /// The retained snapshot at `epoch`, or [`ServeError::EpochEvicted`]
    /// naming the retained range.
    pub(crate) fn snapshot_at(&self, graph: &str, epoch: u64) -> Result<Arc<Snapshot>, ServeError> {
        let ring = self.history.read().expect("history lock poisoned");
        let oldest = ring.front().expect("history is never empty").epoch;
        // Epochs are consecutive, so the ring is indexable — but bound
        // the u64 offset before the usize cast, or a wire-supplied epoch
        // could wrap on 32-bit targets and silently hit the wrong slot.
        if epoch >= oldest && epoch - oldest < ring.len() as u64 {
            let snap = &ring[(epoch - oldest) as usize];
            debug_assert_eq!(snap.epoch, epoch);
            return Ok(snap.clone());
        }
        Err(ServeError::EpochEvicted {
            graph: graph.to_string(),
            epoch,
            oldest,
            newest: ring.back().expect("history is never empty").epoch,
        })
    }

    /// Resolve `at_epoch`: `None` → the published snapshot.
    pub(crate) fn snapshot_sel(
        &self,
        graph: &str,
        at_epoch: Option<u64>,
    ) -> Result<Arc<Snapshot>, ServeError> {
        match at_epoch {
            None => Ok(self.snapshot()),
            Some(epoch) => self.snapshot_at(graph, epoch),
        }
    }

    /// Push the next epoch and evict beyond the retention bound.
    fn publish(&self, snapshot: Arc<Snapshot>) {
        let mut ring = self.history.write().expect("history lock poisoned");
        debug_assert!(ring.back().is_none_or(|b| b.epoch + 1 == snapshot.epoch));
        ring.push_back(snapshot);
        while ring.len() > self.keep {
            ring.pop_front();
        }
    }
}

/// A held write slot, counting against
/// [`BackpressurePolicy::max_pending_batches`] until dropped. Returned
/// by [`Registry::hold_write_slot`]; also used internally by every
/// `apply_updates`.
pub struct WriteSlot {
    entry: Arc<Entry>,
}

impl WriteSlot {
    /// Reserve a slot or fail with [`ServeError::Overloaded`].
    fn acquire(graph: &str, entry: Arc<Entry>) -> Result<WriteSlot, ServeError> {
        let prev = entry.pending.fetch_add(1, Ordering::AcqRel);
        if prev >= entry.max_pending {
            entry.pending.fetch_sub(1, Ordering::AcqRel);
            return Err(ServeError::Overloaded {
                graph: graph.to_string(),
                pending: prev as usize,
                max_pending: entry.max_pending as usize,
            });
        }
        Ok(WriteSlot { entry })
    }
}

impl Drop for WriteSlot {
    fn drop(&mut self) {
        self.entry.pending.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The durable half of a registry: the WAL writer plus checkpoint
/// cadence. One lock serializes all durable mutations so WAL order is
/// apply order.
struct DurableLog {
    writer: WalWriter,
    dir: PathBuf,
    checkpoint_every: u64,
    records_since_checkpoint: u64,
    /// Held for the life of the registry; releases the data-dir lock
    /// file on drop.
    _lock: wal::DirLock,
}

impl DurableLog {
    /// Snapshot every graph's writer state and write a checkpoint at the
    /// current WAL position, then rotate the log and retire covered
    /// segments and older checkpoints. Caller holds the log lock, so no
    /// durable mutation can interleave.
    fn take_checkpoint(
        &mut self,
        entries: &HashMap<String, Arc<Entry>>,
        leader_epoch: u64,
    ) -> Result<u64, ServeError> {
        let lsn = self.writer.next_lsn();
        let mut graphs: Vec<GraphCheckpoint> = entries
            .iter()
            .map(|(name, entry)| {
                let writer = entry.writer.lock().expect("writer lock poisoned");
                GraphCheckpoint {
                    name: name.clone(),
                    shards: entry.requested_shards,
                    epoch: entry.snapshot().epoch,
                    updates_applied: entry.updates_applied.load(Ordering::Relaxed),
                    state: writer.export_state(),
                }
            })
            .collect();
        graphs.sort_by(|a, b| a.name.cmp(&b.name));
        checkpoint::save(
            &self.dir,
            &Checkpoint {
                lsn,
                leader_epoch,
                graphs,
            },
        )?;
        self.writer.rotate()?;
        checkpoint::retire_older_than(&self.dir, lsn)?;
        self.records_since_checkpoint = 0;
        Ok(lsn)
    }
}

/// Group-commit coordination for [`SyncPolicy::Group`]: writers whose
/// record is appended (and applied) but not yet fsynced wait here. One
/// waiter at a time elects itself **leader**: it collects arrivals for
/// the window, takes the log lock, issues a single
/// [`WalWriter::sync`](crate::wal::WalWriter::sync) covering every LSN
/// assigned so far, and wakes everyone whose LSN the sync covered.
/// Writers arriving while a sync is in flight queue for the next round,
/// so even a zero-length window coalesces under concurrency.
struct GroupCommit {
    window: Duration,
    state: Mutex<GroupState>,
    cv: Condvar,
}

struct GroupState {
    /// Every record with `lsn < durable_lsn` is known fsynced (or
    /// covered by a durable checkpoint taken at segment rotation).
    durable_lsn: u64,
    /// A leader is currently collecting arrivals or syncing.
    sync_running: bool,
}

impl GroupCommit {
    fn new(window: Duration) -> GroupCommit {
        GroupCommit {
            window,
            state: Mutex::new(GroupState {
                durable_lsn: 0,
                sync_running: false,
            }),
            cv: Condvar::new(),
        }
    }
}

/// Owner of all served graphs.
pub struct Registry {
    entries: RwLock<HashMap<String, Arc<Entry>>>,
    default_shards: usize,
    history: HistoryPolicy,
    backpressure: BackpressurePolicy,
    search: SearchPolicy,
    durable: Option<Mutex<DurableLog>>,
    /// `Some` when the WAL runs under [`SyncPolicy::Group`]: the shared
    /// fsync coordination durable writers wait on after releasing the
    /// log lock.
    group: Option<GroupCommit>,
    /// `Some` on a read-only replica: the public write entry points are
    /// rejected with [`ServeError::ReadOnlyReplica`] and only the
    /// replication pull loop mutates (via [`Registry::apply_replicated`]
    /// / [`Registry::install_bootstrap`]). See [`crate::replicate`].
    /// Behind a lock so [`Follower::promote`](crate::Follower::promote)
    /// can atomically flip the registry out of replica mode.
    replica: RwLock<Option<Arc<ReplicationStatus>>>,
    /// The leader epoch (replication fencing token) this node serves or
    /// replicates under — the highest value it has durably recorded.
    /// Recovered from the `leader-epoch` file / checkpoint on open;
    /// `0` on an in-memory registry or a node that never led/followed.
    leader_epoch: AtomicU64,
    /// Non-zero once a replication peer proved a newer leader epoch
    /// exists: this deposed leader refuses writes with
    /// [`ServeError::StaleLeader`] and ends follower connections.
    fenced_by: AtomicU64,
    /// Registry-wide observability counters (see [`crate::metrics`]).
    metrics: ServeMetrics,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("graphs", &self.graph_names())
            .field("default_shards", &self.default_shards)
            .field("history", &self.history)
            .field("backpressure", &self.backpressure)
            .field("search", &self.search)
            .field("durable", &self.durable.is_some())
            .field("replica", &self.is_replica())
            .field("leader_epoch", &self.leader_epoch.load(Ordering::Acquire))
            .finish()
    }
}

impl Registry {
    /// An in-memory registry whose graphs default to `default_shards`
    /// shards, with default history (latest epoch only) and no
    /// back-pressure bound.
    pub fn new(default_shards: usize) -> Self {
        Self::with_config(RegistryConfig {
            default_shards,
            ..RegistryConfig::default()
        })
        .expect("an in-memory registry cannot fail to open")
    }

    /// Open a registry under the given durability policy with default
    /// history and back-pressure. See [`Registry::with_config`].
    pub fn open(default_shards: usize, durability: Durability) -> Result<Self, ServeError> {
        Self::with_config(RegistryConfig {
            default_shards,
            durability,
            ..RegistryConfig::default()
        })
    }

    /// Open a registry under a full [`RegistryConfig`]. With
    /// [`Durability::Wal`] this **recovers**: the data directory is
    /// created if missing, the latest valid checkpoint is loaded, the
    /// WAL tail is replayed on top (a torn final record — a crash
    /// mid-append — is truncated away), and the registry resumes exactly
    /// where the last committed batch left it. Damaged durable state
    /// (checksum mismatches, non-tiling segments, retired history)
    /// surfaces as [`ServeError::Corrupt`]; it never panics and never
    /// silently serves a shortened history.
    pub fn with_config(config: RegistryConfig) -> Result<Self, ServeError> {
        Self::open_inner(config, None)
    }

    /// Open a **read-only replica** registry: same recovery as
    /// [`Registry::with_config`] (the config must be durable — a replica
    /// without its own WAL could not resume after a crash), plus two
    /// bootstrap crash-window repairs, with all public write entry
    /// points rejected as [`ServeError::ReadOnlyReplica`]. Used by
    /// [`crate::replicate::Follower`].
    pub(crate) fn open_replica(
        config: RegistryConfig,
        status: Arc<ReplicationStatus>,
    ) -> Result<Self, ServeError> {
        Self::open_inner(config, Some(status))
    }

    fn open_inner(
        config: RegistryConfig,
        replica: Option<Arc<ReplicationStatus>>,
    ) -> Result<Self, ServeError> {
        let RegistryConfig {
            default_shards,
            history,
            backpressure,
            durability,
            search,
        } = config;
        // Reject a nonsensical default search policy now, not on the
        // first read: a server that starts cleanly and then fails every
        // Classify/Similar with ZeroLimit — naming a parameter the
        // client never sent — is a misconfiguration, not a query error.
        search.validate()?;
        let history = HistoryPolicy::keep(history.keep);
        let Durability::Wal {
            dir,
            sync,
            checkpoint_every,
        } = durability
        else {
            assert!(
                replica.is_none(),
                "a replica registry must be durable (its WAL is the resume point)"
            );
            return Ok(Registry {
                entries: RwLock::new(HashMap::new()),
                default_shards: default_shards.max(1),
                history,
                backpressure,
                search,
                durable: None,
                group: None,
                replica: RwLock::new(None),
                leader_epoch: AtomicU64::new(0),
                fenced_by: AtomicU64::new(0),
                metrics: ServeMetrics::new(),
            });
        };
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServeError::storage(format!("creating {}: {e}", dir.display())))?;
        // One process at a time: concurrent writers would interleave
        // frames in the same segment and destroy the log.
        let lock = wal::DirLock::acquire(&dir)?;
        // A crash between a checkpoint's temp write and its rename can
        // orphan a state-sized *.tmp file; nothing else ever reads one.
        checkpoint::sweep_orphaned_temps(&dir)?;
        let loaded = checkpoint::load_latest(&dir)?;
        let min_lsn = loaded.as_ref().map_or(0, |(c, _)| c.lsn);
        // The leader epoch (fencing token) is persisted in two places —
        // a dedicated `leader-epoch` file and the checkpoint payload.
        // Either may lag the other across a crash (the file is written
        // first on promotion; the checkpoint stamps it lazily), so
        // recovery takes the max.
        let leader_epoch =
            wal::load_leader_epoch(&dir)?.max(loaded.as_ref().map_or(0, |(c, _)| c.leader_epoch));
        // Replica bootstrap crash window #1: a follower installing a
        // shipped checkpoint wipes its superseded log *before* creating
        // the fresh segment ([`WalWriter::reset_to`]); a crash in
        // between leaves a durable checkpoint and no segments at all.
        // The checkpoint is self-contained, so restart the log there.
        // Leaders keep the strict behavior — for them a segment-less
        // non-empty dir means someone deleted log history.
        let scan = if replica.is_some() && min_lsn > 0 && wal::segment_paths(&dir)?.is_empty() {
            wal::LogScan {
                records: Vec::new(),
                next_lsn: min_lsn,
                last_segment_start: None,
                truncated_bytes: 0,
            }
        } else {
            wal::scan(&dir, min_lsn)?
        };
        let mut entries: HashMap<String, Arc<Entry>> = HashMap::new();
        if let Some((ckpt, path)) = loaded {
            for g in ckpt.graphs {
                let writer =
                    DynamicGee::from_state(g.state).map_err(|detail| ServeError::Corrupt {
                        path: path.display().to_string(),
                        detail: format!("graph {:?}: {detail}", g.name),
                    })?;
                entries.insert(
                    g.name,
                    Arc::new(make_entry(
                        writer,
                        g.shards,
                        g.epoch,
                        g.updates_applied,
                        history,
                        backpressure,
                    )),
                );
            }
        }
        for (lsn, record) in &scan.records {
            if *lsn < min_lsn {
                continue;
            }
            replay(&mut entries, record, history, backpressure).map_err(|detail| {
                ServeError::Corrupt {
                    path: dir.display().to_string(),
                    detail: format!("replaying lsn {lsn}: {detail}"),
                }
            })?;
        }
        let mut writer = WalWriter::open(&dir, sync, &scan)?;
        // Replica bootstrap crash window #2: the shipped checkpoint hit
        // disk but the log reset did not finish — the surviving log is
        // the follower's superseded pre-bootstrap history, ending before
        // the checkpoint's LSN. Finish the reset now (every record the
        // old log held is covered by the checkpoint). On a leader this
        // state is unreachable: its checkpoints are always taken at the
        // log head.
        if replica.is_some() && writer.next_lsn() < min_lsn {
            writer.reset_to(min_lsn)?;
        }
        let group = match sync {
            SyncPolicy::Group { window } => Some(GroupCommit::new(window)),
            SyncPolicy::Always | SyncPolicy::Never => None,
        };
        Ok(Registry {
            entries: RwLock::new(entries),
            default_shards: default_shards.max(1),
            history,
            backpressure,
            search,
            durable: Some(Mutex::new(DurableLog {
                writer,
                dir,
                checkpoint_every,
                records_since_checkpoint: 0,
                _lock: lock,
            })),
            group,
            replica: RwLock::new(replica),
            leader_epoch: AtomicU64::new(leader_epoch),
            fenced_by: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
        })
    }

    /// The registry-wide observability counters (shared with the
    /// engine's request timing; snapshotted by `Request::Metrics`).
    pub(crate) fn serve_metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Data fsyncs the WAL writer has issued for appends since open —
    /// the protocol-v4 `wal_fsyncs` metric. `0` on an in-memory
    /// registry (and under [`SyncPolicy::Never`](crate::SyncPolicy),
    /// which never syncs on the append path).
    pub fn wal_fsyncs(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.lock().expect("log lock poisoned").writer.fsyncs())
    }

    /// Whether this registry persists its state.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The durable data directory, if any.
    pub fn data_dir(&self) -> Option<PathBuf> {
        self.durable
            .as_ref()
            .map(|d| d.lock().expect("log lock poisoned").dir.clone())
    }

    /// The configured epoch retention.
    pub fn history_policy(&self) -> HistoryPolicy {
        self.history
    }

    /// The configured back-pressure bound.
    pub fn backpressure_policy(&self) -> BackpressurePolicy {
        self.backpressure
    }

    /// The default search policy for `Similar`/`Classify` reads
    /// (requests may override it per query).
    pub fn search_policy(&self) -> SearchPolicy {
        self.search
    }

    /// Arm a WAL crash point for the crash-recovery harness: the next
    /// durable append writes a chosen prefix of its record, flushes it,
    /// and fails — the on-disk outcome of a process killed mid-append.
    /// No-op on an in-memory registry.
    pub fn inject_wal_fault(&self, fault: crate::wal::FaultPoint) {
        if let Some(durable) = &self.durable {
            durable
                .lock()
                .expect("log lock poisoned")
                .writer
                .inject_fault(fault);
        }
    }

    /// Force a checkpoint now (compacting the WAL). Returns the covered
    /// LSN, or `None` on an in-memory registry.
    pub fn checkpoint_now(&self) -> Result<Option<u64>, ServeError> {
        let Some(durable) = &self.durable else {
            return Ok(None);
        };
        let mut log = durable.lock().expect("log lock poisoned");
        let entries = self.entries.read().expect("registry lock poisoned").clone();
        log.take_checkpoint(&entries, self.leader_epoch.load(Ordering::Acquire))
            .map(Some)
    }

    /// Register `name`, computing the epoch-0 embedding from the edge
    /// list and labels. Replaces any previous graph of the same name.
    /// On a durable registry the full input is WAL-logged (commit point)
    /// before the graph becomes visible; the only error source is that
    /// durable append.
    pub fn register(
        &self,
        name: &str,
        el: &EdgeList,
        labels: &Labels,
    ) -> Result<Arc<Snapshot>, ServeError> {
        self.register_with_shards(name, el, labels, self.default_shards)
    }

    /// [`Registry::register`] with an explicit shard count.
    pub fn register_with_shards(
        &self,
        name: &str,
        el: &EdgeList,
        labels: &Labels,
        shards: usize,
    ) -> Result<Arc<Snapshot>, ServeError> {
        self.check_writable(name)?;
        assert_eq!(
            el.num_vertices(),
            labels.len(),
            "labels must cover every vertex"
        );
        let log = self
            .durable
            .as_ref()
            .map(|d| d.lock().expect("log lock poisoned"));
        if let Some(mut log) = log {
            let lsn = log.writer.append(&WalRecord::Register {
                name: name.to_string(),
                shards: shards.min(u32::MAX as usize) as u32,
                num_vertices: el.num_vertices() as u64,
                num_classes: labels.num_classes() as u32,
                labels: labels.raw_slice().to_vec(),
                edges: el.edges().iter().map(|e| (e.u, e.v, e.w)).collect(),
            })?;
            let snapshot = self.register_in_memory(name, el, labels, shards);
            self.bump_and_maybe_checkpoint(&mut log)?;
            drop(log);
            self.group_commit_wait(lsn)?;
            Ok(snapshot)
        } else {
            Ok(self.register_in_memory(name, el, labels, shards))
        }
    }

    fn register_in_memory(
        &self,
        name: &str,
        el: &EdgeList,
        labels: &Labels,
        shards: usize,
    ) -> Arc<Snapshot> {
        let writer = DynamicGee::new(el, labels);
        let entry = Arc::new(make_entry(
            writer,
            shards.min(u32::MAX as usize) as u32,
            0,
            0,
            self.history,
            self.backpressure,
        ));
        let snapshot = entry.snapshot();
        self.entries
            .write()
            .expect("registry lock poisoned")
            .insert(name.to_string(), entry);
        snapshot
    }

    /// Drop a graph. Returns `Ok(false)` if it was not registered. On a
    /// durable registry the removal is WAL-logged, so recovery drops the
    /// graph too, and its durable lineage (Register/Batch records) is
    /// physically retired at the next checkpoint compaction.
    /// Re-registering the same name afterwards starts a fresh epoch-0
    /// lineage.
    pub fn deregister(&self, name: &str) -> Result<bool, ServeError> {
        self.check_writable(name)?;
        // The log lock must be held across the in-memory removal (as
        // register/apply_updates hold it across their mutations):
        // releasing it in between would let a concurrent durable write
        // log a Batch/Register *after* the Deregister record while the
        // graph is still visible, and replay of that order fails.
        let log = self
            .durable
            .as_ref()
            .map(|d| d.lock().expect("log lock poisoned"));
        if let Some(mut log) = log {
            let present = self
                .entries
                .read()
                .expect("registry lock poisoned")
                .contains_key(name);
            if !present {
                return Ok(false);
            }
            let lsn = log.writer.append(&WalRecord::Deregister {
                name: name.to_string(),
            })?;
            let removed = self
                .entries
                .write()
                .expect("registry lock poisoned")
                .remove(name)
                .is_some();
            self.bump_and_maybe_checkpoint(&mut log)?;
            drop(log);
            self.group_commit_wait(lsn)?;
            Ok(removed)
        } else {
            Ok(self
                .entries
                .write()
                .expect("registry lock poisoned")
                .remove(name)
                .is_some())
        }
    }

    /// Names of registered graphs, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    pub(crate) fn entry(&self, name: &str) -> Result<Arc<Entry>, ServeError> {
        self.entries
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownGraph {
                graph: name.to_string(),
            })
    }

    /// The published snapshot of `name`.
    pub fn snapshot(&self, name: &str) -> Result<Arc<Snapshot>, ServeError> {
        Ok(self.entry(name)?.snapshot())
    }

    /// The retained snapshot of `name` at `epoch`
    /// ([`ServeError::EpochEvicted`] when the history ring has dropped
    /// it — or not yet published it).
    pub fn snapshot_at(&self, name: &str, epoch: u64) -> Result<Arc<Snapshot>, ServeError> {
        self.entry(name)?.snapshot_at(name, epoch)
    }

    /// The retained epoch range `(oldest, newest)` of `name`.
    pub fn epoch_range(&self, name: &str) -> Result<(u64, u64), ServeError> {
        Ok(self.entry(name)?.epoch_range())
    }

    /// Update batches currently in flight for `name` (the back-pressure
    /// gauge; includes held [`WriteSlot`]s).
    pub fn pending_batches(&self, name: &str) -> Result<u64, ServeError> {
        Ok(self.entry(name)?.pending.load(Ordering::Acquire))
    }

    /// Reserve one of `name`'s write slots without applying anything —
    /// a write fence: while held, it counts against
    /// [`BackpressurePolicy::max_pending_batches`], so with
    /// `max_pending_batches = 1` all concurrent `apply_updates` calls
    /// are rejected with [`ServeError::Overloaded`] until the slot
    /// drops. Useful to quiesce writes around maintenance (and to test
    /// back-pressure deterministically).
    pub fn hold_write_slot(&self, name: &str) -> Result<WriteSlot, ServeError> {
        let entry = self.entry(name)?;
        self.acquire_write_slot(name, entry)
    }

    /// [`WriteSlot::acquire`] with the rejection counted toward the
    /// `overloaded` metric (every acquisition path goes through here so
    /// the counter misses nothing).
    fn acquire_write_slot(&self, graph: &str, entry: Arc<Entry>) -> Result<WriteSlot, ServeError> {
        let slot = WriteSlot::acquire(graph, entry);
        if slot.is_err() {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
        }
        slot
    }

    /// Apply an update batch through the writer and publish the next
    /// epoch copy-on-write. The whole batch becomes visible atomically:
    /// readers see either the old epoch or the new one, never a
    /// half-applied state.
    ///
    /// Returns `(applied, snapshot)`; `applied` counts updates that took
    /// effect (`RemoveEdge` of a missing edge is a no-op and doesn't
    /// count). An empty batch is a no-op: it returns the currently
    /// published snapshot without publishing a new epoch (and writes
    /// nothing to the WAL).
    ///
    /// Under a bounded [`BackpressurePolicy`], a batch that would exceed
    /// the in-flight bound fails fast with [`ServeError::Overloaded`]
    /// — checked before any lock is taken, so an overloaded graph
    /// rejects instead of queueing.
    ///
    /// On a durable registry the batch is validated, WAL-appended
    /// (fsynced under [`SyncPolicy::Always`](crate::SyncPolicy::Always) — the commit point), then
    /// applied; a [`ServeError::Storage`] means the batch did **not**
    /// commit. If the automatic post-commit checkpoint fails, its
    /// `Storage` error is returned even though the batch itself is
    /// durable and applied — the next successful batch retries the
    /// checkpoint.
    pub fn apply_updates(
        &self,
        name: &str,
        updates: &[Update],
    ) -> Result<(usize, Arc<Snapshot>), ServeError> {
        self.check_writable(name)?;
        // Back-pressure gate, before any lock: an overloaded graph
        // rejects immediately rather than joining the queue on the
        // writer/log locks.
        let gate = self.entry(name)?;
        if updates.is_empty() {
            return Ok((0, gate.snapshot()));
        }
        let mut slot = self.acquire_write_slot(name, gate)?;
        // On a durable registry the entry must be resolved *under* the
        // log lock: resolving first would let a concurrent deregister or
        // re-register commit its record between our lookup and our
        // append, making the WAL order diverge from the apply order (a
        // Batch after a Deregister fails replay).
        let log = self
            .durable
            .as_ref()
            .map(|d| d.lock().expect("log lock poisoned"));
        let entry = self.entry(name)?;
        // The graph may have been deregistered and re-registered between
        // the gate and here; re-home the slot so the bound (and the
        // pending gauge) applies to the entry this batch actually writes.
        if !Arc::ptr_eq(&slot.entry, &entry) {
            slot = self.acquire_write_slot(name, entry.clone())?;
        }
        let _slot = slot;
        let mut writer = entry.writer.lock().expect("writer lock poisoned");
        validate_batch(&writer, updates)?;
        if let Some(mut log) = log {
            let lsn = log.writer.append(&WalRecord::Batch {
                name: name.to_string(),
                updates: updates.to_vec(),
            })?;
            let result = apply_batch(&entry, &mut writer, updates);
            drop(writer);
            self.bump_and_maybe_checkpoint(&mut log)?;
            // Group commit waits with every lock released, so other
            // writers append (and share the next fsync) meanwhile.
            drop(log);
            self.group_commit_wait(lsn)?;
            Ok(result)
        } else {
            Ok(apply_batch(&entry, &mut writer, updates))
        }
    }

    /// Block until an fsync covers `lsn` (no-op unless the WAL runs
    /// under [`SyncPolicy::Group`]). Called *after* the log lock is
    /// released: the appended record is already applied and visible, and
    /// the caller is only waiting for durability. The first waiter to
    /// find no sync in flight becomes leader — it sleeps out the window
    /// (collecting concurrent arrivals), samples the tail under the log
    /// lock, fsyncs it once with the lock *released* (appends overlap
    /// the disk wait and join the next sync), and wakes everyone. LSNs
    /// below the sampled
    /// high water that live in retired segments were covered by the
    /// durable checkpoint taken at rotation, so `durable_lsn = high` is
    /// sound across compaction.
    fn group_commit_wait(&self, lsn: u64) -> Result<(), ServeError> {
        let (Some(group), Some(durable)) = (&self.group, &self.durable) else {
            return Ok(());
        };
        let mut state = group.state.lock().expect("group-commit lock poisoned");
        loop {
            if state.durable_lsn > lsn {
                return Ok(());
            }
            if state.sync_running {
                state = group.cv.wait(state).expect("group-commit lock poisoned");
                continue;
            }
            state.sync_running = true;
            drop(state);
            if !group.window.is_zero() {
                std::thread::sleep(group.window);
            }
            // Sample the high water and dup the tail handle under the
            // log lock, but run the fsync with the lock released:
            // writers append (and join the next window) while the disk
            // works, which is where group commit's scaling comes from.
            let synced = {
                let mut log = durable.lock().expect("log lock poisoned");
                log.writer.begin_group_sync()
            }
            .and_then(|(high, file)| {
                file.sync_data()
                    .map(|()| high)
                    .map_err(|e| ServeError::storage(format!("syncing WAL: {e}")))
            });
            state = group.state.lock().expect("group-commit lock poisoned");
            state.sync_running = false;
            group.cv.notify_all();
            match synced {
                // `high > lsn` always holds — our own append preceded
                // the sample — so the next loop turn returns Ok.
                Ok(high) => state.durable_lsn = state.durable_lsn.max(high),
                // The leader surfaces its own error; woken waiters
                // re-elect and surface theirs.
                Err(e) => return Err(e),
            }
        }
    }

    /// Count one committed record toward the checkpoint cadence and
    /// compact when it is reached. Caller holds the log lock.
    fn bump_and_maybe_checkpoint(&self, log: &mut DurableLog) -> Result<(), ServeError> {
        log.records_since_checkpoint += 1;
        if log.checkpoint_every > 0 && log.records_since_checkpoint >= log.checkpoint_every {
            let entries = self.entries.read().expect("registry lock poisoned").clone();
            log.take_checkpoint(&entries, self.leader_epoch.load(Ordering::Acquire))?;
        }
        Ok(())
    }

    /// Reject the public durable write entry points on a read-only
    /// replica (only the replication pull loop may mutate, or WAL order
    /// would diverge from the leader's) and on a fenced deposed leader
    /// (a newer leader epoch exists; accepting the write would fork
    /// history — the split brain fencing exists to prevent).
    fn check_writable(&self, graph: &str) -> Result<(), ServeError> {
        if let Some(status) = &*self.replica.read().expect("replica lock poisoned") {
            return Err(ServeError::ReadOnlyReplica {
                graph: graph.to_string(),
                leader: status.leader().to_string(),
            });
        }
        if let Some(seen) = self.fenced_by() {
            return Err(ServeError::StaleLeader {
                leader_epoch: self.leader_epoch.load(Ordering::Acquire),
                seen_epoch: seen,
            });
        }
        Ok(())
    }

    /// Apply one record shipped by the leader: durably append it at
    /// exactly the expected LSN, then run it through the same `replay`
    /// path recovery uses — which publishes through the live entries
    /// map, so followers re-materialize the leader's epochs with
    /// identical dirty-tracking structure (fingerprint-identical
    /// snapshots). The follower takes its own checkpoints on its own
    /// cadence, exactly like a leader applying live traffic.
    pub(crate) fn apply_replicated(&self, lsn: u64, record: &WalRecord) -> Result<(), ServeError> {
        let durable = self
            .durable
            .as_ref()
            .expect("replica registries are always durable");
        let mut log = durable.lock().expect("log lock poisoned");
        let next = log.writer.next_lsn();
        if lsn != next {
            return Err(ServeError::Corrupt {
                path: log.dir.display().to_string(),
                detail: format!("replication stream sent lsn {lsn}, local log expects {next}"),
            });
        }
        log.writer.append(record)?;
        {
            let mut entries = self.entries.write().expect("registry lock poisoned");
            replay(&mut entries, record, self.history, self.backpressure).map_err(|detail| {
                ServeError::Corrupt {
                    path: log.dir.display().to_string(),
                    detail: format!("applying replicated lsn {lsn}: {detail}"),
                }
            })?;
        }
        self.bump_and_maybe_checkpoint(&mut log)?;
        // A follower configured with `SyncPolicy::Group` coalesces its
        // fsyncs too; its pull loop is sequential, so this just bounds
        // durability lag to the window.
        drop(log);
        self.group_commit_wait(lsn)
    }

    /// Install a leader-shipped bootstrap checkpoint, replacing all
    /// local state: the follower's log is behind the leader's compaction
    /// horizon, so its own history is unreachable from the stream.
    /// Durable-first ordering — the checkpoint hits disk before the
    /// local log is reset to its LSN — so every crash window recovers to
    /// the checkpoint (see the replica repairs in `open_inner`).
    pub(crate) fn install_bootstrap(&self, mut ckpt: Checkpoint) -> Result<(), ServeError> {
        let durable = self
            .durable
            .as_ref()
            .expect("replica registries are always durable");
        let mut log = durable.lock().expect("log lock poisoned");
        let lsn = ckpt.lsn;
        // Never let a shipped checkpoint roll the locally-seen leader
        // epoch backward: the fencing token is monotone per data dir.
        ckpt.leader_epoch = ckpt
            .leader_epoch
            .max(self.leader_epoch.load(Ordering::Acquire));
        checkpoint::save(&log.dir, &ckpt)?;
        let mut entries: HashMap<String, Arc<Entry>> = HashMap::new();
        for g in ckpt.graphs {
            let writer = DynamicGee::from_state(g.state).map_err(|detail| ServeError::Corrupt {
                path: format!("bootstrap checkpoint at lsn {lsn}"),
                detail: format!("graph {:?}: {detail}", g.name),
            })?;
            entries.insert(
                g.name,
                Arc::new(make_entry(
                    writer,
                    g.shards,
                    g.epoch,
                    g.updates_applied,
                    self.history,
                    self.backpressure,
                )),
            );
        }
        log.writer.reset_to(lsn)?;
        checkpoint::retire_older_than(&log.dir, lsn)?;
        log.records_since_checkpoint = 0;
        *self.entries.write().expect("registry lock poisoned") = entries;
        Ok(())
    }

    /// The WAL high-water mark — the LSN the next durable record will
    /// be assigned (also a follower's resume point). `None` on an
    /// in-memory registry.
    pub fn wal_high_water(&self) -> Option<u64> {
        self.durable
            .as_ref()
            .map(|d| d.lock().expect("log lock poisoned").writer.next_lsn())
    }

    /// The LSN covered by the latest on-disk checkpoint — the stream
    /// floor a leader can serve without a bootstrap. `None` on an
    /// in-memory registry or before the first checkpoint.
    pub fn latest_checkpoint_lsn(&self) -> Result<Option<u64>, ServeError> {
        let Some(dir) = self.data_dir() else {
            return Ok(None);
        };
        Ok(checkpoint::checkpoint_paths(&dir)?
            .pop()
            .map(|(lsn, _)| lsn))
    }

    /// Published epoch of every graph, sorted by name (the leader's
    /// heartbeat payload; what follower lag is measured against).
    pub fn published_epochs(&self) -> Vec<(String, u64)> {
        let entries = self.entries.read().expect("registry lock poisoned");
        let mut epochs: Vec<(String, u64)> = entries
            .iter()
            .map(|(name, entry)| (name.clone(), entry.snapshot().epoch))
            .collect();
        drop(entries);
        epochs.sort();
        epochs
    }

    /// Whether this registry is a read-only replica.
    pub fn is_replica(&self) -> bool {
        self.replica
            .read()
            .expect("replica lock poisoned")
            .is_some()
    }

    /// The leader epoch (replication fencing token) this registry has
    /// durably recorded: the epoch it serves writes under (leader) or
    /// replicates under (follower). `0` until the data dir has ever led
    /// or followed a promoted leader.
    pub fn leader_epoch(&self) -> u64 {
        self.leader_epoch.load(Ordering::Acquire)
    }

    /// `Some(epoch)` once a replication peer proved a leader epoch newer
    /// than [`Registry::leader_epoch`] exists — this deposed leader is
    /// **fenced**: writes fail with [`ServeError::StaleLeader`] and its
    /// follower connections are ended.
    pub fn fenced_by(&self) -> Option<u64> {
        match self.fenced_by.load(Ordering::Acquire) {
            0 => None,
            epoch => Some(epoch),
        }
    }

    /// Fence this registry: a peer proved `epoch` (newer than ours) is
    /// live. Monotone — a later, even newer epoch wins; an older or
    /// equal call is a no-op.
    pub(crate) fn fence(&self, epoch: u64) {
        self.fenced_by.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Durably record a leader epoch observed on the replication stream
    /// (no-op unless it is newer than the highest seen). Persists the
    /// `leader-epoch` file before publishing, so a crash cannot forget
    /// an epoch this follower already accepted records under.
    pub(crate) fn note_leader_epoch(&self, epoch: u64) -> Result<(), ServeError> {
        if epoch <= self.leader_epoch.load(Ordering::Acquire) {
            return Ok(());
        }
        let durable = self
            .durable
            .as_ref()
            .expect("replicating registries are always durable");
        let log = durable.lock().expect("log lock poisoned");
        wal::save_leader_epoch(&log.dir, epoch)?;
        self.leader_epoch.fetch_max(epoch, Ordering::AcqRel);
        Ok(())
    }

    /// Promote this registry to leader of a new epoch: durably bump the
    /// fencing token past every epoch this node has seen, then flip out
    /// of replica mode so writes start passing. Returns the new epoch.
    /// Usually reached via [`Follower::promote`](crate::Follower::promote)
    /// (which stops the pull loop first); also valid on a registry
    /// re-opened from a stopped follower's data dir (`gee promote`).
    /// Requires a durable registry.
    pub fn promote_to_leader(&self) -> Result<u64, ServeError> {
        let durable = self.durable.as_ref().ok_or_else(|| {
            ServeError::storage("promotion requires a durable registry (Durability::Wal)")
        })?;
        let log = durable.lock().expect("log lock poisoned");
        let epoch = self.leader_epoch.load(Ordering::Acquire) + 1;
        wal::save_leader_epoch(&log.dir, epoch)?;
        self.leader_epoch.store(epoch, Ordering::Release);
        drop(log);
        *self.replica.write().expect("replica lock poisoned") = None;
        // A fence by an older epoch is superseded by our own promotion.
        if self.fenced_by.load(Ordering::Acquire) < epoch {
            self.fenced_by.store(0, Ordering::Release);
        }
        Ok(epoch)
    }

    /// The protocol-v5 `replication` block carried by `Stats` and
    /// `Metrics`, or `None` when this registry neither leads nor
    /// follows. Both endpoints call this, so they never disagree at
    /// quiescence.
    pub fn replication_report(&self) -> Option<ReplicationReport> {
        let leader_epoch = self.leader_epoch.load(Ordering::Acquire);
        if let Some(status) = &*self.replica.read().expect("replica lock poisoned") {
            let last_durable_lsn = self.wal_high_water().unwrap_or(0);
            let leader_next = status.leader_next_lsn();
            let leader_epochs = status.leader_epochs();
            let entries = self.entries.read().expect("registry lock poisoned");
            let mut lag_epochs = 0u64;
            for (name, leader_epoch) in &leader_epochs {
                let local = entries.get(name).map_or(0, |e| e.snapshot().epoch);
                lag_epochs = lag_epochs.max(leader_epoch.saturating_sub(local));
            }
            Some(ReplicationReport {
                role: ReplicationRole::Follower,
                connected: status.is_connected(),
                shipped_records: 0,
                shipped_bytes: 0,
                follower_conns: 0,
                lag_epochs,
                lag_lsns: leader_next.saturating_sub(last_durable_lsn),
                last_durable_lsn,
                leader_epoch,
                fenced: false,
            })
        } else if self.metrics.replicating.load(Ordering::Acquire) {
            let follower_conns = self.metrics.follower_conns.load(Ordering::Acquire);
            Some(ReplicationReport {
                role: ReplicationRole::Leader,
                connected: follower_conns > 0,
                shipped_records: self.metrics.shipped_records.load(Ordering::Relaxed),
                shipped_bytes: self.metrics.shipped_bytes.load(Ordering::Relaxed),
                follower_conns,
                lag_epochs: 0,
                lag_lsns: 0,
                last_durable_lsn: self.wal_high_water().unwrap_or(0),
                leader_epoch,
                fenced: self.fenced_by().is_some(),
            })
        } else {
            None
        }
    }
}

/// Build an entry (and publish its snapshot) from a writer at `epoch`.
fn make_entry(
    writer: DynamicGee,
    requested_shards: u32,
    epoch: u64,
    updates_applied: u64,
    history: HistoryPolicy,
    backpressure: BackpressurePolicy,
) -> Entry {
    let layout = ShardLayout::new(writer.num_vertices(), requested_shards as usize);
    let snapshot = Arc::new(publish_full(&writer, &layout, epoch));
    let mut ring = VecDeque::with_capacity(history.keep.min(64));
    ring.push_back(snapshot);
    Entry {
        layout,
        requested_shards,
        writer: Mutex::new(writer),
        history: RwLock::new(ring),
        keep: history.keep.max(1),
        pending: AtomicU64::new(0),
        max_pending: backpressure.max_pending_batches.min(u64::MAX as usize) as u64,
        queries_served: AtomicU64::new(0),
        updates_applied: AtomicU64::new(updates_applied),
    }
}

/// Check a batch against writer dimensions without mutating anything, so
/// a mid-batch failure can't leave the writer half-mutated (and, on a
/// durable registry, so an invalid batch never reaches the WAL).
fn validate_batch(writer: &DynamicGee, updates: &[Update]) -> Result<(), ServeError> {
    let n = writer.num_vertices();
    let k = writer.dim();
    for u in updates {
        match *u {
            Update::InsertEdge { u, v, w } | Update::RemoveEdge { u, v, w } => {
                for x in [u, v] {
                    if x as usize >= n {
                        return Err(ServeError::VertexOutOfRange {
                            vertex: x,
                            num_vertices: n,
                        });
                    }
                }
                // A NaN/Inf weight would poison every distance the
                // embedding later feeds — and JSON cannot carry it,
                // so accepting it in-process would break Engine ==
                // Client equivalence.
                if !w.is_finite() {
                    return Err(ServeError::NonFinite {
                        param: format!("weight of edge ({u}, {v})"),
                    });
                }
            }
            Update::SetLabel { v, label } => {
                if v as usize >= n {
                    return Err(ServeError::VertexOutOfRange {
                        vertex: v,
                        num_vertices: n,
                    });
                }
                if let Some(c) = label {
                    if c as usize >= k {
                        return Err(ServeError::ClassOutOfRange {
                            class: c,
                            num_classes: k,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Which per-shard state a batch invalidated, tracked while applying.
struct Dirty {
    rows: Vec<bool>,
    labels: Vec<bool>,
}

impl Dirty {
    fn clean(num_shards: usize) -> Dirty {
        Dirty {
            rows: vec![false; num_shards],
            labels: vec![false; num_shards],
        }
    }
}

/// Apply a validated batch and publish the next epoch copy-on-write.
/// Shared verbatim by the live path and WAL replay, which is what makes
/// replay bit-exact *and* structure-exact (same blocks rebuilt, same
/// blocks shared).
fn apply_batch(
    entry: &Entry,
    writer: &mut DynamicGee,
    updates: &[Update],
) -> (usize, Arc<Snapshot>) {
    let layout = &entry.layout;
    let mut dirty = Dirty::clean(layout.num_shards());
    let mut applied = 0usize;
    for u in updates {
        match *u {
            Update::InsertEdge { u, v, w } => {
                writer.insert_edge(u, v, w);
                applied += 1;
                dirty.rows[layout.shard_of(u)] = true;
                dirty.rows[layout.shard_of(v)] = true;
            }
            Update::RemoveEdge { u, v, w } => {
                if writer.remove_edge(u, v, w) {
                    applied += 1;
                    dirty.rows[layout.shard_of(u)] = true;
                    dirty.rows[layout.shard_of(v)] = true;
                }
            }
            Update::SetLabel { v, label } => {
                // A real label move changes class counts, which rescale
                // the old and new class columns of *every* row — all
                // shards' rows are dirty, but only v's shard's labels.
                if writer.label(v) != label {
                    dirty.rows.iter_mut().for_each(|d| *d = true);
                    dirty.labels[layout.shard_of(v)] = true;
                }
                writer.set_label(v, label);
                applied += 1;
            }
        }
    }
    let parent = entry.snapshot();
    let snapshot = Arc::new(publish_cow(
        writer,
        layout,
        parent.epoch + 1,
        &parent,
        &dirty,
    ));
    entry.publish(snapshot.clone());
    entry
        .updates_applied
        .fetch_add(applied as u64, Ordering::Relaxed);
    (applied, snapshot)
}

/// Apply one WAL record to the recovering entry map. Errors are strings;
/// the caller wraps them with the offending LSN into
/// [`ServeError::Corrupt`].
fn replay(
    entries: &mut HashMap<String, Arc<Entry>>,
    record: &WalRecord,
    history: HistoryPolicy,
    backpressure: BackpressurePolicy,
) -> Result<(), String> {
    match record {
        WalRecord::Register {
            name,
            shards,
            num_vertices,
            num_classes,
            labels,
            edges,
        } => {
            let n = *num_vertices as usize;
            let k = *num_classes as usize;
            if labels.len() != n {
                return Err(format!("{} labels for {n} vertices", labels.len()));
            }
            let opts: Vec<Option<u32>> = labels
                .iter()
                .map(|&c| match c {
                    -1 => Ok(None),
                    c if c >= 0 && (c as usize) < k => Ok(Some(c as u32)),
                    c => Err(format!("label {c} outside K={k}")),
                })
                .collect::<Result<_, _>>()?;
            let mut edge_vec = Vec::with_capacity(edges.len());
            for &(u, v, w) in edges {
                if u as usize >= n || v as usize >= n {
                    return Err(format!("edge ({u}, {v}) outside n={n}"));
                }
                edge_vec.push(Edge::new(u, v, w));
            }
            let el = EdgeList::new_unchecked(n, edge_vec);
            let writer = DynamicGee::new(&el, &Labels::from_options_with_k(&opts, k));
            entries.insert(
                name.clone(),
                Arc::new(make_entry(writer, *shards, 0, 0, history, backpressure)),
            );
            Ok(())
        }
        WalRecord::Batch { name, updates } => {
            let entry = entries
                .get(name)
                .ok_or_else(|| format!("batch for unregistered graph {name:?}"))?
                .clone();
            let mut writer = entry.writer.lock().expect("writer lock poisoned");
            validate_batch(&writer, updates).map_err(|e| format!("invalid logged batch: {e}"))?;
            apply_batch(&entry, &mut writer, updates);
            Ok(())
        }
        WalRecord::Deregister { name } => match entries.remove(name) {
            Some(_) => Ok(()),
            None => Err(format!("deregister of unregistered graph {name:?}")),
        },
    }
}

/// Raw labels of `lo..hi` from the writer (`-1` = unknown).
fn writer_labels(writer: &DynamicGee, lo: u32, hi: u32) -> Vec<i32> {
    (lo..hi)
        .map(|v| writer.label(v).map_or(-1, |c| c as i32))
        .collect()
}

/// Materialize a full snapshot from the writer state, one shard per
/// thread (registration and checkpoint restore — no parent to share
/// with).
fn publish_full(writer: &DynamicGee, layout: &ShardLayout, epoch: u64) -> Snapshot {
    let k = writer.dim();
    let blocks: Vec<Arc<ShardBlock>> = layout.par_map(|_, lo, hi| {
        Arc::new(ShardBlock::build(
            lo,
            hi,
            k,
            writer.embedding_rows(lo as usize, hi as usize),
            writer_labels(writer, lo, hi),
        ))
    });
    Snapshot::from_blocks(epoch, writer.num_vertices(), k, blocks)
}

/// Publish the next epoch copy-on-write: rebuild the dirty blocks (rows
/// always; labels and train set only where labels moved) and share the
/// rest with the parent epoch. Clean rows are bit-identical to a full
/// rebuild — edge ops touch only their endpoints' `Ẑ` rows and label
/// moves mark everything dirty — which `tests/cow_property.rs` verifies
/// element-wise against a from-scratch rebuild.
fn publish_cow(
    writer: &DynamicGee,
    layout: &ShardLayout,
    epoch: u64,
    parent: &Snapshot,
    dirty: &Dirty,
) -> Snapshot {
    let k = writer.dim();
    let blocks: Vec<Arc<ShardBlock>> = layout.par_map(|i, lo, hi| {
        let parent_block = &parent.blocks()[i];
        if !dirty.rows[i] && !dirty.labels[i] {
            return parent_block.clone();
        }
        let rows = writer.embedding_rows(lo as usize, hi as usize);
        if dirty.labels[i] {
            Arc::new(ShardBlock::build(
                lo,
                hi,
                k,
                rows,
                writer_labels(writer, lo, hi),
            ))
        } else {
            // Labels untouched: share the labels slice and skip the
            // train-set regrouping.
            Arc::new(parent_block.with_rows(rows))
        }
    });
    Snapshot::from_blocks(epoch, writer.num_vertices(), k, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_gen::LabelSpec;

    fn setup() -> (Registry, EdgeList, Labels) {
        let el = gee_gen::erdos_renyi_gnm(80, 400, 9);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                80,
                LabelSpec {
                    num_classes: 4,
                    labeled_fraction: 0.4,
                },
                5,
            ),
            4,
        );
        (Registry::new(4), el, labels)
    }

    #[test]
    fn register_publishes_epoch_zero_matching_static_embed() {
        let (reg, el, labels) = setup();
        let snap = reg.register("g", &el, &labels).unwrap();
        assert_eq!(snap.epoch, 0);
        let statik = gee_core::serial_optimized::embed(&el, &labels);
        statik.assert_close(&snap.to_embedding(), 1e-12);
    }

    #[test]
    fn apply_updates_bumps_epoch_and_matches_recompute() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels).unwrap();
        let (applied, snap) = reg
            .apply_updates(
                "g",
                &[
                    Update::InsertEdge { u: 1, v: 2, w: 2.0 },
                    Update::SetLabel {
                        v: 3,
                        label: Some(0),
                    },
                    Update::RemoveEdge { u: 1, v: 2, w: 2.0 },
                    Update::RemoveEdge {
                        u: 0,
                        v: 1,
                        w: 555.0,
                    }, // missing: no-op
                ],
            )
            .unwrap();
        assert_eq!(applied, 3);
        assert_eq!(snap.epoch, 1);
        // Oracle: fresh static recompute over the mutated graph/labels.
        let mut dg = DynamicGee::new(&el, &labels);
        dg.set_label(3, Some(0));
        let oracle = gee_core::serial_optimized::embed(&dg.edge_list(), &dg.labels());
        oracle.assert_close(&snap.to_embedding(), 1e-11);
    }

    #[test]
    fn batch_is_atomic_on_validation_failure() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels).unwrap();
        let before = reg.snapshot("g").unwrap();
        let err = reg
            .apply_updates(
                "g",
                &[
                    Update::InsertEdge { u: 0, v: 1, w: 1.0 },
                    Update::InsertEdge {
                        u: 0,
                        v: 10_000,
                        w: 1.0,
                    }, // invalid
                ],
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::VertexOutOfRange { .. }));
        let after = reg.snapshot("g").unwrap();
        assert_eq!(after.epoch, before.epoch, "failed batch must not publish");
        assert_eq!(
            after.to_embedding().as_slice(),
            before.to_embedding().as_slice()
        );
    }

    #[test]
    fn old_snapshots_stay_consistent_after_writes() {
        let (reg, el, labels) = setup();
        let old = reg.register("g", &el, &labels).unwrap();
        let frozen = old.to_embedding().as_slice().to_vec();
        // Insert an edge to a *labeled* vertex so the write provably
        // changes the embedding (an edge between two unlabeled vertices
        // contributes nothing).
        let (t, _) = labels
            .iter_labeled()
            .next()
            .expect("some vertex is labeled");
        reg.apply_updates(
            "g",
            &[Update::InsertEdge {
                u: 0,
                v: t,
                w: 10.0,
            }],
        )
        .unwrap();
        assert_eq!(
            old.to_embedding().as_slice(),
            &frozen[..],
            "held snapshot must not move"
        );
        assert_ne!(
            reg.snapshot("g").unwrap().to_embedding().as_slice(),
            &frozen[..],
            "published snapshot must reflect the write"
        );
    }

    #[test]
    fn unknown_graph_is_an_error() {
        let (reg, ..) = setup();
        assert!(matches!(
            reg.snapshot("nope"),
            Err(ServeError::UnknownGraph { .. })
        ));
    }

    #[test]
    fn non_finite_weights_are_rejected_atomically() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels).unwrap();
        let before = reg.snapshot("g").unwrap();
        for w in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = reg
                .apply_updates(
                    "g",
                    &[
                        Update::InsertEdge { u: 0, v: 1, w: 1.0 },
                        Update::InsertEdge { u: 2, v: 3, w },
                    ],
                )
                .unwrap_err();
            assert!(matches!(err, ServeError::NonFinite { .. }), "{w}: {err}");
        }
        assert_eq!(
            reg.snapshot("g").unwrap().epoch,
            before.epoch,
            "nothing published"
        );
    }

    #[test]
    fn empty_update_batch_does_not_publish_an_epoch() {
        let (reg, el, labels) = setup();
        reg.register("g", &el, &labels).unwrap();
        let before = reg.snapshot("g").unwrap();
        let (applied, snap) = reg.apply_updates("g", &[]).unwrap();
        assert_eq!(applied, 0);
        assert!(
            Arc::ptr_eq(&snap, &before),
            "no-op must return the published snapshot as-is"
        );
        assert_eq!(reg.snapshot("g").unwrap().epoch, before.epoch);
        // A real batch afterwards still publishes the next epoch.
        let (_, snap) = reg
            .apply_updates("g", &[Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
            .unwrap();
        assert_eq!(snap.epoch, before.epoch + 1);
    }

    #[test]
    fn deregister_and_names() {
        let (reg, el, labels) = setup();
        reg.register("b", &el, &labels).unwrap();
        reg.register("a", &el, &labels).unwrap();
        assert_eq!(reg.graph_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.deregister("a").unwrap());
        assert!(!reg.deregister("a").unwrap());
        assert_eq!(reg.graph_names(), vec!["b".to_string()]);
    }

    #[test]
    fn in_memory_registry_reports_no_durability() {
        let (reg, ..) = setup();
        assert!(!reg.is_durable());
        assert_eq!(reg.data_dir(), None);
        assert_eq!(reg.checkpoint_now().unwrap(), None);
        let reg = Registry::open(4, Durability::None).unwrap();
        assert!(!reg.is_durable());
    }

    #[test]
    fn edge_batch_shares_untouched_blocks() {
        let (reg, el, labels) = setup();
        let parent = reg.register("g", &el, &labels).unwrap();
        // Both endpoints inside shard 0 (80 vertices / 4 shards = 20 per
        // shard): exactly one block republishes.
        let (_, snap) = reg
            .apply_updates("g", &[Update::InsertEdge { u: 1, v: 2, w: 3.0 }])
            .unwrap();
        let shared: Vec<bool> = snap
            .blocks()
            .iter()
            .zip(parent.blocks())
            .map(|(a, b)| Arc::ptr_eq(a, b))
            .collect();
        assert_eq!(shared, vec![false, true, true, true]);
        // The rebuilt block still shares its labels slice (no label
        // moved — no regrouping).
        assert!(snap.blocks()[0].shares_labels_with(&parent.blocks()[0]));
    }

    #[test]
    fn label_move_rebuilds_all_rows_but_one_labels_slice() {
        let (reg, el, labels) = setup();
        let parent = reg.register("g", &el, &labels).unwrap();
        let v = 25u32; // shard 1 of 4 × 20
        let new_label = match labels.get(v) {
            Some(0) => Some(1),
            _ => Some(0),
        };
        let (_, snap) = reg
            .apply_updates(
                "g",
                &[Update::SetLabel {
                    v,
                    label: new_label,
                }],
            )
            .unwrap();
        for (i, (a, b)) in snap.blocks().iter().zip(parent.blocks()).enumerate() {
            assert!(!Arc::ptr_eq(a, b), "shard {i}: rows rescale everywhere");
            assert_eq!(
                a.shares_labels_with(b),
                i != 1,
                "only shard 1's labels moved"
            );
        }
    }

    #[test]
    fn history_ring_retains_and_evicts_in_order() {
        let (_, el, labels) = setup();
        let reg = Registry::with_config(RegistryConfig {
            default_shards: 4,
            history: HistoryPolicy::keep(3),
            ..RegistryConfig::default()
        })
        .unwrap();
        reg.register("g", &el, &labels).unwrap();
        for i in 0..5u32 {
            reg.apply_updates(
                "g",
                &[Update::InsertEdge {
                    u: i,
                    v: i + 1,
                    w: 1.0,
                }],
            )
            .unwrap();
        }
        assert_eq!(reg.epoch_range("g").unwrap(), (3, 5));
        for epoch in 3..=5 {
            assert_eq!(reg.snapshot_at("g", epoch).unwrap().epoch, epoch);
        }
        for epoch in [0, 1, 2, 6, u64::MAX] {
            let err = reg.snapshot_at("g", epoch).unwrap_err();
            assert_eq!(
                err,
                ServeError::EpochEvicted {
                    graph: "g".into(),
                    epoch,
                    oldest: 3,
                    newest: 5,
                },
                "epoch {epoch}"
            );
        }
    }

    #[test]
    fn backpressure_rejects_when_slots_are_held() {
        let (_, el, labels) = setup();
        let reg = Registry::with_config(RegistryConfig {
            default_shards: 2,
            backpressure: BackpressurePolicy::max_pending(1),
            ..RegistryConfig::default()
        })
        .unwrap();
        reg.register("g", &el, &labels).unwrap();
        assert_eq!(reg.pending_batches("g").unwrap(), 0);
        let slot = reg.hold_write_slot("g").unwrap();
        assert_eq!(reg.pending_batches("g").unwrap(), 1);
        let err = reg
            .apply_updates("g", &[Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                graph: "g".into(),
                pending: 1,
                max_pending: 1,
            }
        );
        // Reads are never back-pressured.
        assert!(reg.snapshot("g").is_ok());
        // Empty batches don't consume a slot.
        assert!(reg.apply_updates("g", &[]).is_ok());
        drop(slot);
        assert_eq!(reg.pending_batches("g").unwrap(), 0);
        let (applied, snap) = reg
            .apply_updates("g", &[Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
            .unwrap();
        assert_eq!((applied, snap.epoch), (1, 1));
    }

    #[test]
    fn noop_label_set_keeps_blocks_shared() {
        let (reg, el, labels) = setup();
        let parent = reg.register("g", &el, &labels).unwrap();
        let (v, c) = labels.iter_labeled().next().expect("a labeled vertex");
        // Re-assert the same label: counted as applied, but no state
        // changed — every block stays shared.
        let (applied, snap) = reg
            .apply_updates("g", &[Update::SetLabel { v, label: Some(c) }])
            .unwrap();
        assert_eq!(applied, 1);
        assert_eq!(snap.epoch, 1);
        assert!(snap
            .blocks()
            .iter()
            .zip(parent.blocks())
            .all(|(a, b)| Arc::ptr_eq(a, b)));
    }
}
