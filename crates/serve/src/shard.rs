//! Vertex partitioning for shard-parallel serving.
//!
//! A [`ShardLayout`] splits the vertex id space `0..n` into `S` contiguous,
//! near-equal ranges. Contiguity matters: every shard-parallel operation
//! (snapshot materialization, kNN scans, `Similar` sweeps) walks its
//! shard's slice of the row-major embedding sequentially, so shards map to
//! disjoint cache-friendly memory regions — the same locality argument the
//! paper makes for the dense-forward edge traversal.

use rayon::prelude::*;

/// Contiguous-range partition of `0..n` into `num_shards` pieces.
#[derive(Debug, Clone)]
pub struct ShardLayout {
    n: usize,
    /// Size of the small shards; the first `extra` shards hold one more.
    base: usize,
    extra: usize,
    ranges: Vec<(u32, u32)>,
}

impl ShardLayout {
    /// Partition `n` vertices into `num_shards` contiguous ranges whose
    /// sizes differ by at most one. `num_shards` is clamped to `[1, n]`
    /// (an empty graph gets one empty shard).
    pub fn new(n: usize, num_shards: usize) -> Self {
        let s = num_shards.clamp(1, n.max(1));
        let base = n / s;
        let extra = n % s;
        let mut ranges = Vec::with_capacity(s);
        let mut lo = 0usize;
        for i in 0..s {
            let len = base + usize::from(i < extra);
            ranges.push((lo as u32, (lo + len) as u32));
            lo += len;
        }
        debug_assert_eq!(lo, n);
        ShardLayout {
            n,
            base,
            extra,
            ranges,
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The half-open vertex range `[lo, hi)` of shard `i`.
    pub fn range(&self, i: usize) -> (u32, u32) {
        self.ranges[i]
    }

    /// All shard ranges, ascending and disjoint.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Which shard owns vertex `v`. O(1): the first `extra` shards have
    /// `base + 1` vertices and the rest `base`, so ownership is two
    /// divisions — this sits on the write path (dirty-shard tracking
    /// classifies every touched vertex of every update batch).
    #[inline]
    pub fn shard_of(&self, v: u32) -> usize {
        debug_assert!((v as usize) < self.n);
        let v = v as usize;
        let big = self.extra * (self.base + 1);
        let shard = if v < big {
            v / (self.base + 1)
        } else {
            self.extra + (v - big) / self.base.max(1)
        };
        debug_assert!({
            let (lo, hi) = self.ranges[shard];
            lo as usize <= v && v < hi as usize
        });
        shard
    }

    /// Run `f(shard_index, lo, hi)` over every shard in parallel,
    /// collecting results in shard order.
    pub fn par_map<R: Send>(&self, f: impl Fn(usize, u32, u32) -> R + Sync) -> Vec<R> {
        self.ranges
            .par_iter()
            .enumerate()
            .map(|(i, &(lo, hi))| f(i, lo, hi))
            .collect()
    }

    /// Group `(vertex, payload)` pairs by owning shard, preserving input
    /// order within each shard. Used to bucket the labeled train set.
    pub fn group_by_shard<T: Copy>(
        &self,
        items: impl Iterator<Item = (u32, T)>,
    ) -> Vec<Vec<(u32, T)>> {
        let mut by_shard: Vec<Vec<(u32, T)>> = vec![Vec::new(); self.num_shards()];
        for (v, t) in items {
            by_shard[self.shard_of(v)].push((v, t));
        }
        by_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_and_balance() {
        for (n, s) in [(10usize, 3usize), (7, 7), (100, 8), (5, 20), (1, 1)] {
            let l = ShardLayout::new(n, s);
            let mut covered = 0usize;
            let mut sizes = Vec::new();
            for i in 0..l.num_shards() {
                let (lo, hi) = l.range(i);
                assert_eq!(lo as usize, covered, "ranges must be contiguous");
                covered = hi as usize;
                sizes.push(hi - lo);
            }
            assert_eq!(covered, n, "ranges must cover 0..n");
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "shard sizes must differ by at most one");
        }
    }

    #[test]
    fn clamps_shard_count() {
        assert_eq!(ShardLayout::new(3, 100).num_shards(), 3);
        assert_eq!(ShardLayout::new(3, 0).num_shards(), 1);
        assert_eq!(ShardLayout::new(0, 4).num_shards(), 1);
    }

    #[test]
    fn shard_of_agrees_with_ranges() {
        let l = ShardLayout::new(103, 7);
        for v in 0..103u32 {
            let s = l.shard_of(v);
            let (lo, hi) = l.range(s);
            assert!(lo <= v && v < hi);
        }
    }

    #[test]
    fn par_map_preserves_shard_order() {
        let l = ShardLayout::new(50, 4);
        let ids = l.par_map(|i, _, _| i);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn group_by_shard_keeps_order_within_shard() {
        let l = ShardLayout::new(10, 2);
        let grouped = l.group_by_shard([(7u32, 'a'), (1, 'b'), (8, 'c'), (2, 'd')].into_iter());
        assert_eq!(grouped[0], vec![(1, 'b'), (2, 'd')]);
        assert_eq!(grouped[1], vec![(7, 'a'), (8, 'c')]);
    }
}
