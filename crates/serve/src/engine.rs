//! Typed request/response engine with batch coalescing and epoch-pinned
//! reads.
//!
//! [`Engine::execute_batch`] is the serving entry point: it walks an
//! ordered batch, coalesces maximal runs of read requests, and answers
//! each run shard-parallel against one consistent snapshot per
//! `(graph, pinned epoch)` pair. Writes ([`Request::ApplyUpdates`])
//! break a run: they flow through the registry's `DynamicGee` writer and
//! publish a new epoch copy-on-write, which the next read run observes.
//! This makes a batch observationally identical to executing its
//! requests one at a time, while amortizing snapshot acquisition and
//! letting independent reads fan out across shards and queries
//! simultaneously.
//!
//! Every read request carries an optional `at_epoch` pin: `None` reads
//! the published epoch; `Some(e)` reads the retained epoch `e` from the
//! registry's history ring ([`crate::HistoryPolicy`]) or fails with the
//! typed [`ServeError::EpochEvicted`].

use std::sync::atomic::Ordering;
use std::sync::Arc;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::index::SearchPolicy;
use crate::metrics::{elapsed_us, MetricsReport, ReplicationReport, ServeMetrics};
use crate::registry::{Registry, Update};
use crate::snapshot::{ShardBlock, Snapshot};
use crate::ServeError;

/// A query or mutation against one named graph.
///
/// Part of the wire contract: serializes via serde's externally-tagged
/// enum encoding (see [`crate::wire`]). The `at_epoch` pins (protocol
/// v2) and `search` overrides (protocol v3) are encoded **additively**:
/// `at_epoch: None`/`search: None` serialize byte-identically to the v1
/// frames (no extra keys; `Stats` stays the bare `"Stats"` string), and
/// older frames decode with `None` — see the hand-written serde impls
/// below.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// kNN-classify each vertex from the labeled train set (majority vote
    /// of the `k` nearest labeled rows, nearest-first tiebreak — the
    /// semantics of `gee_eval::knn_classify`).
    Classify {
        vertices: Vec<u32>,
        k: usize,
        at_epoch: Option<u64>,
        /// Per-request override of the registry's [`SearchPolicy`]
        /// (`None` = use the configured default).
        search: Option<SearchPolicy>,
    },
    /// The `top` nearest vertices to `vertex` by embedding distance
    /// (Euclidean), excluding the vertex itself. Ties break toward the
    /// smaller vertex id.
    Similar {
        vertex: u32,
        top: usize,
        at_epoch: Option<u64>,
        /// Per-request override of the registry's [`SearchPolicy`]
        /// (`None` = use the configured default).
        search: Option<SearchPolicy>,
    },
    /// The raw embedding row of one vertex.
    EmbedRow { vertex: u32, at_epoch: Option<u64> },
    /// Apply a mutation batch and publish a new epoch.
    ApplyUpdates { updates: Vec<Update> },
    /// Serving statistics for the graph (optionally describing a pinned
    /// retained epoch).
    Stats { at_epoch: Option<u64> },
    /// Server observability counters (protocol v4): per-request-type
    /// latency histograms, coalesce sizes, back-pressure rejections,
    /// WAL fsyncs, IVF build/hit counters, plus the addressed graph's
    /// epoch state. Never pinnable — counters describe the present.
    Metrics,
}

impl Request {
    /// `Classify` with no epoch pin and the default search policy.
    pub fn classify(vertices: Vec<u32>, k: usize) -> Request {
        Request::Classify {
            vertices,
            k,
            at_epoch: None,
            search: None,
        }
    }

    /// `Similar` with no epoch pin and the default search policy.
    pub fn similar(vertex: u32, top: usize) -> Request {
        Request::Similar {
            vertex,
            top,
            at_epoch: None,
            search: None,
        }
    }

    /// `EmbedRow` with no epoch pin.
    pub fn embed_row(vertex: u32) -> Request {
        Request::EmbedRow {
            vertex,
            at_epoch: None,
        }
    }

    /// `Stats` with no epoch pin.
    pub fn stats() -> Request {
        Request::Stats { at_epoch: None }
    }

    /// The epoch this read pins, if any (`None` for writes and for
    /// `Metrics`, which always describes the present).
    pub fn at_epoch(&self) -> Option<u64> {
        match self {
            Request::Classify { at_epoch, .. }
            | Request::Similar { at_epoch, .. }
            | Request::EmbedRow { at_epoch, .. }
            | Request::Stats { at_epoch } => *at_epoch,
            Request::ApplyUpdates { .. } | Request::Metrics => None,
        }
    }

    /// This request with its epoch pin set (no-op on writes and
    /// `Metrics`).
    pub fn pinned(mut self, epoch: u64) -> Request {
        match &mut self {
            Request::Classify { at_epoch, .. }
            | Request::Similar { at_epoch, .. }
            | Request::EmbedRow { at_epoch, .. }
            | Request::Stats { at_epoch } => *at_epoch = Some(epoch),
            Request::ApplyUpdates { .. } | Request::Metrics => {}
        }
        self
    }

    /// The search-policy override this read carries, if any (`None` for
    /// writes and for reads that use the registry default).
    pub fn search(&self) -> Option<SearchPolicy> {
        match self {
            Request::Classify { search, .. } | Request::Similar { search, .. } => *search,
            _ => None,
        }
    }

    /// This request with a search-policy override (no-op on requests
    /// that don't search: `EmbedRow`, `Stats`, writes).
    pub fn with_search(mut self, policy: SearchPolicy) -> Request {
        match &mut self {
            Request::Classify { search, .. } | Request::Similar { search, .. } => {
                *search = Some(policy)
            }
            _ => {}
        }
        self
    }

    /// Writes break read runs; everything else coalesces.
    fn is_write(&self) -> bool {
        matches!(self, Request::ApplyUpdates { .. })
    }
}

// Hand-written wire encoding for `Request` (everything else derives):
// the derive would always emit `at_epoch`/`search` keys and would turn
// `Stats` into a struct variant, changing every v1 frame. These impls
// keep the v1 byte encoding for unpinned/default-search requests and
// only add the keys when present, so both extensions are additive on
// the wire (`tests/wire_roundtrip.rs` pins the exact bytes).
impl Serialize for Request {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        fn variant(
            tag: &str,
            mut fields: Vec<(String, Value)>,
            at_epoch: &Option<u64>,
            search: &Option<SearchPolicy>,
        ) -> Value {
            if let Some(e) = at_epoch {
                fields.push(("at_epoch".to_string(), Value::from(*e)));
            }
            if let Some(s) = search {
                fields.push(("search".to_string(), s.to_value()));
            }
            Value::Object(vec![(tag.to_string(), Value::Object(fields))])
        }
        match self {
            Request::Classify {
                vertices,
                k,
                at_epoch,
                search,
            } => variant(
                "Classify",
                vec![
                    ("vertices".to_string(), vertices.to_value()),
                    ("k".to_string(), k.to_value()),
                ],
                at_epoch,
                search,
            ),
            Request::Similar {
                vertex,
                top,
                at_epoch,
                search,
            } => variant(
                "Similar",
                vec![
                    ("vertex".to_string(), vertex.to_value()),
                    ("top".to_string(), top.to_value()),
                ],
                at_epoch,
                search,
            ),
            Request::EmbedRow { vertex, at_epoch } => variant(
                "EmbedRow",
                vec![("vertex".to_string(), vertex.to_value())],
                at_epoch,
                &None,
            ),
            Request::ApplyUpdates { updates } => Value::Object(vec![(
                "ApplyUpdates".to_string(),
                Value::Object(vec![("updates".to_string(), updates.to_value())]),
            )]),
            Request::Stats { at_epoch: None } => Value::String("Stats".to_string()),
            Request::Stats { at_epoch } => variant("Stats", vec![], at_epoch, &None),
            Request::Metrics => Value::String("Metrics".to_string()),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::{de_field, DeError, Value};
        match v {
            Value::String(s) if s == "Stats" => Ok(Request::Stats { at_epoch: None }),
            Value::String(s) if s == "Metrics" => Ok(Request::Metrics),
            Value::Object(pairs) if pairs.len() == 1 => {
                let (tag, inner) = &pairs[0];
                match tag.as_str() {
                    "Classify" => Ok(Request::Classify {
                        vertices: Deserialize::from_value(de_field(inner, "vertices")?)?,
                        k: Deserialize::from_value(de_field(inner, "k")?)?,
                        at_epoch: Deserialize::from_value(de_field(inner, "at_epoch")?)?,
                        search: Deserialize::from_value(de_field(inner, "search")?)?,
                    }),
                    "Similar" => Ok(Request::Similar {
                        vertex: Deserialize::from_value(de_field(inner, "vertex")?)?,
                        top: Deserialize::from_value(de_field(inner, "top")?)?,
                        at_epoch: Deserialize::from_value(de_field(inner, "at_epoch")?)?,
                        search: Deserialize::from_value(de_field(inner, "search")?)?,
                    }),
                    "EmbedRow" => Ok(Request::EmbedRow {
                        vertex: Deserialize::from_value(de_field(inner, "vertex")?)?,
                        at_epoch: Deserialize::from_value(de_field(inner, "at_epoch")?)?,
                    }),
                    "ApplyUpdates" => Ok(Request::ApplyUpdates {
                        updates: Deserialize::from_value(de_field(inner, "updates")?)?,
                    }),
                    "Stats" => Ok(Request::Stats {
                        at_epoch: Deserialize::from_value(de_field(inner, "at_epoch")?)?,
                    }),
                    other => Err(DeError(format!(
                        "unknown variant {other:?} for enum Request"
                    ))),
                }
            }
            other => Err(DeError(format!(
                "invalid representation for enum Request: {other:?}"
            ))),
        }
    }
}

/// Answer to one [`Request`]. Part of the wire contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Predicted class per queried vertex, in query order.
    Classes(Vec<u32>),
    /// `(vertex, distance)` pairs, nearest first.
    Neighbors(Vec<(u32, f64)>),
    /// One embedding row.
    Row(Vec<f64>),
    /// Outcome of an update batch: updates that took effect, and the
    /// epoch they published.
    Applied { applied: usize, epoch: u64 },
    /// Serving statistics.
    Stats(GraphReport),
    /// Server observability counters (protocol v4).
    Metrics(MetricsReport),
}

/// Snapshot-plus-counters description of a served graph. Part of the
/// wire contract. With `Stats { at_epoch: Some(e) }` the
/// per-snapshot fields (`epoch`, `num_labeled`) describe the pinned
/// epoch; `oldest_epoch` and the counters always describe the present.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphReport {
    pub graph: String,
    pub epoch: u64,
    /// Oldest epoch still retained for `at_epoch` reads (equals the
    /// published epoch when [`crate::HistoryPolicy`] keeps 1).
    pub oldest_epoch: u64,
    pub num_vertices: usize,
    pub dim: usize,
    pub num_shards: usize,
    pub num_labeled: usize,
    /// Shard blocks of the described snapshot with a built-and-cached
    /// IVF index (counting never forces a build; the same value the
    /// protocol-v4 `Metrics` endpoint reports for the published epoch).
    pub ann_indexed_shards: usize,
    pub queries_served: u64,
    pub updates_applied: u64,
    /// Replication role and lag gauges (protocol v5). `None` — the key
    /// omitted on the wire — unless this server is a replication leader
    /// or follower, so pre-v5 reports stay byte-identical.
    pub replication: Option<ReplicationReport>,
}

// Hand-written wire encoding for `GraphReport`, for the same reason as
// `MetricsReport`'s (see `crate::metrics`): the `replication` key is
// emitted only when the block is present, keeping pre-v5 `Stats`
// responses byte-identical; pre-v5 frames decode with
// `replication: None`.
impl Serialize for GraphReport {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let mut fields = vec![
            ("graph".to_string(), self.graph.to_value()),
            ("epoch".to_string(), self.epoch.to_value()),
            ("oldest_epoch".to_string(), self.oldest_epoch.to_value()),
            ("num_vertices".to_string(), self.num_vertices.to_value()),
            ("dim".to_string(), self.dim.to_value()),
            ("num_shards".to_string(), self.num_shards.to_value()),
            ("num_labeled".to_string(), self.num_labeled.to_value()),
            (
                "ann_indexed_shards".to_string(),
                self.ann_indexed_shards.to_value(),
            ),
            ("queries_served".to_string(), self.queries_served.to_value()),
            (
                "updates_applied".to_string(),
                self.updates_applied.to_value(),
            ),
        ];
        if let Some(r) = &self.replication {
            fields.push(("replication".to_string(), r.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for GraphReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::de_field;
        Ok(GraphReport {
            graph: Deserialize::from_value(de_field(v, "graph")?)?,
            epoch: Deserialize::from_value(de_field(v, "epoch")?)?,
            oldest_epoch: Deserialize::from_value(de_field(v, "oldest_epoch")?)?,
            num_vertices: Deserialize::from_value(de_field(v, "num_vertices")?)?,
            dim: Deserialize::from_value(de_field(v, "dim")?)?,
            num_shards: Deserialize::from_value(de_field(v, "num_shards")?)?,
            num_labeled: Deserialize::from_value(de_field(v, "num_labeled")?)?,
            ann_indexed_shards: Deserialize::from_value(de_field(v, "ann_indexed_shards")?)?,
            queries_served: Deserialize::from_value(de_field(v, "queries_served")?)?,
            updates_applied: Deserialize::from_value(de_field(v, "updates_applied")?)?,
            replication: Deserialize::from_value(de_field(v, "replication")?)?,
        })
    }
}

/// A request addressed to a named graph, for batch submission. Part of
/// the wire contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    pub graph: String,
    pub request: Request,
}

impl Envelope {
    pub fn new(graph: impl Into<String>, request: Request) -> Self {
        Envelope {
            graph: graph.into(),
            request,
        }
    }
}

/// The serving front end over a [`Registry`].
pub struct Engine {
    registry: Arc<Registry>,
}

impl Engine {
    pub fn new(registry: Arc<Registry>) -> Self {
        Engine { registry }
    }

    /// Stand up an engine over a freshly opened registry — with
    /// [`Durability::Wal`](crate::Durability::Wal) this recovers any
    /// existing state in the data directory (latest checkpoint + WAL
    /// tail replay) before serving. See
    /// [`Registry::open`](crate::Registry::open).
    pub fn open(
        default_shards: usize,
        durability: crate::Durability,
    ) -> Result<Engine, ServeError> {
        Ok(Engine::new(Arc::new(Registry::open(
            default_shards,
            durability,
        )?)))
    }

    /// Stand up an engine over a registry opened with a full
    /// [`RegistryConfig`](crate::RegistryConfig) (history retention,
    /// back-pressure, durability).
    pub fn with_config(config: crate::RegistryConfig) -> Result<Engine, ServeError> {
        Ok(Engine::new(Arc::new(Registry::with_config(config)?)))
    }

    /// The underlying registry (for registration and admin).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// An owning handle to the registry — what a
    /// [`ReplicationListener`](crate::ReplicationListener) attaches to.
    pub fn registry_handle(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    // The named methods below mirror [`Client`](crate::Client) exactly
    // (same signatures, same semantics), so in-process and over-the-wire
    // execution are interchangeable and their equivalence is
    // property-testable.

    /// kNN-classify `vertices` against the labeled train set.
    pub fn classify(
        &self,
        graph: &str,
        vertices: Vec<u32>,
        k: usize,
    ) -> Result<Vec<u32>, ServeError> {
        self.classify_at(graph, vertices, k, None)
    }

    /// [`Engine::classify`] pinned to a retained epoch.
    pub fn classify_at(
        &self,
        graph: &str,
        vertices: Vec<u32>,
        k: usize,
        at_epoch: Option<u64>,
    ) -> Result<Vec<u32>, ServeError> {
        self.classify_with(graph, vertices, k, at_epoch, None)
    }

    /// [`Engine::classify`] with an epoch pin and/or a search-policy
    /// override (`None` = the registry's configured default).
    pub fn classify_with(
        &self,
        graph: &str,
        vertices: Vec<u32>,
        k: usize,
        at_epoch: Option<u64>,
        search: Option<SearchPolicy>,
    ) -> Result<Vec<u32>, ServeError> {
        match self.execute(
            graph,
            Request::Classify {
                vertices,
                k,
                at_epoch,
                search,
            },
        )? {
            Response::Classes(classes) => Ok(classes),
            other => unreachable!("Classify answered with {other:?}"),
        }
    }

    /// The `top` nearest vertices to `vertex`.
    pub fn similar(
        &self,
        graph: &str,
        vertex: u32,
        top: usize,
    ) -> Result<Vec<(u32, f64)>, ServeError> {
        self.similar_at(graph, vertex, top, None)
    }

    /// [`Engine::similar`] pinned to a retained epoch.
    pub fn similar_at(
        &self,
        graph: &str,
        vertex: u32,
        top: usize,
        at_epoch: Option<u64>,
    ) -> Result<Vec<(u32, f64)>, ServeError> {
        self.similar_with(graph, vertex, top, at_epoch, None)
    }

    /// [`Engine::similar`] with an epoch pin and/or a search-policy
    /// override (`None` = the registry's configured default).
    pub fn similar_with(
        &self,
        graph: &str,
        vertex: u32,
        top: usize,
        at_epoch: Option<u64>,
        search: Option<SearchPolicy>,
    ) -> Result<Vec<(u32, f64)>, ServeError> {
        match self.execute(
            graph,
            Request::Similar {
                vertex,
                top,
                at_epoch,
                search,
            },
        )? {
            Response::Neighbors(neighbors) => Ok(neighbors),
            other => unreachable!("Similar answered with {other:?}"),
        }
    }

    /// One raw embedding row.
    pub fn embed_row(&self, graph: &str, vertex: u32) -> Result<Vec<f64>, ServeError> {
        self.embed_row_at(graph, vertex, None)
    }

    /// [`Engine::embed_row`] pinned to a retained epoch.
    pub fn embed_row_at(
        &self,
        graph: &str,
        vertex: u32,
        at_epoch: Option<u64>,
    ) -> Result<Vec<f64>, ServeError> {
        match self.execute(graph, Request::EmbedRow { vertex, at_epoch })? {
            Response::Row(row) => Ok(row),
            other => unreachable!("EmbedRow answered with {other:?}"),
        }
    }

    /// Apply a mutation batch; returns `(applied, epoch)`.
    pub fn apply_updates(
        &self,
        graph: &str,
        updates: Vec<Update>,
    ) -> Result<(usize, u64), ServeError> {
        match self.execute(graph, Request::ApplyUpdates { updates })? {
            Response::Applied { applied, epoch } => Ok((applied, epoch)),
            other => unreachable!("ApplyUpdates answered with {other:?}"),
        }
    }

    /// Serving statistics for one graph.
    pub fn stats(&self, graph: &str) -> Result<GraphReport, ServeError> {
        self.stats_at(graph, None)
    }

    /// [`Engine::stats`] describing a pinned retained epoch.
    pub fn stats_at(&self, graph: &str, at_epoch: Option<u64>) -> Result<GraphReport, ServeError> {
        match self.execute(graph, Request::Stats { at_epoch })? {
            Response::Stats(report) => Ok(report),
            other => unreachable!("Stats answered with {other:?}"),
        }
    }

    /// Server observability counters (protocol v4), addressed to one
    /// graph for its epoch state; the histograms and counters describe
    /// the whole registry.
    pub fn metrics(&self, graph: &str) -> Result<MetricsReport, ServeError> {
        match self.execute(graph, Request::Metrics)? {
            Response::Metrics(report) => Ok(report),
            other => unreachable!("Metrics answered with {other:?}"),
        }
    }

    /// Execute one request.
    pub fn execute(&self, graph: &str, request: Request) -> Result<Response, ServeError> {
        self.execute_batch(vec![Envelope::new(graph, request)])
            .pop()
            .expect("one request in, one response out")
    }

    /// Execute an ordered batch. Responses come back in request order;
    /// each failed request carries its own error without aborting the
    /// rest of the batch.
    pub fn execute_batch(&self, batch: Vec<Envelope>) -> Vec<Result<Response, ServeError>> {
        let mut out: Vec<Option<Result<Response, ServeError>>> =
            (0..batch.len()).map(|_| None).collect();
        let metrics = self.registry.serve_metrics();
        let mut i = 0usize;
        while i < batch.len() {
            if batch[i].request.is_write() {
                let started = std::time::Instant::now();
                out[i] = Some(self.execute_write(&batch[i]));
                metrics.apply_updates.record(elapsed_us(started));
                i += 1;
            } else {
                // Coalesce the maximal run of reads starting here.
                let mut j = i;
                while j < batch.len() && !batch[j].request.is_write() {
                    j += 1;
                }
                let run = &batch[i..j];
                // One entry + snapshot resolution per (graph, pinned
                // epoch) for the whole run: unpinned reads in the run
                // see a single consistent published epoch per graph,
                // pinned reads their retained epoch, and the registry
                // lock is not re-taken per request inside the parallel
                // region (so a concurrent deregister cannot fail reads
                // that already hold their snapshot).
                type Resolved = Result<(Arc<crate::registry::Entry>, Arc<Snapshot>), ServeError>;
                type Key = (String, Option<u64>);
                let mut snaps: Vec<(Key, Resolved)> = Vec::new();
                for env in run {
                    let pin = env.request.at_epoch();
                    if !snaps.iter().any(|(k, _)| k.0 == env.graph && k.1 == pin) {
                        let resolved = self.registry.entry(&env.graph).and_then(|entry| {
                            let snap = entry.snapshot_sel(&env.graph, pin)?;
                            Ok((entry, snap))
                        });
                        snaps.push(((env.graph.clone(), pin), resolved));
                    }
                }
                metrics.coalesce.record(run.len() as u64);
                let answers: Vec<Result<Response, ServeError>> = run
                    .par_iter()
                    .map(|env| {
                        let started = std::time::Instant::now();
                        let pin = env.request.at_epoch();
                        let (_, resolved) = snaps
                            .iter()
                            .find(|(k, _)| k.0 == env.graph && k.1 == pin)
                            .expect("snapshot prefetched for every (graph, epoch) in run");
                        let answer = match resolved {
                            Err(e) => Err(e.clone()),
                            Ok((entry, snap)) => {
                                self.execute_read(&env.graph, &env.request, entry, snap)
                            }
                        };
                        metrics
                            .request_histogram(&env.request)
                            .record(elapsed_us(started));
                        answer
                    })
                    .collect();
                for (slot, ans) in out[i..j].iter_mut().zip(answers) {
                    *slot = Some(ans);
                }
                i = j;
            }
        }
        out.into_iter()
            .map(|r| r.expect("every slot answered"))
            .collect()
    }

    fn execute_write(&self, env: &Envelope) -> Result<Response, ServeError> {
        let Request::ApplyUpdates { updates } = &env.request else {
            unreachable!("only ApplyUpdates is a write");
        };
        let (applied, snap) = self.registry.apply_updates(&env.graph, updates)?;
        Ok(Response::Applied {
            applied,
            epoch: snap.epoch,
        })
    }

    fn execute_read(
        &self,
        graph: &str,
        request: &Request,
        entry: &crate::registry::Entry,
        snap: &Snapshot,
    ) -> Result<Response, ServeError> {
        entry.queries_served.fetch_add(1, Ordering::Relaxed);
        let n = snap.num_vertices();
        let check = |v: u32| {
            if (v as usize) < n {
                Ok(())
            } else {
                Err(ServeError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: n,
                })
            }
        };
        match request {
            Request::Classify {
                vertices,
                k,
                search,
                ..
            } => {
                if *k == 0 {
                    return Err(ServeError::ZeroLimit { param: "k".into() });
                }
                if snap.num_labeled() == 0 {
                    return Err(ServeError::NoLabeledVertices {
                        graph: graph.to_string(),
                    });
                }
                let ann = self.resolve_search(*search)?;
                for &v in vertices {
                    check(v)?;
                }
                // One query: parallelize its scan across shards. Many
                // queries: parallelize across queries (serial shard walk
                // inside) — same answers, one parallel region instead of
                // one per query.
                let metrics = self.registry.serve_metrics();
                let classes = if vertices.len() == 1 {
                    vec![classify_one(snap, vertices[0], *k, true, ann, metrics)]
                } else {
                    vertices
                        .par_iter()
                        .map(|&q| classify_one(snap, q, *k, false, ann, metrics))
                        .collect()
                };
                Ok(Response::Classes(classes))
            }
            Request::Similar {
                vertex,
                top,
                search,
                ..
            } => {
                if *top == 0 {
                    return Err(ServeError::ZeroLimit {
                        param: "top".into(),
                    });
                }
                let ann = self.resolve_search(*search)?;
                check(*vertex)?;
                Ok(Response::Neighbors(similar(
                    snap,
                    *vertex,
                    *top,
                    ann,
                    self.registry.serve_metrics(),
                )))
            }
            Request::EmbedRow { vertex, .. } => {
                check(*vertex)?;
                Ok(Response::Row(snap.row(*vertex).to_vec()))
            }
            Request::Stats { .. } => {
                let (oldest_epoch, _) = entry.epoch_range();
                Ok(Response::Stats(GraphReport {
                    graph: graph.to_string(),
                    epoch: snap.epoch,
                    oldest_epoch,
                    num_vertices: n,
                    dim: snap.dim(),
                    num_shards: snap.num_shards(),
                    num_labeled: snap.num_labeled(),
                    ann_indexed_shards: ann_indexed_shards(snap),
                    queries_served: entry.queries_served.load(Ordering::Relaxed),
                    updates_applied: entry.updates_applied.load(Ordering::Relaxed),
                    replication: self.registry.replication_report(),
                }))
            }
            Request::Metrics => {
                let m = self.registry.serve_metrics();
                let (oldest_epoch, _) = entry.epoch_range();
                Ok(Response::Metrics(MetricsReport {
                    graph: graph.to_string(),
                    epoch: snap.epoch,
                    oldest_epoch,
                    history_depth: entry.history_depth(),
                    ann_indexed_shards: ann_indexed_shards(snap),
                    queries_served: entry.queries_served.load(Ordering::Relaxed),
                    updates_applied: entry.updates_applied.load(Ordering::Relaxed),
                    classify_us: m.classify.report(),
                    similar_us: m.similar.report(),
                    embed_row_us: m.embed_row.report(),
                    stats_us: m.stats.report(),
                    metrics_us: m.metrics.report(),
                    apply_updates_us: m.apply_updates.report(),
                    coalesce: m.coalesce.report(),
                    overloaded: m.overloaded.load(Ordering::Relaxed),
                    wal_fsyncs: self.registry.wal_fsyncs(),
                    ivf_builds: m.ivf_builds.load(Ordering::Relaxed),
                    ivf_hits: m.ivf_hits.load(Ordering::Relaxed),
                    replication: self.registry.replication_report(),
                }))
            }
            Request::ApplyUpdates { .. } => unreachable!("writes handled in execute_write"),
        }
    }

    /// Resolve a request's search override against the registry default
    /// and validate ANN parameters. Returns the `(nprobe, refine)` pair
    /// for approximate search, `None` for exact.
    fn resolve_search(
        &self,
        search: Option<SearchPolicy>,
    ) -> Result<Option<(usize, usize)>, ServeError> {
        let policy = search.unwrap_or_else(|| self.registry.search_policy());
        policy.validate()?;
        match policy {
            SearchPolicy::Exact => Ok(None),
            SearchPolicy::Ann { nprobe, refine } => Ok(Some((nprobe, refine))),
        }
    }
}

/// Shard blocks of `snap` with a built-and-cached IVF index. Counting
/// peeks the cache ([`ShardBlock::ann_index_cached`]) and never forces
/// a build, so `Stats`/`Metrics` stay read-only probes.
fn ann_indexed_shards(snap: &Snapshot) -> usize {
    snap.blocks()
        .iter()
        .filter(|b| b.ann_index_cached().is_some())
        .count()
}

/// kNN-classify one vertex: scan each shard block's train set in
/// parallel for its local k-best, merge to the global k-best, then
/// majority-vote with nearest-first tiebreak — exactly the semantics of
/// `gee_eval::knn_classify`, sharded.
///
/// `knn_classify` iterates the train set in vertex order and inserts each
/// candidate *before* equal-distance incumbents, so its k-best list is
/// ordered by `(distance asc, vertex desc)` and the boundary drops the
/// smallest-vertex entries among equals. The shard scan reproduces that
/// ordering locally (per-shard train sets ascend) and the merge re-sorts
/// by the same key, so the final list — membership and order — is
/// identical to the unsharded scan.
///
/// With `ann = Some((nprobe, refine))` the k-best comes from a global
/// IVF probe instead ([`classify_knn_ann`]); the majority vote is shared.
///
/// A train vertex's row lives in its own shard's block, so each shard
/// scan reads one block's rows directly; only the query row needs the
/// cross-block lookup.
fn classify_one(
    snap: &Snapshot,
    q: u32,
    k: usize,
    parallel_shards: bool,
    ann: Option<(usize, usize)>,
    metrics: &ServeMetrics,
) -> u32 {
    let qr = snap.row(q);
    let merged: Vec<(f64, u32, u32)> = if let Some((nprobe, refine)) = ann {
        classify_knn_ann(snap, qr, k, nprobe, refine, metrics)
    } else {
        let scan_block = |block: &Arc<ShardBlock>| {
            // Cap the preallocation at the block's train size: `k` is
            // client-controlled and may be huge (`usize::MAX` kNN must
            // degrade to "every labeled vertex votes", not abort on an
            // absurd allocation).
            let mut best: Vec<(f64, u32, u32)> =
                Vec::with_capacity(k.saturating_add(1).min(block.train().len() + 1));
            for &(t, class) in block.train() {
                let d = crate::index::row_dist2(qr, block.row(t));
                let pos = best.partition_point(|&(bd, ..)| bd < d);
                if pos < k {
                    best.insert(pos, (d, t, class));
                    if best.len() > k {
                        best.pop();
                    }
                }
            }
            best
        };
        let per_shard: Vec<Vec<(f64, u32, u32)>> = if parallel_shards {
            snap.blocks().par_iter().map(scan_block).collect()
        } else {
            snap.blocks().iter().map(scan_block).collect()
        };
        let mut merged: Vec<(f64, u32, u32)> = per_shard.into_iter().flatten().collect();
        merged.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
        merged.truncate(k);
        merged
    };
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &(.., c) in &merged {
        *counts.entry(c).or_default() += 1;
    }
    let top = counts.values().max().copied().unwrap_or(0);
    merged
        .iter()
        .find(|&&(.., c)| counts[&c] == top)
        .map(|&(.., c)| c)
        .expect("labeled train set is nonempty")
}

/// One step of an IVF global probe: either a whole block to scan
/// exactly (no index, or the query limit covers its pool) or one
/// inverted list of an indexed block.
enum ProbeScan<'a> {
    Block(&'a ShardBlock),
    List(&'a ShardBlock, &'a crate::index::IvfIndex, usize),
}

/// The shared two-phase IVF probe driver behind [`similar_ann`] and
/// [`classify_knn_ann`] — the one place that owns the probe contract:
/// rank every indexed block's centroids in a single global ordering
/// (ties toward the lower block, then list, id), scan exact-fallback
/// blocks up front, then visit the globally nearest lists until at
/// least `nprobe` lists were probed *and* the scanned candidate pool
/// holds `want_pool` entries — or everything was visited, at which
/// point the scanned set is the whole pool and the answer equals the
/// exact scan. `uses_index` decides the per-block fallback; `scan`
/// feeds candidates into the caller's [`Selection`](crate::index) and
/// returns how many it scanned.
fn ivf_probe(
    snap: &Snapshot,
    qr: &[f64],
    nprobe: usize,
    want_pool: usize,
    metrics: &ServeMetrics,
    uses_index: impl Fn(&ShardBlock) -> bool,
    mut scan: impl FnMut(ProbeScan<'_>) -> usize,
) {
    let mut seen = 0usize;
    let mut probe: Vec<(f64, u32, u32)> = Vec::new(); // (dist², block, list)
    let mut scratch = Vec::new();
    for (bi, block) in snap.blocks().iter().enumerate() {
        // Probing everything is the same scan, sans centroid overhead.
        let index = if uses_index(block) {
            // Build/hit accounting, per block touched: a probe that
            // finds the index cached is a hit, one that forces the
            // lazy build counts the build. Racing first-touch probes
            // may each count a build (only one wins the `OnceLock`) —
            // the counters are gauges, not a ledger.
            let was_cached = block.ann_initialized();
            let index = block.ann_index();
            if index.is_some() {
                let counter = if was_cached {
                    &metrics.ivf_hits
                } else {
                    &metrics.ivf_builds
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            index
        } else {
            None
        };
        match index {
            Some(index) => {
                index.centroid_dist2(qr, &mut scratch);
                probe.extend(
                    scratch
                        .iter()
                        .enumerate()
                        .map(|(li, &d)| (d, bi as u32, li as u32)),
                );
            }
            None => seen += scan(ProbeScan::Block(block)),
        }
    }
    probe.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    for (probed, &(_, bi, li)) in probe.iter().enumerate() {
        if probed >= nprobe && seen >= want_pool {
            break;
        }
        let block = &snap.blocks()[bi as usize];
        let index = block.ann_index().expect("probed blocks are indexed");
        seen += scan(ProbeScan::List(block, index, li as usize));
    }
}

/// Global-probe IVF k-best for `Classify`: scan the nearest lists'
/// *labeled* entries (blocks without an index, and blocks whose whole
/// train set fits in `k`, scan exactly) and keep the k-best under the
/// exact merge's total key `(distance asc, vertex desc)`. Unique keys
/// make the result independent of probe order — probing everything
/// *equals* the exact scan.
fn classify_knn_ann(
    snap: &Snapshot,
    qr: &[f64],
    k: usize,
    nprobe: usize,
    refine: usize,
    metrics: &ServeMetrics,
) -> Vec<(f64, u32, u32)> {
    let lt =
        |a: &(f64, u32, u32), b: &(f64, u32, u32)| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)).is_lt();
    let mut best = crate::index::Selection::new(k, snap.num_labeled());
    let mut feed = |block: &ShardBlock, train_indices: Option<&[u32]>| -> usize {
        let train = block.train();
        let entry = |ti: usize| train[ti];
        let mut fed = 0usize;
        let mut push_entry = |(t, class): (u32, u32)| {
            fed += 1;
            best.push((crate::index::row_dist2(qr, block.row(t)), t, class), lt);
        };
        match train_indices {
            Some(tis) => tis.iter().for_each(|&ti| push_entry(entry(ti as usize))),
            None => train.iter().copied().for_each(&mut push_entry),
        }
        fed
    };
    ivf_probe(
        snap,
        qr,
        nprobe,
        k.saturating_mul(refine).max(k),
        metrics,
        |block| k < block.train().len(),
        |step| match step {
            ProbeScan::Block(block) => feed(block, None),
            ProbeScan::List(block, index, li) => feed(block, Some(&index.train_lists()[li])),
        },
    );
    best.into_vec()
}

/// Shard-parallel nearest-neighbor sweep for `Similar`, one block per
/// task, each scanning its own rows sequentially — or, with
/// `ann = Some((nprobe, refine))`, a global IVF probe
/// ([`similar_ann`]).
fn similar(
    snap: &Snapshot,
    vertex: u32,
    top: usize,
    ann: Option<(usize, usize)>,
    metrics: &ServeMetrics,
) -> Vec<(u32, f64)> {
    debug_assert!(top > 0, "top = 0 is rejected before the sweep");
    if let Some((nprobe, refine)) = ann {
        return similar_ann(snap, vertex, top, nprobe, refine, metrics);
    }
    let qr = snap.row(vertex);
    let per_shard: Vec<Vec<(f64, u32)>> = snap
        .blocks()
        .par_iter()
        .map(|block| {
            let (lo, hi) = block.range();
            let len = (hi - lo) as usize;
            // Cap the preallocation at the block size: `top` is
            // client-controlled and may be huge (`usize::MAX` must
            // degrade to a full ranking, not abort on the allocation).
            let mut best: Vec<(f64, u32)> = Vec::with_capacity(top.saturating_add(1).min(len + 1));
            for v in lo..hi {
                if v == vertex {
                    continue;
                }
                let d = crate::index::row_dist2(qr, block.row(v));
                // Tie-break toward smaller id: ids ascend within a shard, so
                // inserting *after* equal distances keeps the smaller id first
                // and the boundary drops the larger id, consistent with the
                // final `(distance, id)` sort.
                let pos = best.partition_point(|&(bd, _)| bd <= d);
                if pos < top {
                    best.insert(pos, (d, v));
                    if best.len() > top {
                        best.pop();
                    }
                }
            }
            best
        })
        .collect();
    let mut merged: Vec<(f64, u32)> = per_shard.into_iter().flatten().collect();
    merged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    merged.truncate(top);
    merged.into_iter().map(|(d, v)| (v, d.sqrt())).collect()
}

/// Global-probe IVF `Similar`: rank every indexed block's centroids in
/// one ordering and scan the globally nearest `nprobe` lists (more
/// until the pool holds `refine × top` candidates or everything was
/// visited). Blocks without an index — and blocks whose whole range
/// fits in `top` — are scanned exactly and feed the same selection.
/// The kept set is ordered by the total key `(distance, id)`, so the
/// answer is a pure function of the scanned candidate *set*: probing
/// everything equals the exact sweep, ties included. Runs on the
/// calling thread — a probe is tiny (one centroid ranking plus a few
/// lists), so batch-level parallelism across queries is the win, not a
/// rayon fan-out per probe.
fn similar_ann(
    snap: &Snapshot,
    vertex: u32,
    top: usize,
    nprobe: usize,
    refine: usize,
    metrics: &ServeMetrics,
) -> Vec<(u32, f64)> {
    let qr = snap.row(vertex);
    let lt = |a: &(f64, u32), b: &(f64, u32)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).is_lt();
    let mut best = crate::index::Selection::new(top, snap.num_vertices());
    let mut feed = |block: &ShardBlock, rows: Option<&[u32]>| -> usize {
        let (lo, hi) = block.range();
        let mut fed = 0usize;
        let mut push_row = |v: u32| {
            if v != vertex {
                fed += 1;
                best.push((crate::index::row_dist2(qr, block.row(v)), v), lt);
            }
        };
        match rows {
            Some(locals) => locals.iter().for_each(|&r| push_row(lo + r)),
            None => (lo..hi).for_each(&mut push_row),
        }
        fed
    };
    ivf_probe(
        snap,
        qr,
        nprobe,
        top.saturating_mul(refine).max(top),
        metrics,
        |block| {
            let (lo, hi) = block.range();
            top < (hi - lo) as usize
        },
        |step| match step {
            ProbeScan::Block(block) => feed(block, None),
            ProbeScan::List(block, index, li) => feed(block, Some(&index.lists()[li])),
        },
    );
    best.into_vec()
        .into_iter()
        .map(|(d, v)| (v, d.sqrt()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_core::Labels;
    use gee_gen::LabelSpec;

    fn engine(shards: usize) -> (Engine, usize) {
        let n = 120;
        let el = gee_gen::erdos_renyi_gnm(n, 900, 21);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                n,
                LabelSpec {
                    num_classes: 5,
                    labeled_fraction: 0.3,
                },
                3,
            ),
            5,
        );
        let reg = Registry::new(shards);
        reg.register("g", &el, &labels).unwrap();
        (Engine::new(Arc::new(reg)), n)
    }

    #[test]
    fn classify_matches_eval_knn() {
        let (engine, n) = engine(4);
        let snap = engine.registry().snapshot("g").unwrap();
        let queries: Vec<u32> = (0..n as u32).collect();
        let train: Vec<(u32, u32)> = snap.iter_labeled().collect();
        let z = snap.to_embedding();
        for k in [1, 3, 7] {
            let expected = gee_eval::knn_classify(z.as_slice(), z.dim(), &train, &queries, k);
            let got = match engine
                .execute("g", Request::classify(queries.clone(), k))
                .unwrap()
            {
                Response::Classes(c) => c,
                other => panic!("unexpected response {other:?}"),
            };
            assert_eq!(got, expected, "k = {k}");
        }
    }

    #[test]
    fn classify_identical_across_shard_counts() {
        let all: Vec<Vec<u32>> = [1usize, 2, 5, 16]
            .into_iter()
            .map(|s| {
                let (engine, n) = engine(s);
                match engine
                    .execute("g", Request::classify((0..n as u32).collect(), 5))
                    .unwrap()
                {
                    Response::Classes(c) => c,
                    other => panic!("unexpected response {other:?}"),
                }
            })
            .collect();
        for w in all.windows(2) {
            assert_eq!(w[0], w[1], "shard count must not change answers");
        }
    }

    #[test]
    fn similar_finds_nearest_and_excludes_self() {
        let (engine, _) = engine(3);
        let got = match engine.execute("g", Request::similar(7, 10)).unwrap() {
            Response::Neighbors(x) => x,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|&(v, _)| v != 7), "self must be excluded");
        assert!(
            got.windows(2).all(|w| w[0].1 <= w[1].1),
            "must be sorted by distance"
        );
        // Oracle: serial full scan.
        let snap = engine.registry().snapshot("g").unwrap();
        let z = snap.to_embedding();
        let mut all: Vec<(f64, u32)> = (0..z.num_vertices() as u32)
            .filter(|&v| v != 7)
            .map(|v| {
                let d: f64 = z
                    .row(7)
                    .iter()
                    .zip(z.row(v))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d.sqrt(), v)
            })
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let expected: Vec<(u32, f64)> = all[..10].iter().map(|&(d, v)| (v, d)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn batch_equals_one_at_a_time() {
        let make_batch = || {
            vec![
                Envelope::new("g", Request::embed_row(3)),
                Envelope::new("g", Request::classify(vec![1, 2, 3], 3)),
                Envelope::new(
                    "g",
                    Request::ApplyUpdates {
                        updates: vec![
                            Update::InsertEdge { u: 1, v: 2, w: 5.0 },
                            Update::SetLabel {
                                v: 2,
                                label: Some(1),
                            },
                        ],
                    },
                ),
                Envelope::new("g", Request::classify(vec![1, 2, 3], 3)),
                Envelope::new("g", Request::similar(1, 5)),
            ]
        };
        let (engine_a, _) = engine(4);
        let batched: Vec<_> = engine_a
            .execute_batch(make_batch())
            .into_iter()
            .map(Result::unwrap)
            .collect();
        let (engine_b, _) = engine(4);
        let sequential: Vec<_> = make_batch()
            .into_iter()
            .map(|e| engine_b.execute(&e.graph, e.request).unwrap())
            .collect();
        assert_eq!(batched, sequential);
        // The post-update classify must observe the new epoch.
        assert!(matches!(batched[2], Response::Applied { epoch: 1, .. }));
    }

    #[test]
    fn reads_in_one_run_share_an_epoch() {
        let (engine, _) = engine(2);
        let batch = vec![
            Envelope::new("g", Request::stats()),
            Envelope::new("g", Request::stats()),
        ];
        let epochs: Vec<u64> = engine
            .execute_batch(batch)
            .into_iter()
            .map(|r| match r.unwrap() {
                Response::Stats(s) => s.epoch,
                other => panic!("unexpected response {other:?}"),
            })
            .collect();
        assert_eq!(epochs[0], epochs[1]);
    }

    #[test]
    fn errors_are_per_request() {
        let (engine, n) = engine(2);
        let batch = vec![
            Envelope::new("g", Request::embed_row(0)),
            Envelope::new("g", Request::embed_row(n as u32)), // out of range
            Envelope::new("missing", Request::stats()),       // unknown graph
            Envelope::new("g", Request::classify(vec![0], 0)), // bad k
        ];
        let results = engine.execute_batch(batch);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(ServeError::VertexOutOfRange { .. })
        ));
        assert!(matches!(results[2], Err(ServeError::UnknownGraph { .. })));
        assert!(matches!(results[3], Err(ServeError::ZeroLimit { .. })));
    }

    #[test]
    fn read_paths_reject_out_of_range_vertices() {
        // Regression: every read path must return a typed error for a
        // vertex id at/beyond n, not panic on slice indexing.
        let (engine, n) = engine(3);
        for (name, req) in [
            ("Similar", Request::similar(n as u32, 5)),
            ("EmbedRow", Request::embed_row(u32::MAX)),
            // Out-of-range in the middle of an otherwise valid list.
            ("Classify", Request::classify(vec![0, n as u32, 1], 3)),
        ] {
            let got = engine.execute("g", req);
            assert!(
                matches!(got, Err(ServeError::VertexOutOfRange { .. })),
                "{name}: expected VertexOutOfRange, got {got:?}"
            );
        }
    }

    #[test]
    fn zero_limits_are_typed_errors() {
        let (engine, _) = engine(2);
        assert_eq!(
            engine.execute("g", Request::similar(0, 0)),
            Err(ServeError::ZeroLimit {
                param: "top".into()
            })
        );
        assert_eq!(
            engine.execute("g", Request::classify(vec![0], 0)),
            Err(ServeError::ZeroLimit { param: "k".into() })
        );
    }

    #[test]
    fn classify_without_labels_is_a_typed_error() {
        let reg = Registry::new(2);
        let el = gee_gen::erdos_renyi_gnm(30, 100, 4);
        reg.register(
            "bare",
            &el,
            &gee_core::Labels::from_options_with_k(&vec![None; 30], 3),
        )
        .unwrap();
        let engine = Engine::new(Arc::new(reg));
        assert_eq!(
            engine.execute("bare", Request::classify(vec![0], 3)),
            Err(ServeError::NoLabeledVertices {
                graph: "bare".into()
            })
        );
    }

    #[test]
    fn named_methods_mirror_execute() {
        let (engine, _) = engine(3);
        assert_eq!(
            engine.classify("g", vec![0, 1], 3).unwrap(),
            match engine
                .execute("g", Request::classify(vec![0, 1], 3))
                .unwrap()
            {
                Response::Classes(c) => c,
                other => panic!("unexpected response {other:?}"),
            }
        );
        assert_eq!(engine.similar("g", 2, 4).unwrap().len(), 4);
        assert_eq!(engine.embed_row("g", 0).unwrap().len(), 5);
        let (applied, epoch) = engine
            .apply_updates("g", vec![Update::InsertEdge { u: 0, v: 1, w: 1.0 }])
            .unwrap();
        assert_eq!((applied, epoch), (1, 1));
        assert_eq!(engine.stats("g").unwrap().epoch, 1);
    }

    #[test]
    fn stats_counts_queries_and_updates() {
        let (engine, _) = engine(2);
        engine.execute("g", Request::embed_row(0)).unwrap();
        engine
            .execute(
                "g",
                Request::ApplyUpdates {
                    updates: vec![Update::InsertEdge { u: 0, v: 1, w: 1.0 }],
                },
            )
            .unwrap();
        let report = match engine.execute("g", Request::stats()).unwrap() {
            Response::Stats(s) => s,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(report.epoch, 1);
        assert_eq!(report.oldest_epoch, 1, "default history keeps 1 epoch");
        assert_eq!(report.updates_applied, 1);
        assert!(report.queries_served >= 1);
        assert_eq!(report.num_shards, 2);
    }

    #[test]
    fn pinned_reads_travel_in_time() {
        let n = 60;
        let el = gee_gen::erdos_renyi_gnm(n, 300, 77);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                n,
                LabelSpec {
                    num_classes: 3,
                    labeled_fraction: 0.4,
                },
                9,
            ),
            3,
        );
        let engine = Engine::with_config(crate::RegistryConfig {
            default_shards: 4,
            history: crate::HistoryPolicy::keep(4),
            ..crate::RegistryConfig::default()
        })
        .unwrap();
        engine.registry().register("g", &el, &labels).unwrap();
        let row_then = engine.embed_row("g", 5).unwrap();
        let classes_then = engine.classify("g", vec![0, 1, 2], 3).unwrap();
        for i in 0..3u32 {
            engine
                .apply_updates(
                    "g",
                    vec![Update::InsertEdge {
                        u: 5,
                        v: (i * 13 + 1) % n as u32,
                        w: 4.0 + f64::from(i),
                    }],
                )
                .unwrap();
        }
        // Pinned at epoch 0, every read answers exactly as it did then.
        assert_eq!(engine.embed_row_at("g", 5, Some(0)).unwrap(), row_then);
        assert_eq!(
            engine.classify_at("g", vec![0, 1, 2], 3, Some(0)).unwrap(),
            classes_then
        );
        assert_eq!(
            engine.similar_at("g", 5, 4, Some(0)).unwrap(),
            engine.similar_at("g", 5, 4, Some(0)).unwrap(),
            "pinned reads are stable"
        );
        let pinned = engine.stats_at("g", Some(1)).unwrap();
        assert_eq!((pinned.epoch, pinned.oldest_epoch), (1, 0));
        // Unpinned reads see the newest epoch.
        assert_eq!(engine.stats("g").unwrap().epoch, 3);
        assert_ne!(engine.embed_row("g", 5).unwrap(), row_then);
        // Pins outside the ring are typed errors.
        assert!(matches!(
            engine.embed_row_at("g", 5, Some(99)),
            Err(ServeError::EpochEvicted {
                oldest: 0,
                newest: 3,
                ..
            })
        ));
    }

    #[test]
    fn one_run_serves_multiple_pinned_epochs_consistently() {
        let (engine, _) = engine(3);
        // Default history keeps 1: pinning the published epoch works,
        // anything else is evicted.
        let epoch = engine.stats("g").unwrap().epoch;
        let batch = vec![
            Envelope::new("g", Request::embed_row(0)),
            Envelope::new("g", Request::embed_row(0).pinned(epoch)),
            Envelope::new("g", Request::embed_row(0).pinned(epoch + 1)),
        ];
        let results = engine.execute_batch(batch);
        assert_eq!(results[0], results[1]);
        assert!(matches!(results[2], Err(ServeError::EpochEvicted { .. })));
    }
}
