//! Typed request/response engine with batch coalescing.
//!
//! [`Engine::execute_batch`] is the serving entry point: it walks an
//! ordered batch, coalesces maximal runs of read requests, and answers
//! each run shard-parallel against one consistent snapshot per graph.
//! Writes ([`Request::ApplyUpdates`]) break a run: they flow through the
//! registry's `DynamicGee` writer and publish a new epoch, which the next
//! read run observes. This makes a batch observationally identical to
//! executing its requests one at a time, while amortizing snapshot
//! acquisition and letting independent reads fan out across shards and
//! queries simultaneously.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use rayon::prelude::*;

use crate::registry::{Registry, Update};
use crate::snapshot::Snapshot;
use crate::ServeError;

/// A query or mutation against one named graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// kNN-classify each vertex from the labeled train set (majority vote
    /// of the `k` nearest labeled rows, nearest-first tiebreak — the
    /// semantics of `gee_eval::knn_classify`).
    Classify { vertices: Vec<u32>, k: usize },
    /// The `top` nearest vertices to `vertex` by embedding distance
    /// (Euclidean), excluding the vertex itself. Ties break toward the
    /// smaller vertex id.
    Similar { vertex: u32, top: usize },
    /// The raw embedding row of one vertex.
    EmbedRow { vertex: u32 },
    /// Apply a mutation batch and publish a new epoch.
    ApplyUpdates { updates: Vec<Update> },
    /// Serving statistics for the graph.
    Stats,
}

impl Request {
    /// Writes break read runs; everything else coalesces.
    fn is_write(&self) -> bool {
        matches!(self, Request::ApplyUpdates { .. })
    }
}

/// Answer to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Predicted class per queried vertex, in query order.
    Classes(Vec<u32>),
    /// `(vertex, distance)` pairs, nearest first.
    Neighbors(Vec<(u32, f64)>),
    /// One embedding row.
    Row(Vec<f64>),
    /// Outcome of an update batch: updates that took effect, and the
    /// epoch they published.
    Applied { applied: usize, epoch: u64 },
    /// Serving statistics.
    Stats(GraphReport),
}

/// Snapshot-plus-counters description of a served graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphReport {
    pub graph: String,
    pub epoch: u64,
    pub num_vertices: usize,
    pub dim: usize,
    pub num_shards: usize,
    pub num_labeled: usize,
    pub queries_served: u64,
    pub updates_applied: u64,
}

/// A request addressed to a named graph, for batch submission.
#[derive(Debug, Clone)]
pub struct Envelope {
    pub graph: String,
    pub request: Request,
}

impl Envelope {
    pub fn new(graph: impl Into<String>, request: Request) -> Self {
        Envelope { graph: graph.into(), request }
    }
}

/// The serving front end over a [`Registry`].
pub struct Engine {
    registry: Arc<Registry>,
}

impl Engine {
    pub fn new(registry: Arc<Registry>) -> Self {
        Engine { registry }
    }

    /// The underlying registry (for registration and admin).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Execute one request.
    pub fn execute(&self, graph: &str, request: Request) -> Result<Response, ServeError> {
        self.execute_batch(vec![Envelope::new(graph, request)])
            .pop()
            .expect("one request in, one response out")
    }

    /// Execute an ordered batch. Responses come back in request order;
    /// each failed request carries its own error without aborting the
    /// rest of the batch.
    pub fn execute_batch(&self, batch: Vec<Envelope>) -> Vec<Result<Response, ServeError>> {
        let mut out: Vec<Option<Result<Response, ServeError>>> = (0..batch.len()).map(|_| None).collect();
        let mut i = 0usize;
        while i < batch.len() {
            if batch[i].request.is_write() {
                out[i] = Some(self.execute_write(&batch[i]));
                i += 1;
            } else {
                // Coalesce the maximal run of reads starting here.
                let mut j = i;
                while j < batch.len() && !batch[j].request.is_write() {
                    j += 1;
                }
                let run = &batch[i..j];
                // One snapshot per graph for the whole run: reads in the
                // run see a single consistent epoch per graph.
                let mut snaps: Vec<(String, Result<Arc<Snapshot>, ServeError>)> = Vec::new();
                for env in run {
                    if !snaps.iter().any(|(g, _)| g == &env.graph) {
                        snaps.push((env.graph.clone(), self.registry.snapshot(&env.graph)));
                    }
                }
                let answers: Vec<Result<Response, ServeError>> = run
                    .par_iter()
                    .map(|env| {
                        let (_, snap) = snaps
                            .iter()
                            .find(|(g, _)| g == &env.graph)
                            .expect("snapshot prefetched for every graph in run");
                        match snap {
                            Err(e) => Err(e.clone()),
                            Ok(snap) => self.execute_read(&env.graph, &env.request, snap),
                        }
                    })
                    .collect();
                for (slot, ans) in out[i..j].iter_mut().zip(answers) {
                    *slot = Some(ans);
                }
                i = j;
            }
        }
        out.into_iter().map(|r| r.expect("every slot answered")).collect()
    }

    fn execute_write(&self, env: &Envelope) -> Result<Response, ServeError> {
        let Request::ApplyUpdates { updates } = &env.request else {
            unreachable!("only ApplyUpdates is a write");
        };
        let (applied, snap) = self.registry.apply_updates(&env.graph, updates)?;
        Ok(Response::Applied { applied, epoch: snap.epoch })
    }

    fn execute_read(
        &self,
        graph: &str,
        request: &Request,
        snap: &Snapshot,
    ) -> Result<Response, ServeError> {
        let entry = self.registry.entry(graph)?;
        entry.queries_served.fetch_add(1, Ordering::Relaxed);
        let n = snap.embedding.num_vertices();
        let check = |v: u32| {
            if (v as usize) < n {
                Ok(())
            } else {
                Err(ServeError::VertexOutOfRange { vertex: v, num_vertices: n })
            }
        };
        match request {
            Request::Classify { vertices, k } => {
                if *k == 0 {
                    return Err(ServeError::BadRequest("Classify needs k >= 1".into()));
                }
                if snap.num_labeled() == 0 {
                    return Err(ServeError::BadRequest(
                        "Classify needs at least one labeled vertex".into(),
                    ));
                }
                for &v in vertices {
                    check(v)?;
                }
                // One query: parallelize its scan across shards. Many
                // queries: parallelize across queries (serial shard walk
                // inside) — same answers, one parallel region instead of
                // one per query.
                let classes = if vertices.len() == 1 {
                    vec![classify_one(snap, vertices[0], *k, true)]
                } else {
                    vertices.par_iter().map(|&q| classify_one(snap, q, *k, false)).collect()
                };
                Ok(Response::Classes(classes))
            }
            Request::Similar { vertex, top } => {
                check(*vertex)?;
                Ok(Response::Neighbors(similar(snap, &entry.layout, *vertex, *top)))
            }
            Request::EmbedRow { vertex } => {
                check(*vertex)?;
                Ok(Response::Row(snap.embedding.row(*vertex).to_vec()))
            }
            Request::Stats => Ok(Response::Stats(GraphReport {
                graph: graph.to_string(),
                epoch: snap.epoch,
                num_vertices: n,
                dim: snap.embedding.dim(),
                num_shards: entry.layout.num_shards(),
                num_labeled: snap.num_labeled(),
                queries_served: entry.queries_served.load(Ordering::Relaxed),
                updates_applied: entry.updates_applied.load(Ordering::Relaxed),
            })),
            Request::ApplyUpdates { .. } => unreachable!("writes handled in execute_write"),
        }
    }
}

/// kNN-classify one vertex: scan each shard's train set in parallel for
/// its local k-best, merge to the global k-best, then majority-vote with
/// nearest-first tiebreak — exactly the semantics of
/// `gee_eval::knn_classify`, sharded.
///
/// `knn_classify` iterates the train set in vertex order and inserts each
/// candidate *before* equal-distance incumbents, so its k-best list is
/// ordered by `(distance asc, vertex desc)` and the boundary drops the
/// smallest-vertex entries among equals. The shard scan reproduces that
/// ordering locally (per-shard train sets ascend) and the merge re-sorts
/// by the same key, so the final list — membership and order — is
/// identical to the unsharded scan.
fn classify_one(snap: &Snapshot, q: u32, k: usize, parallel_shards: bool) -> u32 {
    let z = &snap.embedding;
    let qr = z.row(q);
    let scan_shard = |train: &Vec<(u32, u32)>| {
        let mut best: Vec<(f64, u32, u32)> = Vec::with_capacity(k + 1);
        for &(t, class) in train {
            let d: f64 = qr.iter().zip(z.row(t)).map(|(a, b)| (a - b) * (a - b)).sum();
            let pos = best.partition_point(|&(bd, ..)| bd < d);
            if pos < k {
                best.insert(pos, (d, t, class));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        best
    };
    let per_shard: Vec<Vec<(f64, u32, u32)>> = if parallel_shards {
        snap.train_by_shard.par_iter().map(scan_shard).collect()
    } else {
        snap.train_by_shard.iter().map(scan_shard).collect()
    };
    let mut merged: Vec<(f64, u32, u32)> = per_shard.into_iter().flatten().collect();
    merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(b.1.cmp(&a.1)));
    merged.truncate(k);
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &(.., c) in &merged {
        *counts.entry(c).or_default() += 1;
    }
    let top = counts.values().max().copied().unwrap_or(0);
    merged
        .iter()
        .find(|&&(.., c)| counts[&c] == top)
        .map(|&(.., c)| c)
        .expect("labeled train set is nonempty")
}

/// Shard-parallel nearest-neighbor sweep for `Similar`.
fn similar(
    snap: &Snapshot,
    layout: &crate::shard::ShardLayout,
    vertex: u32,
    top: usize,
) -> Vec<(u32, f64)> {
    if top == 0 {
        return Vec::new();
    }
    let z = &snap.embedding;
    let qr = z.row(vertex);
    let per_shard: Vec<Vec<(f64, u32)>> = layout.par_map(|_, lo, hi| {
        let mut best: Vec<(f64, u32)> = Vec::with_capacity(top + 1);
        for v in lo..hi {
            if v == vertex {
                continue;
            }
            let d: f64 = qr.iter().zip(z.row(v)).map(|(a, b)| (a - b) * (a - b)).sum();
            // Tie-break toward smaller id: ids ascend within a shard, so
            // inserting *after* equal distances keeps the smaller id first
            // and the boundary drops the larger id, consistent with the
            // final `(distance, id)` sort.
            let pos = best.partition_point(|&(bd, _)| bd <= d);
            if pos < top {
                best.insert(pos, (d, v));
                if best.len() > top {
                    best.pop();
                }
            }
        }
        best
    });
    let mut merged: Vec<(f64, u32)> = per_shard.into_iter().flatten().collect();
    merged.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    merged.truncate(top);
    merged.into_iter().map(|(d, v)| (v, d.sqrt())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_core::Labels;
    use gee_gen::LabelSpec;

    fn engine(shards: usize) -> (Engine, usize) {
        let n = 120;
        let el = gee_gen::erdos_renyi_gnm(n, 900, 21);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(n, LabelSpec { num_classes: 5, labeled_fraction: 0.3 }, 3),
            5,
        );
        let reg = Registry::new(shards);
        reg.register("g", &el, &labels);
        (Engine::new(Arc::new(reg)), n)
    }

    #[test]
    fn classify_matches_eval_knn() {
        let (engine, n) = engine(4);
        let snap = engine.registry().snapshot("g").unwrap();
        let queries: Vec<u32> = (0..n as u32).collect();
        let train: Vec<(u32, u32)> = snap.labels.iter_labeled().collect();
        for k in [1, 3, 7] {
            let expected = gee_eval::knn_classify(
                snap.embedding.as_slice(),
                snap.embedding.dim(),
                &train,
                &queries,
                k,
            );
            let got = match engine
                .execute("g", Request::Classify { vertices: queries.clone(), k })
                .unwrap()
            {
                Response::Classes(c) => c,
                other => panic!("unexpected response {other:?}"),
            };
            assert_eq!(got, expected, "k = {k}");
        }
    }

    #[test]
    fn classify_identical_across_shard_counts() {
        let all: Vec<Vec<u32>> = [1usize, 2, 5, 16]
            .into_iter()
            .map(|s| {
                let (engine, n) = engine(s);
                match engine
                    .execute("g", Request::Classify { vertices: (0..n as u32).collect(), k: 5 })
                    .unwrap()
                {
                    Response::Classes(c) => c,
                    other => panic!("unexpected response {other:?}"),
                }
            })
            .collect();
        for w in all.windows(2) {
            assert_eq!(w[0], w[1], "shard count must not change answers");
        }
    }

    #[test]
    fn similar_finds_nearest_and_excludes_self() {
        let (engine, _) = engine(3);
        let got = match engine.execute("g", Request::Similar { vertex: 7, top: 10 }).unwrap() {
            Response::Neighbors(x) => x,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|&(v, _)| v != 7), "self must be excluded");
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1), "must be sorted by distance");
        // Oracle: serial full scan.
        let snap = engine.registry().snapshot("g").unwrap();
        let z = &snap.embedding;
        let mut all: Vec<(f64, u32)> = (0..z.num_vertices() as u32)
            .filter(|&v| v != 7)
            .map(|v| {
                let d: f64 =
                    z.row(7).iter().zip(z.row(v)).map(|(a, b)| (a - b) * (a - b)).sum();
                (d.sqrt(), v)
            })
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let expected: Vec<(u32, f64)> = all[..10].iter().map(|&(d, v)| (v, d)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn batch_equals_one_at_a_time() {
        let make_batch = || {
            vec![
                Envelope::new("g", Request::EmbedRow { vertex: 3 }),
                Envelope::new("g", Request::Classify { vertices: vec![1, 2, 3], k: 3 }),
                Envelope::new(
                    "g",
                    Request::ApplyUpdates {
                        updates: vec![
                            Update::InsertEdge { u: 1, v: 2, w: 5.0 },
                            Update::SetLabel { v: 2, label: Some(1) },
                        ],
                    },
                ),
                Envelope::new("g", Request::Classify { vertices: vec![1, 2, 3], k: 3 }),
                Envelope::new("g", Request::Similar { vertex: 1, top: 5 }),
            ]
        };
        let (engine_a, _) = engine(4);
        let batched: Vec<_> =
            engine_a.execute_batch(make_batch()).into_iter().map(Result::unwrap).collect();
        let (engine_b, _) = engine(4);
        let sequential: Vec<_> = make_batch()
            .into_iter()
            .map(|e| engine_b.execute(&e.graph, e.request).unwrap())
            .collect();
        assert_eq!(batched, sequential);
        // The post-update classify must observe the new epoch.
        assert!(matches!(batched[2], Response::Applied { epoch: 1, .. }));
    }

    #[test]
    fn reads_in_one_run_share_an_epoch() {
        let (engine, _) = engine(2);
        let batch = vec![
            Envelope::new("g", Request::Stats),
            Envelope::new("g", Request::Stats),
        ];
        let epochs: Vec<u64> = engine
            .execute_batch(batch)
            .into_iter()
            .map(|r| match r.unwrap() {
                Response::Stats(s) => s.epoch,
                other => panic!("unexpected response {other:?}"),
            })
            .collect();
        assert_eq!(epochs[0], epochs[1]);
    }

    #[test]
    fn errors_are_per_request() {
        let (engine, n) = engine(2);
        let batch = vec![
            Envelope::new("g", Request::EmbedRow { vertex: 0 }),
            Envelope::new("g", Request::EmbedRow { vertex: n as u32 }), // out of range
            Envelope::new("missing", Request::Stats),                  // unknown graph
            Envelope::new("g", Request::Classify { vertices: vec![0], k: 0 }), // bad k
        ];
        let results = engine.execute_batch(batch);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ServeError::VertexOutOfRange { .. })));
        assert!(matches!(results[2], Err(ServeError::UnknownGraph(_))));
        assert!(matches!(results[3], Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn stats_counts_queries_and_updates() {
        let (engine, _) = engine(2);
        engine.execute("g", Request::EmbedRow { vertex: 0 }).unwrap();
        engine
            .execute(
                "g",
                Request::ApplyUpdates { updates: vec![Update::InsertEdge { u: 0, v: 1, w: 1.0 }] },
            )
            .unwrap();
        let report = match engine.execute("g", Request::Stats).unwrap() {
            Response::Stats(s) => s,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(report.epoch, 1);
        assert_eq!(report.updates_applied, 1);
        assert!(report.queries_served >= 1);
        assert_eq!(report.num_shards, 2);
    }
}
