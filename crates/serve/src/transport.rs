//! Transport abstraction: how encoded wire frames cross a boundary.
//!
//! [`Transport`] is the one seam between the typed protocol
//! ([`crate::wire`]) and bytes-in-flight. Two implementations ship:
//!
//! * [`duplex`] — an in-process pair connected by channels. Frames move
//!   as owned `Vec<u8>`s with no copying and no framing bytes, which
//!   makes it the zero-overhead harness for tests, property checks, and
//!   the `wire_overhead` bench (it isolates encode/decode cost from
//!   kernel socket cost).
//! * [`TcpTransport`] — a buffered `TcpStream` where each frame is
//!   length-prefixed with a big-endian `u32`. `TCP_NODELAY` is set so
//!   small request frames are not Nagle-delayed behind earlier replies.
//!
//! `recv` distinguishes a *clean* close (peer finished between frames →
//! `Ok(None)`) from a *torn* one (EOF mid-frame → `Protocol` error), so
//! callers can tell an orderly goodbye from a crashed peer.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc::{channel, Receiver, Sender};

use crate::wire::MAX_FRAME_LEN;
use crate::ServeError;

/// A bidirectional, blocking frame pipe.
pub trait Transport: Send {
    /// Send one encoded frame.
    fn send(&mut self, frame: Vec<u8>) -> Result<(), ServeError>;

    /// Receive the next frame; `Ok(None)` means the peer closed cleanly.
    fn recv(&mut self) -> Result<Option<Vec<u8>>, ServeError>;
}

// ----------------------------------------------------------- in-process

/// One end of an in-process transport pair (see [`duplex`]).
pub struct DuplexTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// A connected pair of in-process transports: frames sent on one end
/// arrive on the other, zero-copy, in order. Dropping an end reads as a
/// clean close on its peer.
pub fn duplex() -> (DuplexTransport, DuplexTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        DuplexTransport { tx: a_tx, rx: a_rx },
        DuplexTransport { tx: b_tx, rx: b_rx },
    )
}

impl Transport for DuplexTransport {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), ServeError> {
        self.tx
            .send(frame)
            .map_err(|_| ServeError::transport("duplex peer closed"))
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, ServeError> {
        // A disconnected channel is the duplex notion of a clean close.
        Ok(self.rx.recv().ok())
    }
}

// ------------------------------------------------------------------ TCP

/// Length-prefix framing over a buffered `TcpStream`.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpTransport {
    /// Connect to a listening [`Server`](crate::Server).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpTransport, ServeError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServeError::transport(format!("connect: {e}")))?;
        Self::from_stream(stream)
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> Result<TcpTransport, ServeError> {
        stream
            .set_nodelay(true)
            .map_err(|e| ServeError::transport(format!("set_nodelay: {e}")))?;
        let writer = stream
            .try_clone()
            .map_err(|e| ServeError::transport(format!("clone stream: {e}")))?;
        Ok(TcpTransport {
            reader: BufReader::new(stream),
            writer: BufWriter::new(writer),
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), ServeError> {
        if frame.len() > MAX_FRAME_LEN {
            return Err(ServeError::protocol(format!(
                "refusing to send {}-byte frame (max {MAX_FRAME_LEN})",
                frame.len()
            )));
        }
        let send = |e: std::io::Error| ServeError::transport(format!("send: {e}"));
        self.writer
            .write_all(&(frame.len() as u32).to_be_bytes())
            .map_err(send)?;
        self.writer.write_all(&frame).map_err(send)?;
        self.writer.flush().map_err(send)
    }

    fn recv(&mut self) -> Result<Option<Vec<u8>>, ServeError> {
        // First prefix byte by hand so clean EOF (0 bytes) is
        // distinguishable from a frame torn mid-read. Retry EINTR like
        // `read_exact` does — a signal must not tear the connection.
        let mut prefix = [0u8; 4];
        let n = loop {
            match self.reader.read(&mut prefix[..1]) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ServeError::transport(format!("recv: {e}"))),
            }
        };
        if n == 0 {
            return Ok(None);
        }
        let torn = |e: std::io::Error| ServeError::protocol(format!("frame torn mid-read: {e}"));
        self.reader.read_exact(&mut prefix[1..]).map_err(torn)?;
        let len = u32::from_be_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(ServeError::protocol(format!(
                "peer announced {len}-byte frame (max {MAX_FRAME_LEN})"
            )));
        }
        let mut frame = vec![0u8; len];
        self.reader.read_exact(&mut frame).map_err(torn)?;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn duplex_round_trips_in_order() {
        let (mut a, mut b) = duplex();
        a.send(b"one".to_vec()).unwrap();
        a.send(b"two".to_vec()).unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"one");
        b.send(b"reply".to_vec()).unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"two");
        assert_eq!(a.recv().unwrap().unwrap(), b"reply");
        drop(a);
        assert_eq!(b.recv().unwrap(), None, "dropped peer reads as clean close");
        assert!(matches!(b.send(vec![1]), Err(ServeError::Transport { .. })));
    }

    #[test]
    fn tcp_frames_round_trip_and_eof_is_clean() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            while let Some(frame) = t.recv().unwrap() {
                t.send(frame).unwrap(); // echo
            }
        });
        let mut t = TcpTransport::connect(addr).unwrap();
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![0xAB; 1], vec![7; 100_000]];
        for p in &payloads {
            t.send(p.clone()).unwrap();
        }
        for p in &payloads {
            assert_eq!(&t.recv().unwrap().unwrap(), p, "echoed in order");
        }
        drop(t);
        server.join().unwrap();
    }

    #[test]
    fn tcp_rejects_oversized_announcements() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // An adversarial 4 GiB length prefix, then nothing.
            s.write_all(&u32::MAX.to_be_bytes()).unwrap();
            s.flush().unwrap();
            s
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::from_stream(stream).unwrap();
        assert!(matches!(t.recv(), Err(ServeError::Protocol { .. })));
        drop(client.join().unwrap());
    }

    #[test]
    fn tcp_torn_frame_is_a_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Announce 100 bytes, deliver 3, hang up.
            s.write_all(&100u32.to_be_bytes()).unwrap();
            s.write_all(b"abc").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::from_stream(stream).unwrap();
        assert!(matches!(t.recv(), Err(ServeError::Protocol { .. })));
        client.join().unwrap();
    }
}
