//! WAL-shipping replication: leader → follower log streaming with
//! epoch-consistent replica reads.
//!
//! A **leader** is any durable registry with a
//! [`ReplicationListener`] attached: a second TCP listener, separate
//! from the client-facing [`Server`](crate::Server), that streams the
//! leader's WAL to followers. A **follower** ([`Follower`]) runs its
//! own durable [`Registry`](crate::Registry) in read-only mode, pulls
//! the stream, persists every record through its own WAL *before*
//! applying it, and replays it through the same dirty-tracking apply
//! path recovery uses — so every epoch the follower publishes is
//! fingerprint-identical to the leader's epoch of the same number, and
//! epoch-pinned reads answer byte-identically on either side.
//!
//! # Stream protocol
//!
//! The replication stream is **not** the client wire protocol
//! ([`crate::wire`]): it is a binary stream of length+CRC frames
//! ([`gee_graph::io::frame`] — the same framing the WAL and checkpoint
//! files use on disk), each carrying one [`ReplFrame`]:
//!
//! 1. follower → leader: [`ReplFrame::Hello`] with the stream-protocol
//!    version and the follower's durable high-water LSN (its resume
//!    point — after a crash it simply reconnects with the new high
//!    water);
//! 2. leader → follower, when the requested LSN is behind the
//!    compaction horizon (oldest on-disk segment):
//!    [`ReplFrame::Bootstrap`] followed by one raw frame holding the
//!    leader's latest checkpoint ([`crate::checkpoint::encode`]); the
//!    follower installs it, replacing all local state;
//! 3. leader → follower: [`ReplFrame::Stream`] confirming the first
//!    LSN it will ship, then any number of [`ReplFrame::Record`]s (the
//!    exact WAL record payloads, re-framed) interleaved with
//!    [`ReplFrame::Heartbeat`]s (leader append head + published epochs,
//!    the follower's lag oracle), and finally [`ReplFrame::End`] when
//!    the leader shuts down or cannot continue (e.g. compaction retired
//!    a segment mid-stream — the follower reconnects and bootstraps).
//!
//! Every frame is CRC-checked; a corrupt or torn frame surfaces as
//! [`ServeError::Corrupt`] on the follower and is **never** applied —
//! the follower drops the connection and resumes from its durable high
//! water. `tests/replication_frames.rs` injects torn streams and bit
//! flips to pin this down.
//!
//! # Promotion & fencing
//!
//! Stream version 2 adds a **leader epoch**: a monotonically increasing
//! fencing token, durably persisted in each node's data dir (a
//! `leader-epoch` file plus every checkpoint — see
//! [`crate::wal::save_leader_epoch`]) and recovered on open. The
//! follower's [`ReplFrame::Hello`] carries the highest epoch it has
//! ever replicated under; the leader advertises its own epoch on
//! [`ReplFrame::Bootstrap`], [`ReplFrame::Stream`], and every
//! [`ReplFrame::Heartbeat`]. Both sides enforce the same rule —
//! **never follow, and never serve past, a lower epoch**:
//!
//! - a follower that sees a leader advertise an epoch *below* its own
//!   record rejects the session with the typed
//!   [`ServeError::StaleLeader`] before applying anything;
//! - a leader greeted by a follower claiming a *higher* epoch has been
//!   deposed: it self-fences ([`crate::Registry::fenced_by`]) — writes
//!   are refused with [`ServeError::StaleLeader`], every follower
//!   connection is ended, and the fenced state is surfaced through
//!   `replication_report()` in the Stats/Metrics `replication` block.
//!
//! [`Follower::promote`] turns a follower into the new leader: it stops
//! the pull loop at the durable high water, bumps and persists the
//! epoch, flips the registry writable, and (optionally) warms a
//! [`ReplicationListener`] so surviving followers re-point and resume
//! from their own LSNs. A v1 peer (no epoch in its frames) is still
//! served for compatibility, without fencing protection.
//!
//! # Consistency
//!
//! The leader ships records only up to its durable high-water LSN
//! (sampled under the log lock), reading them back from its own
//! segment files — it never ships an unapplied or torn record. The
//! follower appends each record to its own WAL at the *same LSN* (a
//! mismatch is `Corrupt`), then applies it via
//! `Registry::apply_replicated`. Since WAL replay is bit-exact (PR 3's
//! crash harness), leader and follower converge to bit-identical
//! snapshots epoch-for-epoch; `tests/replication.rs` asserts it by
//! snapshot fingerprint under concurrent writer churn.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use gee_graph::io::frame::{Cursor, FrameError};

use crate::wal;

pub mod follower;
pub mod leader;

pub use follower::{Follower, Promotion};
pub use leader::ReplicationListener;

/// Identifies a replication Hello; a peer that speaks anything else
/// (e.g. a client wire connection to the wrong port) fails the
/// handshake instead of desynchronizing the stream.
pub const REPL_MAGIC: &[u8; 8] = b"GEEREPL1";

/// Version of the replication stream protocol itself (independent of
/// the client wire protocol's [`crate::wire::PROTOCOL_VERSION`]).
/// v2 added the leader epoch (fencing token) to `Hello`, `Bootstrap`,
/// `Stream`, and `Heartbeat`.
pub const REPL_STREAM_VERSION: u32 = 2;

/// Oldest stream version a leader still serves. A v1 follower gets
/// epoch-free frames (no fencing protection) but an otherwise identical
/// stream.
pub const MIN_REPL_STREAM_VERSION: u32 = 1;

/// Cap on one replication frame: a WAL record plus framing slack.
/// (The bootstrap checkpoint frame is read under
/// [`crate::checkpoint::MAX_CHECKPOINT_LEN`] instead.)
pub const MAX_REPL_FRAME_LEN: usize = wal::MAX_RECORD_LEN + 64;

const TAG_HELLO: u8 = 1;
const TAG_BOOTSTRAP: u8 = 2;
const TAG_STREAM: u8 = 3;
const TAG_RECORD: u8 = 4;
const TAG_HEARTBEAT: u8 = 5;
const TAG_END: u8 = 6;

/// Longest `End` detail accepted (a peer cannot force a large alloc).
const MAX_DETAIL_LEN: usize = 1 << 16;

/// One frame of the replication stream. See the module docs for the
/// exchange order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplFrame {
    /// Follower → leader: magic + stream version + resume LSN, plus (v2)
    /// the highest leader epoch the follower has durably replicated
    /// under. Encoded only when `version >= 2`; a v1 Hello decodes with
    /// `max_epoch_seen = 0`.
    Hello {
        version: u32,
        start_lsn: u64,
        max_epoch_seen: u64,
    },
    /// Leader → follower: a checkpoint at `lsn` follows as one raw
    /// frame; install it, then expect `Stream { from_lsn: lsn }`.
    /// `leader_epoch` is `None` on a v1 session.
    Bootstrap { lsn: u64, leader_epoch: Option<u64> },
    /// Leader → follower: records ship from `from_lsn` (must equal the
    /// follower's high water once any bootstrap is installed).
    /// `leader_epoch` is `None` on a v1 session.
    Stream {
        from_lsn: u64,
        leader_epoch: Option<u64>,
    },
    /// One WAL record: `record` is the exact
    /// [`wal::encode_record`] payload the leader's log holds at `lsn`.
    Record { lsn: u64, record: Vec<u8> },
    /// Leader liveness + lag oracle: the leader's append head and its
    /// published epoch per graph (sorted by name), plus (v2) the leader
    /// epoch so a mid-stream deposition is caught at the next beat.
    Heartbeat {
        next_lsn: u64,
        epochs: Vec<(String, u64)>,
        leader_epoch: Option<u64>,
    },
    /// The leader is done with this connection (shutdown, or it cannot
    /// serve the requested range); the follower reconnects with
    /// backoff.
    End { detail: String },
}

impl ReplFrame {
    /// Encode to a frame payload (the caller wraps it in length+CRC
    /// framing via [`gee_graph::io::frame::write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        use gee_graph::io::frame::{put_str, put_u32, put_u64, put_u8};
        let mut buf = Vec::new();
        match self {
            ReplFrame::Hello {
                version,
                start_lsn,
                max_epoch_seen,
            } => {
                put_u8(&mut buf, TAG_HELLO);
                buf.extend_from_slice(REPL_MAGIC);
                put_u32(&mut buf, *version);
                put_u64(&mut buf, *start_lsn);
                // A v1-shaped Hello must stay byte-identical, so the
                // epoch rides only on v2+ frames.
                if *version >= 2 {
                    put_u64(&mut buf, *max_epoch_seen);
                }
            }
            ReplFrame::Bootstrap { lsn, leader_epoch } => {
                put_u8(&mut buf, TAG_BOOTSTRAP);
                put_u64(&mut buf, *lsn);
                if let Some(epoch) = leader_epoch {
                    put_u64(&mut buf, *epoch);
                }
            }
            ReplFrame::Stream {
                from_lsn,
                leader_epoch,
            } => {
                put_u8(&mut buf, TAG_STREAM);
                put_u64(&mut buf, *from_lsn);
                if let Some(epoch) = leader_epoch {
                    put_u64(&mut buf, *epoch);
                }
            }
            ReplFrame::Record { lsn, record } => {
                put_u8(&mut buf, TAG_RECORD);
                put_u64(&mut buf, *lsn);
                buf.extend_from_slice(record);
            }
            ReplFrame::Heartbeat {
                next_lsn,
                epochs,
                leader_epoch,
            } => {
                put_u8(&mut buf, TAG_HEARTBEAT);
                put_u64(&mut buf, *next_lsn);
                put_u32(&mut buf, epochs.len() as u32);
                for (name, epoch) in epochs {
                    put_str(&mut buf, name);
                    put_u64(&mut buf, *epoch);
                }
                if let Some(epoch) = leader_epoch {
                    put_u64(&mut buf, *epoch);
                }
            }
            ReplFrame::End { detail } => {
                put_u8(&mut buf, TAG_END);
                put_str(&mut buf, detail);
            }
        }
        buf
    }

    /// Decode a frame payload. Anything unexpected — unknown tag, bad
    /// magic, trailing bytes — is [`FrameError::Malformed`].
    pub fn decode(payload: &[u8]) -> Result<ReplFrame, FrameError> {
        let mut c = Cursor::new(payload);
        match c.take_u8("replication frame tag")? {
            TAG_HELLO => {
                let mut magic = [0u8; 8];
                for b in &mut magic {
                    *b = c.take_u8("replication magic")?;
                }
                if &magic != REPL_MAGIC {
                    return Err(FrameError::malformed(format!(
                        "bad replication magic {magic:02x?}"
                    )));
                }
                let version = c.take_u32("stream version")?;
                let start_lsn = c.take_u64("start lsn")?;
                let max_epoch_seen = if version >= 2 {
                    c.take_u64("max epoch seen")?
                } else {
                    0
                };
                c.finish("Hello frame")?;
                Ok(ReplFrame::Hello {
                    version,
                    start_lsn,
                    max_epoch_seen,
                })
            }
            TAG_BOOTSTRAP => {
                let lsn = c.take_u64("bootstrap lsn")?;
                let leader_epoch = take_opt_epoch(&mut c, "bootstrap leader epoch")?;
                c.finish("Bootstrap frame")?;
                Ok(ReplFrame::Bootstrap { lsn, leader_epoch })
            }
            TAG_STREAM => {
                let from_lsn = c.take_u64("stream start lsn")?;
                let leader_epoch = take_opt_epoch(&mut c, "stream leader epoch")?;
                c.finish("Stream frame")?;
                Ok(ReplFrame::Stream {
                    from_lsn,
                    leader_epoch,
                })
            }
            TAG_RECORD => {
                let lsn = c.take_u64("record lsn")?;
                // The rest of the payload is the record, verbatim; the
                // outer frame's length (and CRC) already bounds it.
                Ok(ReplFrame::Record {
                    lsn,
                    record: payload[9..].to_vec(),
                })
            }
            TAG_HEARTBEAT => {
                let next_lsn = c.take_u64("heartbeat lsn")?;
                let count = c.take_count(12, "heartbeat epochs")?;
                let mut epochs = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = c.take_str(wal::MAX_NAME_LEN, "graph name")?;
                    let epoch = c.take_u64("graph epoch")?;
                    epochs.push((name, epoch));
                }
                let leader_epoch = take_opt_epoch(&mut c, "heartbeat leader epoch")?;
                c.finish("Heartbeat frame")?;
                Ok(ReplFrame::Heartbeat {
                    next_lsn,
                    epochs,
                    leader_epoch,
                })
            }
            TAG_END => {
                let detail = c.take_str(MAX_DETAIL_LEN, "end detail")?;
                c.finish("End frame")?;
                Ok(ReplFrame::End { detail })
            }
            tag => Err(FrameError::malformed(format!(
                "unknown replication frame tag {tag}"
            ))),
        }
    }
}

/// Decode the optional trailing leader-epoch a v2 session appends to
/// `Bootstrap`/`Stream`/`Heartbeat`: exactly 8 remaining bytes is the
/// epoch, 0 is a v1 frame, and anything else falls through to the
/// caller's `finish` as malformed.
fn take_opt_epoch(c: &mut Cursor<'_>, what: &'static str) -> Result<Option<u64>, FrameError> {
    if c.remaining() == 8 {
        Ok(Some(c.take_u64(what)?))
    } else {
        Ok(None)
    }
}

/// Shared live view of a follower's pull loop: the registry reads it to
/// build the protocol-v5 `replication` report
/// ([`crate::Registry`]`::replication_report`), tests and operators
/// read it through [`Follower::status`].
pub struct ReplicationStatus {
    leader: String,
    connected: AtomicBool,
    leader_next_lsn: AtomicU64,
    leader_epochs: RwLock<Vec<(String, u64)>>,
    last_error: Mutex<Option<String>>,
    last_end: Mutex<Option<String>>,
    backoff_ms: AtomicU64,
}

impl ReplicationStatus {
    pub(crate) fn new(leader: String) -> ReplicationStatus {
        ReplicationStatus {
            leader,
            connected: AtomicBool::new(false),
            leader_next_lsn: AtomicU64::new(0),
            leader_epochs: RwLock::new(Vec::new()),
            last_error: Mutex::new(None),
            last_end: Mutex::new(None),
            backoff_ms: AtomicU64::new(0),
        }
    }

    /// The leader address this follower replicates from (what the
    /// `ReadOnlyReplica` error tells writers to retry against).
    pub fn leader(&self) -> &str {
        &self.leader
    }

    /// Whether the pull loop currently holds a live leader connection.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Acquire)
    }

    pub(crate) fn set_connected(&self, connected: bool) {
        self.connected.store(connected, Ordering::Release);
        // On disconnect the last heartbeat's head/epochs describe a
        // leader that may no longer exist; clear them so
        // `replication_report()` never presents a dead leader's state
        // as live lag.
        if !connected {
            self.leader_next_lsn.store(0, Ordering::Release);
            self.leader_epochs
                .write()
                .expect("status lock poisoned")
                .clear();
        }
    }

    /// The leader's append head from the last heartbeat (0 before the
    /// first one, and reset to 0 whenever the connection drops).
    pub fn leader_next_lsn(&self) -> u64 {
        self.leader_next_lsn.load(Ordering::Acquire)
    }

    /// The leader's published epochs from the last heartbeat, sorted by
    /// graph name.
    pub fn leader_epochs(&self) -> Vec<(String, u64)> {
        self.leader_epochs
            .read()
            .expect("status lock poisoned")
            .clone()
    }

    pub(crate) fn update_leader(&self, next_lsn: u64, epochs: Vec<(String, u64)>) {
        *self.leader_epochs.write().expect("status lock poisoned") = epochs;
        self.leader_next_lsn.store(next_lsn, Ordering::Release);
    }

    /// The most recent pull-loop failure (the loop keeps reconnecting
    /// regardless; this is for diagnostics). An orderly stream end —
    /// the leader shutting down, a clean failover — is **not** an
    /// error; see [`ReplicationStatus::last_graceful_end`].
    pub fn last_error(&self) -> Option<String> {
        self.last_error
            .lock()
            .expect("status lock poisoned")
            .clone()
    }

    pub(crate) fn record_error(&self, error: String) {
        *self.last_error.lock().expect("status lock poisoned") = Some(error);
    }

    /// Detail of the most recent orderly [`ReplFrame::End`] from the
    /// leader (e.g. "leader shutting down"). Tracked separately from
    /// [`ReplicationStatus::last_error`] so operators can tell a clean
    /// failover from a fault.
    pub fn last_graceful_end(&self) -> Option<String> {
        self.last_end.lock().expect("status lock poisoned").clone()
    }

    pub(crate) fn record_end(&self, detail: String) {
        *self.last_end.lock().expect("status lock poisoned") = Some(detail);
    }

    /// The reconnect backoff the pull loop last slept (zero before the
    /// first session ends). A healthy follower of an idle leader stays
    /// at the 100 ms minimum — any successful `Stream` handshake earns
    /// a fresh backoff, whether or not records were shipped.
    pub fn reconnect_backoff(&self) -> std::time::Duration {
        std::time::Duration::from_millis(self.backoff_ms.load(Ordering::Acquire))
    }

    pub(crate) fn set_backoff(&self, backoff: std::time::Duration) {
        self.backoff_ms
            .store(backoff.as_millis() as u64, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: ReplFrame) {
        let payload = frame.encode();
        assert_eq!(ReplFrame::decode(&payload).unwrap(), frame);
    }

    #[test]
    fn frames_round_trip() {
        roundtrip(ReplFrame::Hello {
            version: REPL_STREAM_VERSION,
            start_lsn: u64::MAX,
            max_epoch_seen: 17,
        });
        // A v1 Hello has no epoch field (canonically zero).
        roundtrip(ReplFrame::Hello {
            version: 1,
            start_lsn: 3,
            max_epoch_seen: 0,
        });
        roundtrip(ReplFrame::Bootstrap {
            lsn: 0,
            leader_epoch: None,
        });
        roundtrip(ReplFrame::Bootstrap {
            lsn: 12,
            leader_epoch: Some(4),
        });
        roundtrip(ReplFrame::Stream {
            from_lsn: 42,
            leader_epoch: None,
        });
        roundtrip(ReplFrame::Stream {
            from_lsn: 42,
            leader_epoch: Some(u64::MAX),
        });
        roundtrip(ReplFrame::Record {
            lsn: 7,
            record: vec![1, 2, 3, 255, 0],
        });
        roundtrip(ReplFrame::Record {
            lsn: 8,
            record: Vec::new(),
        });
        roundtrip(ReplFrame::Heartbeat {
            next_lsn: 99,
            epochs: vec![("a".into(), 3), ("graph-ü".into(), u64::MAX)],
            leader_epoch: Some(2),
        });
        roundtrip(ReplFrame::Heartbeat {
            next_lsn: 0,
            epochs: Vec::new(),
            leader_epoch: None,
        });
        roundtrip(ReplFrame::End {
            detail: "leader shutting down".into(),
        });
    }

    #[test]
    fn v1_hello_bytes_decode_without_epoch() {
        // The v1 wire shape — tag + magic + version + start_lsn, 21
        // bytes — must keep decoding (version negotiation).
        let v1 = ReplFrame::Hello {
            version: 1,
            start_lsn: 9,
            max_epoch_seen: 0,
        }
        .encode();
        assert_eq!(v1.len(), 21);
        let v2 = ReplFrame::Hello {
            version: 2,
            start_lsn: 9,
            max_epoch_seen: 6,
        }
        .encode();
        assert_eq!(v2.len(), 29);
        assert_eq!(
            ReplFrame::decode(&v1).unwrap(),
            ReplFrame::Hello {
                version: 1,
                start_lsn: 9,
                max_epoch_seen: 0,
            }
        );
        // A v2 Hello without its epoch field is malformed, not a guess.
        assert!(matches!(
            ReplFrame::decode(&v2[..21]),
            Err(FrameError::Malformed { .. })
        ));
    }

    #[test]
    fn bad_magic_and_unknown_tags_are_malformed() {
        let mut hello = ReplFrame::Hello {
            version: 1,
            start_lsn: 5,
            max_epoch_seen: 0,
        }
        .encode();
        hello[3] ^= 0xff; // inside the magic
        assert!(matches!(
            ReplFrame::decode(&hello),
            Err(FrameError::Malformed { .. })
        ));
        assert!(matches!(
            ReplFrame::decode(&[99, 0, 0]),
            Err(FrameError::Malformed { .. })
        ));
        assert!(ReplFrame::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut stream = ReplFrame::Stream {
            from_lsn: 1,
            leader_epoch: None,
        }
        .encode();
        stream.push(0);
        assert!(matches!(
            ReplFrame::decode(&stream),
            Err(FrameError::Malformed { .. })
        ));
    }
}
