//! Snapshot checkpoints: the full-state shortcut that bounds WAL replay.
//!
//! A checkpoint file captures, for every registered graph, the complete
//! [`DynamicGee`] writer state (`Ẑ` accumulator bit patterns, labels,
//! class counts, the adjacency mirror in insertion order), the published
//! epoch, the shard count, and the `updates_applied` counter — i.e.
//! everything [`Registry`](crate::Registry) recovery needs to continue
//! *bit-identically*, because the published [`Snapshot`]
//! (`crate::Snapshot`) is a deterministic function of writer state and
//! shard layout. WAL records at LSN ≥ the checkpoint's `lsn` are replayed
//! on top; everything older is fully covered and its segments can be
//! retired.
//!
//! # On-disk format
//!
//! One file per checkpoint, named `ckpt-{lsn:016x}.ckpt`:
//!
//! ```text
//! magic    (8 bytes, b"GEECKPT1")
//! version  (u32 LE, = 2)
//! frame    [len u32 LE][crc32 u32 LE][payload]   (io::frame layout)
//! payload  = lsn u64, leader_epoch u64, graph count u32, then per graph:
//!   name (u32 len + UTF-8), shards u32, epoch u64, updates_applied u64,
//!   n u64, K u32, n×K × f64-bits (Ẑ), n × i32 (labels), K × u64 (counts),
//!   per vertex: degree u32, degree × (vertex u32, w f64-bits)
//! ```
//!
//! Checkpoints are written to a temp file, fsynced, then atomically
//! renamed into place — a crash mid-checkpoint leaves no file under the
//! final name, so a checkpoint that *does* exist but fails its CRC or
//! shape checks is disk corruption and surfaces as
//! [`ServeError::Corrupt`], never a panic and never a silently shorter
//! history.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use gee_core::DynamicGeeState;
use gee_graph::io::frame::{self, Cursor, FrameError};

use crate::wal::{sync_dir, MAX_NAME_LEN};
use crate::ServeError;

/// Checkpoint-file magic.
pub const MAGIC: &[u8; 8] = b"GEECKPT1";

/// Checkpoint format version. v2 added `leader_epoch` to the payload
/// (the replication fencing token; see [`crate::replicate`]) — v1 files
/// written by pre-fencing builds are refused as unsupported rather than
/// misread.
pub const VERSION: u32 = 2;

/// Upper bound on a checkpoint payload: the u32 frame-length limit
/// (~4 GiB, enough for ~40M-row states) — it guards the allocation a
/// corrupt length prefix could demand on load, and [`save`] refuses to
/// write anything larger (it would wrap the length prefix and be
/// unloadable).
pub const MAX_CHECKPOINT_LEN: usize = u32::MAX as usize;

/// One graph's durable state inside a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphCheckpoint {
    pub name: String,
    /// Requested shard count (re-clamped by `ShardLayout` on restore,
    /// exactly as registration did).
    pub shards: u32,
    /// Epoch of the published snapshot at checkpoint time.
    pub epoch: u64,
    /// Lifetime applied-update counter (survives restarts; the
    /// query counter intentionally does not — reads are not logged).
    pub updates_applied: u64,
    /// Complete writer state.
    pub state: DynamicGeeState,
}

/// A consistent image of the whole registry at WAL position `lsn`.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// WAL records with LSN < `lsn` are covered; replay starts here.
    pub lsn: u64,
    /// The leader epoch (replication fencing token) the registry held
    /// when the checkpoint was taken; recovery takes the max of this
    /// and the `leader-epoch` file, so the token survives the loss of
    /// either. `0` on a node that never led or followed.
    pub leader_epoch: u64,
    /// Every registered graph, in registry iteration order.
    pub graphs: Vec<GraphCheckpoint>,
}

/// File name for a checkpoint covering up to `lsn`.
pub fn file_name(lsn: u64) -> String {
    format!("ckpt-{lsn:016x}.ckpt")
}

fn parse_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    (hex.len() == 16).then(|| u64::from_str_radix(hex, 16).ok())?
}

/// Sorted `(lsn, path)` list of the directory's checkpoint files.
pub fn checkpoint_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>, ServeError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ServeError::storage(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| ServeError::storage(format!("reading {}: {e}", dir.display())))?;
        if let Some(lsn) = parse_file_name(&entry.file_name().to_string_lossy()) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_by_key(|&(lsn, _)| lsn);
    Ok(out)
}

/// Encode the checkpoint payload (framing and header are added by
/// [`save`]).
pub fn encode(ckpt: &Checkpoint) -> Vec<u8> {
    let mut buf = Vec::new();
    frame::put_u64(&mut buf, ckpt.lsn);
    frame::put_u64(&mut buf, ckpt.leader_epoch);
    frame::put_u32(&mut buf, ckpt.graphs.len() as u32);
    for g in &ckpt.graphs {
        frame::put_str(&mut buf, &g.name);
        frame::put_u32(&mut buf, g.shards);
        frame::put_u64(&mut buf, g.epoch);
        frame::put_u64(&mut buf, g.updates_applied);
        let s = &g.state;
        frame::put_u64(&mut buf, s.num_vertices as u64);
        frame::put_u32(&mut buf, s.num_classes as u32);
        for &z in &s.zhat {
            frame::put_f64(&mut buf, z);
        }
        for &y in &s.labels {
            frame::put_i32(&mut buf, y);
        }
        for &c in &s.class_counts {
            frame::put_u64(&mut buf, c);
        }
        for list in &s.adjacency {
            frame::put_u32(&mut buf, list.len() as u32);
            for &(v, w) in list {
                frame::put_u32(&mut buf, v);
                frame::put_f64(&mut buf, w);
            }
        }
    }
    buf
}

/// Decode a checkpoint payload. Every malformation is a typed error.
pub fn decode(payload: &[u8]) -> Result<Checkpoint, FrameError> {
    let mut c = Cursor::new(payload);
    let lsn = c.take_u64("checkpoint lsn")?;
    let leader_epoch = c.take_u64("leader epoch")?;
    let graph_count = c.take_count(1, "graph count")?;
    let mut graphs = Vec::with_capacity(graph_count);
    for _ in 0..graph_count {
        let name = c.take_str(MAX_NAME_LEN, "graph name")?;
        let shards = c.take_u32("shards")?;
        let epoch = c.take_u64("epoch")?;
        let updates_applied = c.take_u64("updates applied")?;
        let n64 = c.take_u64("vertex count")?;
        let k64 = u64::from(c.take_u32("class count")?);
        // Every allocation below must be justified by remaining bytes
        // before it happens — `cells` alone is not enough (n×0 or 0×k is
        // zero cells, yet the labels/counts/adjacency loops still scale
        // with n and k), and an unguarded with_capacity on a corrupt
        // count would panic instead of returning a typed error.
        let remaining = c.remaining() as u64;
        if n64.saturating_mul(k64).saturating_mul(8) > remaining
            || n64.saturating_mul(8) > remaining // labels (4) + adjacency degrees (4)
            || k64.saturating_mul(8) > remaining
        {
            return Err(FrameError::malformed(format!(
                "{n64}×{k64} state overruns payload"
            )));
        }
        let (n, k) = (n64 as usize, k64 as usize);
        let cells = n64 * k64;
        let mut zhat = Vec::with_capacity(cells as usize);
        for _ in 0..cells {
            zhat.push(c.take_f64("zhat cell")?);
        }
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            labels.push(c.take_i32("label")?);
        }
        let mut class_counts = Vec::with_capacity(k);
        for _ in 0..k {
            class_counts.push(c.take_u64("class count")?);
        }
        let mut adjacency = Vec::with_capacity(n);
        for _ in 0..n {
            let deg = c.take_count(12, "degree")?;
            let mut list = Vec::with_capacity(deg);
            for _ in 0..deg {
                let v = c.take_u32("neighbor")?;
                let w = c.take_f64("weight")?;
                list.push((v, w));
            }
            adjacency.push(list);
        }
        graphs.push(GraphCheckpoint {
            name,
            shards,
            epoch,
            updates_applied,
            state: DynamicGeeState {
                num_vertices: n,
                num_classes: k,
                zhat,
                labels,
                class_counts,
                adjacency,
            },
        });
    }
    c.finish("checkpoint")?;
    Ok(Checkpoint {
        lsn,
        leader_epoch,
        graphs,
    })
}

/// Write a checkpoint durably: temp file → fsync → atomic rename → fsync
/// of the directory. Returns the final path.
pub fn save(dir: &Path, ckpt: &Checkpoint) -> Result<PathBuf, ServeError> {
    let payload = encode(ckpt);
    if payload.len() > MAX_CHECKPOINT_LEN {
        return Err(ServeError::storage(format!(
            "checkpoint is {} bytes (max {MAX_CHECKPOINT_LEN}); state this large \
             cannot be checkpointed",
            payload.len()
        )));
    }
    let final_path = dir.join(file_name(ckpt.lsn));
    let tmp_path = dir.join(format!("{}.tmp", file_name(ckpt.lsn)));
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)
        .map_err(|e| ServeError::storage(format!("creating {}: {e}", tmp_path.display())))?;
    let io_err =
        |e: std::io::Error| ServeError::storage(format!("writing {}: {e}", tmp_path.display()));
    file.write_all(MAGIC).map_err(io_err)?;
    file.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
    frame::write_frame(&mut file, &payload).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path).map_err(|e| {
        ServeError::storage(format!(
            "renaming {} → {}: {e}",
            tmp_path.display(),
            final_path.display()
        ))
    })?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Load one checkpoint file, verifying magic, version, CRC, and shape.
pub fn load(path: &Path) -> Result<Checkpoint, ServeError> {
    let corrupt = |detail: String| ServeError::Corrupt {
        path: path.display().to_string(),
        detail,
    };
    let mut file = File::open(path)
        .map_err(|e| ServeError::storage(format!("opening {}: {e}", path.display())))?;
    let mut head = [0u8; 12];
    file.read_exact(&mut head).map_err(|e| {
        // A short file is damage (rename makes partial writes
        // unreachable); any other I/O failure is transient storage
        // trouble, not evidence of corruption.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            corrupt(format!("header unreadable: {e}"))
        } else {
            ServeError::storage(format!("reading {}: {e}", path.display()))
        }
    })?;
    if &head[..8] != MAGIC {
        return Err(corrupt("bad magic; not a GEECKPT1 file".into()));
    }
    let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported checkpoint version {version} (this build speaks {VERSION})"
        )));
    }
    let payload = frame::read_frame(&mut file, MAX_CHECKPOINT_LEN).map_err(|e| match e {
        FrameError::Io(e) => ServeError::storage(format!("reading {}: {e}", path.display())),
        e => corrupt(format!("body: {e}")),
    })?;
    decode(&payload).map_err(|e| corrupt(format!("body: {e}")))
}

/// Load the newest checkpoint under `dir`, or `None` if there is none.
pub fn load_latest(dir: &Path) -> Result<Option<(Checkpoint, PathBuf)>, ServeError> {
    match checkpoint_paths(dir)?.pop() {
        Some((_, path)) => Ok(Some((load(&path)?, path))),
        None => Ok(None),
    }
}

/// Delete orphaned `*.ckpt.tmp` files — the leftovers of a crash between
/// a checkpoint's temp write and its atomic rename. Nothing ever reads
/// one (`checkpoint_paths` ignores the suffix), so without this sweep
/// each such crash would leak a state-sized file forever. Called by
/// recovery before anything else touches the directory.
pub fn sweep_orphaned_temps(dir: &Path) -> Result<(), ServeError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ServeError::storage(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| ServeError::storage(format!("reading {}: {e}", dir.display())))?;
        if entry.file_name().to_string_lossy().ends_with(".ckpt.tmp") {
            let path = entry.path();
            std::fs::remove_file(&path)
                .map_err(|e| ServeError::storage(format!("sweeping {}: {e}", path.display())))?;
        }
    }
    Ok(())
}

/// Delete checkpoints older than `keep_lsn` (called after a newer one is
/// durably in place).
pub fn retire_older_than(dir: &Path, keep_lsn: u64) -> Result<(), ServeError> {
    for (lsn, path) in checkpoint_paths(dir)? {
        if lsn < keep_lsn {
            std::fs::remove_file(&path)
                .map_err(|e| ServeError::storage(format!("retiring {}: {e}", path.display())))?;
        }
    }
    sync_dir(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_core::{DynamicGee, Labels};
    use gee_graph::EdgeList;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gee_ckpt_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Checkpoint {
        let el = gee_gen::erdos_renyi_gnm(40, 160, 5);
        let labels = Labels::from_options_with_k(
            &(0..40)
                .map(|v| (v % 3 == 0).then_some(v as u32 % 4))
                .collect::<Vec<_>>(),
            4,
        );
        let mut dg = DynamicGee::new(&el, &labels);
        dg.insert_edge(0, 1, 2.5);
        dg.set_label(2, Some(1));
        Checkpoint {
            lsn: 17,
            leader_epoch: 3,
            graphs: vec![
                GraphCheckpoint {
                    name: "main".into(),
                    shards: 4,
                    epoch: 9,
                    updates_applied: 123,
                    state: dg.export_state(),
                },
                GraphCheckpoint {
                    name: "empty".into(),
                    shards: 1,
                    epoch: 0,
                    updates_applied: 0,
                    state: DynamicGee::new(
                        &EdgeList::new_unchecked(0, vec![]),
                        &Labels::from_options_with_k(&[], 1),
                    )
                    .export_state(),
                },
            ],
        }
    }

    #[test]
    fn payload_round_trips() {
        let ckpt = sample();
        assert_eq!(decode(&encode(&ckpt)).unwrap(), ckpt);
    }

    #[test]
    fn save_load_latest_and_retire() {
        let dir = tmp_dir("saveload");
        let mut old = sample();
        old.lsn = 3;
        save(&dir, &old).unwrap();
        let ckpt = sample();
        save(&dir, &ckpt).unwrap();
        let (latest, path) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(latest, ckpt);
        assert_eq!(path, dir.join(file_name(17)));
        retire_older_than(&dir, 17).unwrap();
        assert_eq!(checkpoint_paths(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = tmp_dir("none");
        assert!(load_latest(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn huge_counts_with_zero_cells_are_typed_errors_not_panics() {
        // n×0 or 0×k makes `cells` zero, but labels/counts/adjacency
        // still scale with n and k — a crafted payload must not reach
        // with_capacity. (Regression: capacity-overflow panic.)
        for (n, k) in [(u64::MAX, 0u32), (0, u32::MAX), (u64::MAX / 8, 1)] {
            let mut payload = Vec::new();
            frame::put_u64(&mut payload, 1); // lsn
            frame::put_u64(&mut payload, 0); // leader epoch
            frame::put_u32(&mut payload, 1); // one graph
            frame::put_str(&mut payload, "g");
            frame::put_u32(&mut payload, 4); // shards
            frame::put_u64(&mut payload, 0); // epoch
            frame::put_u64(&mut payload, 0); // updates_applied
            frame::put_u64(&mut payload, n);
            frame::put_u32(&mut payload, k);
            let err = decode(&payload).unwrap_err();
            assert!(
                matches!(err, FrameError::Malformed { .. }),
                "n={n} k={k}: {err}"
            );
        }
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let dir = tmp_dir("corrupt");
        let ckpt = sample();
        let path = save(&dir, &ckpt).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip one byte at a time across header, frame header, and body.
        for i in [0usize, 9, 13, 20, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            let err = load(&path).unwrap_err();
            assert!(
                matches!(err, ServeError::Corrupt { .. }),
                "flip at {i}: {err}"
            );
        }
        // Truncations corrupt a checkpoint too (rename makes partial
        // files unreachable, so a short file is damage, not a torn write).
        for cut in [5usize, 12, 30, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            let err = load(&path).unwrap_err();
            assert!(
                matches!(err, ServeError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
        std::fs::write(&path, &good).unwrap();
        assert_eq!(load(&path).unwrap(), ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }
}
