//! Write-ahead log: the append-only, checksummed record of every durable
//! mutation a [`Registry`](crate::Registry) accepts.
//!
//! # On-disk format
//!
//! A WAL lives in a data directory as one or more *segment* files named
//! `wal-{start_lsn:016x}.log`, where the LSN (log sequence number) of a
//! record is its zero-based position in the whole log and a segment's
//! file name carries the LSN of its first record. Segments tile the LSN
//! space contiguously; a new segment is started (and fully-covered old
//! segments are retired) each time a checkpoint is taken.
//!
//! ```text
//! segment  = magic (8 bytes, b"GEEWAL1\0")
//!            version (u32 LE, = 1)
//!            record*
//! record   = len (u32 LE)  crc32 (u32 LE, IEEE, over payload)  payload
//! payload  = tag (u8) + tag-specific fields, little-endian:
//!   tag 1  Register    name, shards u32, n u64, K u32, n × label i32,
//!                      edge count u64, edges as (u u32, v u32, w f64-bits)
//!   tag 2  Batch       name, update count u32, updates:
//!                        1 InsertEdge  u u32, v u32, w f64-bits
//!                        2 RemoveEdge  u u32, v u32, w f64-bits
//!                        3 SetLabel    v u32, has u8, label u32 (if has)
//!   tag 3  Deregister  name
//! name     = u32 LE byte length + UTF-8 bytes
//! ```
//!
//! Register records carry the *entire* epoch-0 input (edge list in
//! original order plus labels), so a log whose segments reach back to
//! LSN 0 is self-contained: replaying it from scratch reproduces the
//! exact floating-point accumulation order of the original process and
//! therefore a bit-identical engine. Checkpoints
//! ([`crate::checkpoint`]) only shortcut the replay.
//!
//! # Commit and recovery semantics
//!
//! A record is **committed** once its bytes are on disk
//! ([`SyncPolicy::Always`] fsyncs every append before the in-memory state
//! mutates; [`SyncPolicy::Never`] leaves flushing to the OS and trades
//! the tail of the log for throughput; [`SyncPolicy::Group`] batches
//! concurrent writers behind one shared fsync per commit window — the
//! same power-loss guarantee as `Always` at a fraction of the syncs).
//! On open, the log is scanned front to back:
//!
//! * a record that ends *exactly* at end-of-file closes a valid log;
//! * a final record cut short by a crash (header or payload incomplete —
//!   a *torn tail*) is truncated away, in the last segment only;
//! * a complete record whose CRC mismatches, a torn tail in an interior
//!   segment, an undecodable payload, or segments that do not tile the
//!   LSN space (duplicated/overlapping/missing files) are **corruption**
//!   and surface as [`ServeError::Corrupt`] — never a panic.
//!
//! Fault injection for the crash-recovery harness is first-class:
//! [`WalWriter::inject_fault`] makes the next append stop after a chosen
//! byte count, flush, and fail — exactly what a process kill mid-append
//! leaves on disk.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use gee_graph::io::frame::{self, Cursor, FrameError};

use crate::registry::Update;
use crate::ServeError;

/// Segment-file magic.
pub const MAGIC: &[u8; 8] = b"GEEWAL1\0";

/// WAL format version.
pub const VERSION: u32 = 1;

/// Segment header length: magic + version.
pub const HEADER_LEN: u64 = 12;

/// Upper bound on one record's payload (a Register of a ~10M-edge graph
/// fits; a corrupt length prefix cannot demand more).
pub const MAX_RECORD_LEN: usize = 1 << 30;

/// Cap on graph-name length inside WAL records and checkpoints. One
/// shared constant: [`WalWriter::append`] enforces it at write time
/// precisely so anything committed can always decode — a drift between
/// write-side and read-side caps (or between the WAL and checkpoint
/// decoders) would make committed state unrecoverable.
pub const MAX_NAME_LEN: usize = 1 << 16;

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync every append before acknowledging — a committed batch
    /// survives power loss.
    Always,
    /// Let the OS flush when it pleases — committed batches survive a
    /// process crash but the log tail may be lost on power failure.
    Never,
    /// Group commit: appends are acknowledged only after an fsync covers
    /// them, but concurrent writers share fsyncs — one leader waits up
    /// to `window`, collecting arrivals, then issues a single
    /// `sync_data` covering every record appended so far and wakes all
    /// waiters. Same power-loss guarantee as [`SyncPolicy::Always`]
    /// (`Ok` still means durable); the difference is that readers may
    /// observe a batch's effects during the window before its fsync
    /// lands (visibility before durability), and durable throughput
    /// scales with writer count instead of disk sync latency. The
    /// waiting machinery lives in the registry
    /// ([`Registry`](crate::Registry) owns the leader election); the
    /// [`WalWriter`] itself treats `Group` like [`SyncPolicy::Never`]
    /// on append and exposes [`WalWriter::sync`] for the leader.
    Group {
        /// How long a leader collects arrivals before syncing. `0` still
        /// coalesces: writers arriving while an fsync is in flight share
        /// the next one.
        window: std::time::Duration,
    },
}

impl SyncPolicy {
    /// Group commit with the default 1 ms window — long enough to
    /// coalesce a burst of concurrent writers, short enough to be
    /// invisible next to a disk sync.
    pub fn group() -> SyncPolicy {
        SyncPolicy::Group {
            window: std::time::Duration::from_millis(1),
        }
    }
}

/// Whether (and how) a [`Registry`](crate::Registry) persists its state.
#[derive(Debug, Clone)]
pub enum Durability {
    /// In-memory only (the pre-durability behavior).
    None,
    /// Write-ahead log + periodic checkpoints under `dir`.
    Wal {
        /// Data directory holding `wal-*.log` segments and `ckpt-*.ckpt`
        /// snapshots. Created if missing.
        dir: PathBuf,
        /// fsync policy for WAL appends.
        sync: SyncPolicy,
        /// Take a checkpoint (and retire fully-covered WAL segments)
        /// after this many committed records — update batches,
        /// registrations, and deregistrations all count, so a
        /// register-heavy log still compacts. `0` disables automatic
        /// checkpoints; [`Registry::checkpoint_now`]
        /// (`crate::Registry::checkpoint_now`) still works.
        checkpoint_every: u64,
    },
}

impl Durability {
    /// WAL durability with the safe defaults: fsync on every commit,
    /// checkpoint every 64 batches.
    pub fn wal(dir: impl Into<PathBuf>) -> Durability {
        Durability::Wal {
            dir: dir.into(),
            sync: SyncPolicy::Always,
            checkpoint_every: 64,
        }
    }
}

/// One durable mutation. The WAL is an ordered sequence of these.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A graph (re-)registration: the complete epoch-0 input, edge order
    /// preserved so replay reproduces the original accumulation order.
    Register {
        name: String,
        shards: u32,
        num_vertices: u64,
        num_classes: u32,
        /// Raw label per vertex (`-1` = unlabeled), length `num_vertices`.
        labels: Vec<i32>,
        /// `(u, v, w)` in original submission order.
        edges: Vec<(u32, u32, f64)>,
    },
    /// One committed update batch (publishes the graph's next epoch).
    Batch { name: String, updates: Vec<Update> },
    /// Removal of a graph and its durable lineage.
    Deregister { name: String },
}

impl WalRecord {
    /// The graph this record concerns.
    pub fn graph(&self) -> &str {
        match self {
            WalRecord::Register { name, .. }
            | WalRecord::Batch { name, .. }
            | WalRecord::Deregister { name } => name,
        }
    }
}

const TAG_REGISTER: u8 = 1;
const TAG_BATCH: u8 = 2;
const TAG_DEREGISTER: u8 = 3;

const UPDATE_INSERT: u8 = 1;
const UPDATE_REMOVE: u8 = 2;
const UPDATE_SET_LABEL: u8 = 3;

/// Encode a record payload (framing — length prefix and CRC — is added
/// by the writer).
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    match record {
        WalRecord::Register {
            name,
            shards,
            num_vertices,
            num_classes,
            labels,
            edges,
        } => {
            frame::put_u8(&mut buf, TAG_REGISTER);
            frame::put_str(&mut buf, name);
            frame::put_u32(&mut buf, *shards);
            frame::put_u64(&mut buf, *num_vertices);
            frame::put_u32(&mut buf, *num_classes);
            for &y in labels {
                frame::put_i32(&mut buf, y);
            }
            frame::put_u64(&mut buf, edges.len() as u64);
            for &(u, v, w) in edges {
                frame::put_u32(&mut buf, u);
                frame::put_u32(&mut buf, v);
                frame::put_f64(&mut buf, w);
            }
        }
        WalRecord::Batch { name, updates } => {
            frame::put_u8(&mut buf, TAG_BATCH);
            frame::put_str(&mut buf, name);
            frame::put_u32(&mut buf, updates.len() as u32);
            for u in updates {
                encode_update(&mut buf, u);
            }
        }
        WalRecord::Deregister { name } => {
            frame::put_u8(&mut buf, TAG_DEREGISTER);
            frame::put_str(&mut buf, name);
        }
    }
    buf
}

/// Encode one [`Update`] in the tagged binary layout. Shared with the
/// protocol-v6 binary wire codec so an update has exactly one binary
/// encoding in the system.
pub(crate) fn encode_update(buf: &mut Vec<u8>, update: &Update) {
    match *update {
        Update::InsertEdge { u, v, w } => {
            frame::put_u8(buf, UPDATE_INSERT);
            frame::put_u32(buf, u);
            frame::put_u32(buf, v);
            frame::put_f64(buf, w);
        }
        Update::RemoveEdge { u, v, w } => {
            frame::put_u8(buf, UPDATE_REMOVE);
            frame::put_u32(buf, u);
            frame::put_u32(buf, v);
            frame::put_f64(buf, w);
        }
        Update::SetLabel { v, label } => {
            frame::put_u8(buf, UPDATE_SET_LABEL);
            frame::put_u32(buf, v);
            frame::put_u8(buf, u8::from(label.is_some()));
            frame::put_u32(buf, label.unwrap_or(0));
        }
    }
}

/// Decode a record payload. Every malformation is a typed error.
pub fn decode_record(payload: &[u8]) -> Result<WalRecord, FrameError> {
    let mut c = Cursor::new(payload);
    let record = match c.take_u8("record tag")? {
        TAG_REGISTER => {
            let name = c.take_str(MAX_NAME_LEN, "graph name")?;
            let shards = c.take_u32("shards")?;
            let num_vertices = c.take_u64("vertex count")?;
            if num_vertices.saturating_mul(4) > c.remaining() as u64 {
                return Err(FrameError::malformed(format!(
                    "vertex count {num_vertices} overruns payload"
                )));
            }
            let num_classes = c.take_u32("class count")?;
            let mut labels = Vec::with_capacity(num_vertices as usize);
            for _ in 0..num_vertices {
                labels.push(c.take_i32("label")?);
            }
            let num_edges = c.take_u64("edge count")?;
            if num_edges.saturating_mul(16) > c.remaining() as u64 {
                return Err(FrameError::malformed(format!(
                    "edge count {num_edges} overruns payload"
                )));
            }
            let mut edges = Vec::with_capacity(num_edges as usize);
            for _ in 0..num_edges {
                let u = c.take_u32("edge u")?;
                let v = c.take_u32("edge v")?;
                let w = c.take_f64("edge w")?;
                edges.push((u, v, w));
            }
            WalRecord::Register {
                name,
                shards,
                num_vertices,
                num_classes,
                labels,
                edges,
            }
        }
        TAG_BATCH => {
            let name = c.take_str(MAX_NAME_LEN, "graph name")?;
            let count = c.take_count(6, "update count")?;
            let mut updates = Vec::with_capacity(count);
            for _ in 0..count {
                updates.push(decode_update(&mut c)?);
            }
            WalRecord::Batch { name, updates }
        }
        TAG_DEREGISTER => WalRecord::Deregister {
            name: c.take_str(MAX_NAME_LEN, "graph name")?,
        },
        other => {
            return Err(FrameError::malformed(format!("unknown record tag {other}")));
        }
    };
    c.finish("wal record")?;
    Ok(record)
}

/// Decode one [`Update`] (the inverse of [`encode_update`]).
pub(crate) fn decode_update(c: &mut Cursor<'_>) -> Result<Update, FrameError> {
    Ok(match c.take_u8("update tag")? {
        UPDATE_INSERT => Update::InsertEdge {
            u: c.take_u32("u")?,
            v: c.take_u32("v")?,
            w: c.take_f64("w")?,
        },
        UPDATE_REMOVE => Update::RemoveEdge {
            u: c.take_u32("u")?,
            v: c.take_u32("v")?,
            w: c.take_f64("w")?,
        },
        UPDATE_SET_LABEL => {
            let v = c.take_u32("v")?;
            let has = c.take_u8("label presence")?;
            let label = c.take_u32("label")?;
            match has {
                0 => Update::SetLabel { v, label: None },
                1 => Update::SetLabel {
                    v,
                    label: Some(label),
                },
                other => {
                    return Err(FrameError::malformed(format!(
                        "label presence byte {other}"
                    )));
                }
            }
        }
        other => {
            return Err(FrameError::malformed(format!("unknown update tag {other}")));
        }
    })
}

/// File name of the segment whose first record has `start_lsn`.
pub fn segment_file_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:016x}.log")
}

/// Parse a segment file name back to its start LSN.
fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    (hex.len() == 16).then(|| u64::from_str_radix(hex, 16).ok())?
}

/// Sorted `(start_lsn, path)` list of the directory's WAL segments.
pub fn segment_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>, ServeError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ServeError::storage(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| ServeError::storage(format!("reading {}: {e}", dir.display())))?;
        let name = entry.file_name();
        if let Some(lsn) = parse_segment_name(&name.to_string_lossy()) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_by_key(|&(lsn, _)| lsn);
    Ok(out)
}

/// Name of the leader-epoch file inside a data directory: 8 bytes of
/// magic plus the epoch as a u64 LE. The epoch is the replication
/// fencing token (see [`crate::replicate`]): a follower durably records
/// the highest epoch it has replicated under before applying anything
/// from that leader, and promotion bumps it, so a deposed leader can
/// never be mistaken for a live one after a restart. The same value
/// also rides in every checkpoint (format v2), so either survives the
/// loss of the other.
pub const LEADER_EPOCH_FILE: &str = "leader-epoch";

/// Leader-epoch file magic.
pub const LEADER_EPOCH_MAGIC: &[u8; 8] = b"GEELEPO1";

/// Durably persist the leader epoch: temp file → fsync → atomic rename
/// → directory fsync, the same discipline checkpoints use.
pub fn save_leader_epoch(dir: &Path, epoch: u64) -> Result<(), ServeError> {
    let final_path = dir.join(LEADER_EPOCH_FILE);
    let tmp_path = dir.join(format!("{LEADER_EPOCH_FILE}.tmp"));
    let io_err =
        |e: std::io::Error| ServeError::storage(format!("writing {}: {e}", tmp_path.display()));
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)
        .map_err(io_err)?;
    file.write_all(LEADER_EPOCH_MAGIC).map_err(io_err)?;
    file.write_all(&epoch.to_le_bytes()).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path).map_err(|e| {
        ServeError::storage(format!(
            "renaming {} → {}: {e}",
            tmp_path.display(),
            final_path.display()
        ))
    })?;
    sync_dir(dir)
}

/// Read the stored leader epoch; `0` when the file does not exist (a
/// data dir that predates fencing, or was never promoted/replicated). A
/// file that exists but fails magic or length checks is damage and
/// surfaces as [`ServeError::Corrupt`] — never silently epoch 0, which
/// would let a deposed leader back in.
pub fn load_leader_epoch(dir: &Path) -> Result<u64, ServeError> {
    let path = dir.join(LEADER_EPOCH_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => {
            return Err(ServeError::storage(format!(
                "reading {}: {e}",
                path.display()
            )))
        }
    };
    let corrupt = |detail: String| ServeError::Corrupt {
        path: path.display().to_string(),
        detail,
    };
    if bytes.len() != 16 {
        return Err(corrupt(format!(
            "leader-epoch file is {} bytes, expected 16",
            bytes.len()
        )));
    }
    if &bytes[..8] != LEADER_EPOCH_MAGIC {
        return Err(corrupt("bad magic; not a GEELEPO1 file".into()));
    }
    Ok(u64::from_le_bytes(
        bytes[8..16].try_into().expect("8 bytes"),
    ))
}

/// Everything recovery learned from scanning the log directory.
#[derive(Debug)]
pub struct LogScan {
    /// All readable records as `(lsn, record)`, ascending.
    pub records: Vec<(u64, WalRecord)>,
    /// The LSN the next append will get.
    pub next_lsn: u64,
    /// Start LSN of the segment appends continue into (`None` → the
    /// directory has no segments yet).
    pub last_segment_start: Option<u64>,
    /// Torn-tail bytes truncated from the last segment, if any.
    pub truncated_bytes: u64,
}

/// Scan every segment under `dir` front to back, validating tiling and
/// checksums, truncating a torn tail of the final segment. `min_lsn` is
/// the oldest LSN the caller needs (the latest checkpoint's coverage):
/// the first segment may start at or before it; records below it are
/// still returned (callers skip them cheaply) so tiling validation covers
/// the whole directory.
pub fn scan(dir: &Path, min_lsn: u64) -> Result<LogScan, ServeError> {
    let segments = segment_paths(dir)?;
    let mut records = Vec::new();
    let mut truncated_bytes = 0u64;
    let Some(&(first_lsn, _)) = segments.first() else {
        if min_lsn > 0 {
            return Err(ServeError::Corrupt {
                path: dir.display().to_string(),
                detail: format!("no WAL segments, but history before lsn {min_lsn} is needed"),
            });
        }
        return Ok(LogScan {
            records,
            next_lsn: 0,
            last_segment_start: None,
            truncated_bytes: 0,
        });
    };
    if first_lsn > min_lsn {
        return Err(ServeError::Corrupt {
            path: dir.display().to_string(),
            detail: format!(
                "oldest segment starts at lsn {first_lsn}, but history from lsn {min_lsn} is needed \
                 (segments retired without a covering checkpoint?)"
            ),
        });
    }
    let mut expected_start = first_lsn;
    for (i, (start_lsn, path)) in segments.iter().enumerate() {
        let corrupt = |detail: String| ServeError::Corrupt {
            path: path.display().to_string(),
            detail,
        };
        if *start_lsn != expected_start {
            return Err(corrupt(format!(
                "segment starts at lsn {start_lsn}, expected {expected_start} \
                 (duplicate, overlapping, or missing segment)"
            )));
        }
        let is_last = i == segments.len() - 1;
        let mut file = File::open(path)
            .map_err(|e| ServeError::storage(format!("opening {}: {e}", path.display())))?;
        let mut lsn = *start_lsn;
        match read_header(&mut file) {
            Ok(()) => {}
            Err(FrameError::TornTail { .. }) | Err(FrameError::Eof) if is_last => {
                // Crash while creating the segment: no record in it can
                // exist; rewrite the header and continue appending here.
                drop(file);
                truncated_bytes += header_shortfall(path)?;
                rewrite_header(path)?;
                return Ok(LogScan {
                    records,
                    next_lsn: lsn,
                    last_segment_start: Some(lsn),
                    truncated_bytes,
                });
            }
            // A transient read failure is not evidence of damage.
            Err(FrameError::Io(e)) => {
                return Err(ServeError::storage(format!(
                    "reading {}: {e}",
                    path.display()
                )));
            }
            Err(e) => return Err(corrupt(format!("bad segment header: {e}"))),
        }
        let mut offset = HEADER_LEN;
        loop {
            match frame::read_frame(&mut file, MAX_RECORD_LEN) {
                Ok(payload) => {
                    let record = decode_record(&payload)
                        .map_err(|e| corrupt(format!("record at lsn {lsn}: {e}")))?;
                    offset += 8 + payload.len() as u64;
                    records.push((lsn, record));
                    lsn += 1;
                }
                Err(FrameError::Eof) => break,
                Err(FrameError::TornTail { .. }) if is_last => {
                    // A record the crash cut short: it was never
                    // acknowledged, so drop it.
                    drop(file);
                    truncated_bytes += truncate_file(path, offset)?;
                    break;
                }
                Err(FrameError::Io(e)) => {
                    return Err(ServeError::storage(format!(
                        "reading {}: {e}",
                        path.display()
                    )));
                }
                Err(e) => {
                    return Err(corrupt(format!("record at lsn {lsn}: {e}")));
                }
            }
        }
        expected_start = lsn;
    }
    let last = segments.last().expect("nonempty").0;
    Ok(LogScan {
        records,
        next_lsn: expected_start,
        last_segment_start: Some(last),
        truncated_bytes,
    })
}

fn read_header<R: Read>(r: &mut R) -> Result<(), FrameError> {
    let mut head = [0u8; HEADER_LEN as usize];
    let filled = frame::read_up_to(r, &mut head)?;
    if filled < head.len() {
        return Err(if filled == 0 {
            FrameError::Eof
        } else {
            FrameError::TornTail {
                expected: head.len(),
                got: filled,
            }
        });
    }
    if &head[..8] != MAGIC {
        return Err(FrameError::malformed("bad magic; not a GEEWAL1 segment"));
    }
    let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(FrameError::malformed(format!(
            "unsupported WAL version {version} (this build speaks {VERSION})"
        )));
    }
    Ok(())
}

fn header_shortfall(path: &Path) -> Result<u64, ServeError> {
    let len = std::fs::metadata(path)
        .map_err(|e| ServeError::storage(format!("stat {}: {e}", path.display())))?
        .len();
    Ok(HEADER_LEN.saturating_sub(len))
}

/// Truncate `path` to `keep` bytes; returns how many bytes were dropped.
fn truncate_file(path: &Path, keep: u64) -> Result<u64, ServeError> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| ServeError::storage(format!("opening {}: {e}", path.display())))?;
    let len = file
        .metadata()
        .map_err(|e| ServeError::storage(format!("stat {}: {e}", path.display())))?
        .len();
    file.set_len(keep)
        .map_err(|e| ServeError::storage(format!("truncating {}: {e}", path.display())))?;
    file.sync_all()
        .map_err(|e| ServeError::storage(format!("syncing {}: {e}", path.display())))?;
    Ok(len.saturating_sub(keep))
}

fn rewrite_header(path: &Path) -> Result<(), ServeError> {
    let mut file = OpenOptions::new()
        .write(true)
        .truncate(true)
        .open(path)
        .map_err(|e| ServeError::storage(format!("opening {}: {e}", path.display())))?;
    write_header(&mut file, path)?;
    file.sync_all()
        .map_err(|e| ServeError::storage(format!("syncing {}: {e}", path.display())))?;
    Ok(())
}

fn write_header(file: &mut File, path: &Path) -> Result<(), ServeError> {
    file.write_all(MAGIC)
        .and_then(|()| file.write_all(&VERSION.to_le_bytes()))
        .map_err(|e| ServeError::storage(format!("writing header of {}: {e}", path.display())))
}

/// fsync the directory so file creations/renames inside it are durable.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), ServeError> {
    #[cfg(unix)]
    {
        File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| ServeError::storage(format!("syncing dir {}: {e}", dir.display())))?;
    }
    Ok(())
}

/// Name of the data-directory lock file.
pub const LOCK_FILE: &str = "LOCK";

/// Single-writer guard on a data directory. Two processes appending to
/// the same WAL would interleave frames at arbitrary byte boundaries and
/// destroy the log, so opening a durable registry takes this lock and
/// holds it until drop.
///
/// The lock is a file holding the owner's PID. A crashed owner leaves
/// the file behind, but its PID is dead, so the next open reclaims the
/// lock — crash recovery never needs manual cleanup. (Liveness is
/// checked via `/proc`; on non-Linux targets a leftover lock is assumed
/// stale. PID reuse can in principle defeat the check — this is a
/// best-effort guard against operational accidents, not Byzantine
/// peers.)
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Take the lock, reclaiming it from a dead owner; a live owner is a
    /// typed [`ServeError::Storage`].
    pub fn acquire(dir: &Path) -> Result<DirLock, ServeError> {
        let path = dir.join(LOCK_FILE);
        // Two attempts: the initial create, and one retry after
        // reclaiming a stale lock.
        for _ in 0..2 {
            match OpenOptions::new().create_new(true).write(true).open(&path) {
                Ok(mut file) => {
                    file.write_all(std::process::id().to_string().as_bytes())
                        .and_then(|()| file.sync_all())
                        .map_err(|e| {
                            ServeError::storage(format!("writing {}: {e}", path.display()))
                        })?;
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let content = std::fs::read_to_string(&path).unwrap_or_default();
                    match content.trim().parse::<u32>() {
                        Ok(pid) if pid_alive(pid) => {
                            return Err(ServeError::storage(format!(
                                "data dir {} is locked by running process {pid}; \
                                 only one process may serve it at a time",
                                dir.display()
                            )));
                        }
                        Ok(_) => {
                            // Dead owner: reclaim by atomic rename —
                            // remove_file here could race with a
                            // concurrent opener and delete *its* fresh
                            // lock; a rename succeeds for exactly one
                            // reclaimer.
                            let graveyard =
                                dir.join(format!("{LOCK_FILE}.stale.{}", std::process::id()));
                            if std::fs::rename(&path, &graveyard).is_ok() {
                                std::fs::remove_file(&graveyard).ok();
                            }
                        }
                        Err(_) => {
                            // Unreadable content: possibly a concurrent
                            // opener between its create and its PID
                            // write. Failing is the safe call; reclaiming
                            // could steal a live lock.
                            return Err(ServeError::storage(format!(
                                "data dir {} has an unreadable lock file; if no process \
                                 is serving it, delete {}",
                                dir.display(),
                                path.display()
                            )));
                        }
                    }
                }
                Err(e) => {
                    return Err(ServeError::storage(format!(
                        "locking data dir {}: {e}",
                        dir.display()
                    )));
                }
            }
        }
        Err(ServeError::storage(format!(
            "data dir {} is locked and another process is racing to reclaim it",
            dir.display()
        )))
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

fn pid_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        false
    }
}

/// A crash-point the test harness can arm on a [`WalWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// The next append writes only the first `keep_bytes` bytes of its
    /// encoded record frame, flushes them, and fails — the on-disk
    /// outcome of a process killed mid-append. The writer is poisoned
    /// afterwards: every further append fails, as it would after a real
    /// crash.
    TornAppend { keep_bytes: usize },
}

/// The append half of the log: owns the open tail segment.
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    segment_start: u64,
    next_lsn: u64,
    sync: SyncPolicy,
    fault: Option<FaultPoint>,
    poisoned: bool,
    /// Data fsyncs issued by appends over this writer's lifetime
    /// (rotation keeps the count; see [`WalWriter::fsyncs`]).
    fsyncs: u64,
}

impl WalWriter {
    /// Open the writer at the position a [`scan`] reported: append into
    /// the existing tail segment, or create the first segment.
    pub fn open(dir: &Path, sync: SyncPolicy, scan: &LogScan) -> Result<WalWriter, ServeError> {
        match scan.last_segment_start {
            Some(start) => {
                let path = dir.join(segment_file_name(start));
                let file = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| ServeError::storage(format!("opening {}: {e}", path.display())))?;
                Ok(WalWriter {
                    dir: dir.to_path_buf(),
                    file,
                    segment_start: start,
                    next_lsn: scan.next_lsn,
                    sync,
                    fault: None,
                    poisoned: false,
                    fsyncs: 0,
                })
            }
            None => Self::create_segment(dir, sync, scan.next_lsn),
        }
    }

    fn create_segment(
        dir: &Path,
        sync: SyncPolicy,
        start_lsn: u64,
    ) -> Result<WalWriter, ServeError> {
        let path = dir.join(segment_file_name(start_lsn));
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| ServeError::storage(format!("creating {}: {e}", path.display())))?;
        write_header(&mut file, &path)?;
        file.sync_all()
            .map_err(|e| ServeError::storage(format!("syncing {}: {e}", path.display())))?;
        sync_dir(dir)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            file,
            segment_start: start_lsn,
            next_lsn: start_lsn,
            sync,
            fault: None,
            poisoned: false,
            fsyncs: 0,
        })
    }

    /// The LSN the next append will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Start LSN of the segment currently being appended to.
    pub fn segment_start(&self) -> u64 {
        self.segment_start
    }

    /// Data fsyncs issued by appends since this writer opened (the
    /// protocol-v4 `wal_fsyncs` metric). Resets with the process, like
    /// every serving counter; segment rotation does not reset it.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Arm a crash point for the crash-recovery harness; the next append
    /// trips it.
    pub fn inject_fault(&mut self, fault: FaultPoint) {
        self.fault = Some(fault);
    }

    /// Append and commit one record; returns its LSN. With
    /// [`SyncPolicy::Always`] the record is fsynced before this returns —
    /// the caller may then mutate in-memory state knowing replay will
    /// reproduce it.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, ServeError> {
        if self.poisoned {
            return Err(ServeError::storage(
                "WAL writer poisoned by an earlier failed append; reopen to recover",
            ));
        }
        // Enforce the read-side caps at write time: a record that commits
        // but cannot be decoded on the next open would make the directory
        // permanently unrecoverable.
        if record.graph().len() > MAX_NAME_LEN {
            return Err(ServeError::storage(format!(
                "graph name is {} bytes (max {MAX_NAME_LEN})",
                record.graph().len()
            )));
        }
        let payload = encode_record(record);
        if payload.len() > MAX_RECORD_LEN {
            return Err(ServeError::storage(format!(
                "record is {} bytes (max {MAX_RECORD_LEN}); a graph this large \
                 cannot be WAL-logged",
                payload.len()
            )));
        }
        let bytes = frame::encode_frame(&payload);
        if let Some(FaultPoint::TornAppend { keep_bytes }) = self.fault.take() {
            self.poisoned = true;
            let keep = keep_bytes.min(bytes.len());
            self.file
                .write_all(&bytes[..keep])
                .and_then(|()| self.file.sync_data())
                .map_err(|e| ServeError::storage(format!("torn append: {e}")))?;
            self.fsyncs += 1;
            return Err(ServeError::storage(format!(
                "injected crash: append stopped after {keep} of {} bytes",
                bytes.len()
            )));
        }
        self.file
            .write_all(&bytes)
            .map_err(|e| ServeError::storage(format!("appending to WAL: {e}")))?;
        // `Group` appends are OS-buffered here like `Never`; the group
        // leader (in the registry) calls [`WalWriter::sync`] once per
        // window before any writer in the window is acknowledged.
        if self.sync == SyncPolicy::Always {
            self.file
                .sync_data()
                .map_err(|e| ServeError::storage(format!("syncing WAL: {e}")))?;
            self.fsyncs += 1;
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// fsync the tail segment, covering every record appended so far.
    /// The group-commit leader calls this once per window; records in
    /// retired segments were already covered by the durable checkpoint
    /// taken at rotation, so after this returns every assigned LSN is
    /// durable.
    pub fn sync(&mut self) -> Result<(), ServeError> {
        self.file
            .sync_data()
            .map_err(|e| ServeError::storage(format!("syncing WAL: {e}")))?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Start a group-commit sync: returns the current high water and a
    /// duplicated tail-segment handle so the leader can run the fsync
    /// itself *after releasing the log lock* — concurrent writers keep
    /// appending (and queueing for the next sync) while the disk works.
    ///
    /// The returned high water is sampled before the handle escapes, so
    /// a successful `sync_data` on it covers every assigned LSN below
    /// it: later appends land after the sample and are not claimed, and
    /// if a rotation retires the segment mid-sync the retired records
    /// were already made durable by the rotation checkpoint (fsyncing
    /// the stale handle is then a harmless no-op). The fsync is counted
    /// here, at issue time, so the [`WalWriter::fsyncs`] gauge does not
    /// need the lock when the sync completes.
    pub fn begin_group_sync(&mut self) -> Result<(u64, File), ServeError> {
        let file = self
            .file
            .try_clone()
            .map_err(|e| ServeError::storage(format!("duping WAL tail for sync: {e}")))?;
        self.fsyncs += 1;
        Ok((self.next_lsn, file))
    }

    /// Discard the entire log and restart it at `start_lsn`, as if the
    /// directory had been cleanly rotated there. Used by a replica
    /// installing a checkpoint bootstrap from its leader: the shipped
    /// checkpoint covers all history before `start_lsn`, superseding
    /// whatever (older) log the replica had.
    ///
    /// Crash ordering: old segments are removed newest-first *before*
    /// the fresh segment is created, so an interruption leaves either a
    /// front-tiling prefix of the old log (recovery repairs it by
    /// resetting again — the covering checkpoint is already durable) or
    /// no segments at all (recovery synthesizes an empty log at the
    /// checkpoint's LSN). See `Registry`'s replica recovery path.
    pub fn reset_to(&mut self, start_lsn: u64) -> Result<(), ServeError> {
        let mut segments = segment_paths(&self.dir)?;
        segments.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
        for (_, path) in segments {
            std::fs::remove_file(&path)
                .map_err(|e| ServeError::storage(format!("removing {}: {e}", path.display())))?;
        }
        sync_dir(&self.dir)?;
        let fresh = Self::create_segment(&self.dir, self.sync, start_lsn)?;
        let fsyncs = self.fsyncs;
        *self = fresh;
        self.fsyncs = fsyncs;
        Ok(())
    }

    /// Roll to a fresh segment starting at the current `next_lsn` (called
    /// right after a checkpoint covering everything before it) and retire
    /// the fully-covered older segments.
    pub fn rotate(&mut self) -> Result<(), ServeError> {
        let fresh = Self::create_segment(&self.dir, self.sync, self.next_lsn)?;
        let old_start = self.segment_start;
        self.file = fresh.file;
        self.segment_start = fresh.segment_start;
        self.poisoned = false;
        for (start, path) in segment_paths(&self.dir)? {
            if start <= old_start && start != self.segment_start {
                std::fs::remove_file(&path).map_err(|e| {
                    ServeError::storage(format!("retiring {}: {e}", path.display()))
                })?;
            }
        }
        sync_dir(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gee_wal_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Register {
                name: "g".into(),
                shards: 4,
                num_vertices: 3,
                num_classes: 2,
                labels: vec![0, -1, 1],
                edges: vec![(0, 1, 1.0), (1, 2, 2.5)],
            },
            WalRecord::Batch {
                name: "g".into(),
                updates: vec![
                    Update::InsertEdge { u: 0, v: 2, w: 1.0 },
                    Update::SetLabel { v: 1, label: None },
                    Update::SetLabel {
                        v: 1,
                        label: Some(1),
                    },
                    Update::RemoveEdge { u: 0, v: 1, w: 1.0 },
                ],
            },
            WalRecord::Batch {
                name: "g".into(),
                updates: vec![],
            },
            WalRecord::Deregister { name: "g".into() },
        ]
    }

    #[test]
    fn leader_epoch_round_trips_and_rejects_damage() {
        let dir = tmp_dir("epoch");
        assert_eq!(load_leader_epoch(&dir).unwrap(), 0);
        save_leader_epoch(&dir, 7).unwrap();
        assert_eq!(load_leader_epoch(&dir).unwrap(), 7);
        save_leader_epoch(&dir, 8).unwrap();
        assert_eq!(load_leader_epoch(&dir).unwrap(), 8);
        let path = dir.join(LEADER_EPOCH_FILE);
        std::fs::write(&path, b"GEELEPO1\x01").unwrap(); // truncated
        assert!(matches!(
            load_leader_epoch(&dir),
            Err(ServeError::Corrupt { .. })
        ));
        std::fs::write(&path, b"NOTMAGIC\x01\0\0\0\0\0\0\0").unwrap();
        assert!(matches!(
            load_leader_epoch(&dir),
            Err(ServeError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn records_round_trip() {
        for r in sample_records() {
            let back = decode_record(&encode_record(&r)).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmp_dir("roundtrip");
        let scan0 = scan(&dir, 0).unwrap();
        assert!(scan0.records.is_empty());
        let mut w = WalWriter::open(&dir, SyncPolicy::Always, &scan0).unwrap();
        for (i, r) in sample_records().iter().enumerate() {
            assert_eq!(w.append(r).unwrap(), i as u64);
        }
        let rescan = scan(&dir, 0).unwrap();
        assert_eq!(rescan.next_lsn, 4);
        assert_eq!(
            rescan.records.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        let back: Vec<WalRecord> = rescan.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(back, sample_records());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_append_continues() {
        let dir = tmp_dir("torn");
        let mut w = WalWriter::open(&dir, SyncPolicy::Always, &scan(&dir, 0).unwrap()).unwrap();
        let records = sample_records();
        w.append(&records[0]).unwrap();
        w.append(&records[1]).unwrap();
        w.inject_fault(FaultPoint::TornAppend { keep_bytes: 5 });
        let err = w.append(&records[2]).unwrap_err();
        assert!(matches!(err, ServeError::Storage { .. }), "{err}");
        // Poisoned: no further appends.
        assert!(w.append(&records[2]).is_err());
        drop(w);
        let rescan = scan(&dir, 0).unwrap();
        assert_eq!(rescan.next_lsn, 2, "torn record dropped");
        assert!(rescan.truncated_bytes > 0);
        // The log is clean again: appends resume at lsn 2.
        let mut w = WalWriter::open(&dir, SyncPolicy::Always, &rescan).unwrap();
        assert_eq!(w.append(&records[2]).unwrap(), 2);
        let rescan = scan(&dir, 0).unwrap();
        assert_eq!(rescan.next_lsn, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_is_corrupt_not_torn() {
        let dir = tmp_dir("flip");
        let mut w = WalWriter::open(&dir, SyncPolicy::Always, &scan(&dir, 0).unwrap()).unwrap();
        for r in &sample_records() {
            w.append(r).unwrap();
        }
        drop(w);
        let path = dir.join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let err = scan(&dir, 0).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_retires_old_segments_and_tiling_is_validated() {
        let dir = tmp_dir("rotate");
        let mut w = WalWriter::open(&dir, SyncPolicy::Always, &scan(&dir, 0).unwrap()).unwrap();
        let records = sample_records();
        w.append(&records[0]).unwrap();
        w.append(&records[1]).unwrap();
        w.rotate().unwrap();
        assert_eq!(w.segment_start(), 2);
        w.append(&records[2]).unwrap();
        drop(w);
        assert_eq!(segment_paths(&dir).unwrap().len(), 1, "old segment retired");
        // History before lsn 2 is gone: a scan needing lsn 0 must fail.
        let err = scan(&dir, 0).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
        // …but a scan that only needs lsn 2 onward succeeds.
        let ok = scan(&dir, 2).unwrap();
        assert_eq!(ok.records.len(), 1);
        assert_eq!(ok.next_lsn, 3);
        // A duplicated segment breaks tiling.
        std::fs::copy(
            dir.join(segment_file_name(2)),
            dir.join(segment_file_name(7)),
        )
        .unwrap();
        let err = scan(&dir, 2).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_names_are_rejected_before_reaching_the_log() {
        // A record that committed but cannot decode would make the
        // directory unrecoverable, so the cap is enforced on append.
        let dir = tmp_dir("bigname");
        let mut w = WalWriter::open(&dir, SyncPolicy::Always, &scan(&dir, 0).unwrap()).unwrap();
        w.append(&sample_records()[0]).unwrap();
        let err = w
            .append(&WalRecord::Deregister {
                name: "x".repeat(MAX_NAME_LEN + 1),
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::Storage { .. }), "{err}");
        drop(w);
        // Nothing of the rejected record reached the log.
        let rescan = scan(&dir, 0).unwrap();
        assert_eq!(rescan.next_lsn, 1);
        assert_eq!(rescan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_payload_decodes_to_typed_error() {
        for bad in [
            &b""[..],
            b"\x09",
            b"\x01\xff\xff\xff\xff",
            b"\x02\x00\x00\x00\x00\xff\xff\xff\xff",
            b"\x03\x02\x00\x00\x00\xff\xfe",
        ] {
            assert!(decode_record(bad).is_err());
        }
        // Trailing bytes after a valid record are corruption too.
        let mut bytes = encode_record(&WalRecord::Deregister { name: "g".into() });
        bytes.push(0);
        assert!(decode_record(&bytes).is_err());
    }
}
