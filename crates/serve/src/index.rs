//! Per-shard approximate-nearest-neighbor indexing (IVF) for `Similar`
//! and `Classify`.
//!
//! An [`IvfIndex`] is an inverted-file index over one
//! [`ShardBlock`](crate::ShardBlock)'s embedding rows: a k-means **coarse
//! quantizer** (`nlist` centroids trained on the shard's own rows)
//! partitions the shard into inverted lists, and a query scans only the
//! `nprobe` lists whose centroids are nearest — turning the O(rows)
//! exact sweep into O(nlist + probed rows). Every list is kept twice:
//! once over **all** rows (for `Similar`) and once over the **labeled
//! train subset** (for `Classify`), so both read paths probe the same
//! quantizer without rescanning unlabeled rows.
//!
//! # Lifecycle: lazy, cached, copy-on-write
//!
//! Indexes are built lazily on the first ANN query against a block and
//! cached inside the block (`OnceLock`). Because copy-on-write
//! publication shares clean blocks between epochs by `Arc`
//! ([`crate::Snapshot`]), a published epoch **re-indexes only the shards
//! its batch dirtied**: clean shards carry their parent epoch's cached
//! index untouched (`Arc::ptr_eq`-provable — see `tests/concurrency.rs`),
//! and a rebuilt block starts with an empty cache and re-indexes on first
//! use. The build is **deterministic in the block's content**: identical
//! rows and train set always produce an identical index (same centroids
//! bit-for-bit, same lists), which is what makes WAL crash-recovery
//! reproduce the same index structure and the same ANN answers as the
//! uninterrupted process (`tests/durability.rs`).
//!
//! # Exactness guard rails
//!
//! Approximate answers are only trustworthy when the fallback rules are
//! crisp:
//!
//! * shards with fewer than [`ANN_MIN_SHARD_ROWS`] rows never build an
//!   index — the exact sweep is already cheap and k-means over a handful
//!   of rows is noise;
//! * a query whose `top`/`k` reaches the whole candidate pool (all rows,
//!   or the whole train set) scans exactly, because probing everything
//!   *is* the exact scan minus determinism guarantees;
//! * [`SearchPolicy::Ann`]'s `refine` sets a minimum candidate pool
//!   (`refine × top` candidates): probing continues past `nprobe` lists
//!   until the pool is large enough or every list was visited — at which
//!   point the result **equals** the exact scan, ties included, because
//!   candidates are ranked by the same `(distance, id)` total order.
//!
//! `tests/ann_recall.rs` pins all of this against the exact scan as an
//! oracle: measured recall@top across graphs, shard counts, and `nprobe`
//! settings, and bit-identity whenever the pool covers everything.

use serde::{Deserialize, Serialize};

use crate::snapshot::ShardBlock;

/// How `Similar` and `Classify` search the embedding: exact
/// shard-parallel scans (the default — bit-identical to pre-index
/// behavior) or approximate IVF probes. Part of the wire contract
/// (protocol v3, additive: requests without a `search` override encode
/// byte-identically to v2 frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchPolicy {
    /// Exact scan of every row (every train row for `Classify`).
    Exact,
    /// IVF probe: rank every shard's centroids **globally** by distance
    /// to the query and visit the `nprobe` nearest inverted lists
    /// across the whole snapshot — exactly classic IVF semantics, so
    /// recall and cost for a given `nprobe` are shard-count-invariant
    /// (sharding only partitions the lists, it never dilutes the probe
    /// budget). Probing extends past the budget until the candidate
    /// pool holds `refine × top` entries or every list was visited — at
    /// which point the answer *equals* the exact scan. Shards below
    /// [`ANN_MIN_SHARD_ROWS`] and queries whose `top`/`k` covers a
    /// shard's whole pool scan that shard exactly.
    Ann { nprobe: usize, refine: usize },
}

impl SearchPolicy {
    /// ANN with the default refinement factor
    /// ([`SearchPolicy::DEFAULT_REFINE`]).
    pub fn ann(nprobe: usize) -> SearchPolicy {
        SearchPolicy::Ann {
            nprobe,
            refine: Self::DEFAULT_REFINE,
        }
    }

    /// Default minimum-candidate-pool multiplier for [`SearchPolicy::ann`].
    pub const DEFAULT_REFINE: usize = 8;

    /// Whether this policy is approximate.
    pub fn is_ann(&self) -> bool {
        matches!(self, SearchPolicy::Ann { .. })
    }

    /// Reject nonsensical ANN parameters with a typed
    /// [`ServeError::ZeroLimit`](crate::ServeError::ZeroLimit) — the
    /// single validation shared by registry configuration
    /// ([`Registry::with_config`](crate::Registry::with_config)) and
    /// per-request overrides, so the two can never drift.
    pub fn validate(&self) -> Result<(), crate::ServeError> {
        if let SearchPolicy::Ann { nprobe, refine } = *self {
            if nprobe == 0 {
                return Err(crate::ServeError::ZeroLimit {
                    param: "nprobe".into(),
                });
            }
            if refine == 0 {
                return Err(crate::ServeError::ZeroLimit {
                    param: "refine".into(),
                });
            }
        }
        Ok(())
    }
}

impl Default for SearchPolicy {
    fn default() -> Self {
        SearchPolicy::Exact
    }
}

/// Shards with fewer rows never build an IVF index: the exact sweep is
/// already cheap there, and the quantizer would be trained on noise.
pub const ANN_MIN_SHARD_ROWS: usize = 128;

/// Lloyd iterations for the coarse quantizer.
const KMEANS_ITERS: usize = 8;

/// Training-sample cap: k-means iterates over at most this many rows
/// (deterministically strided); the final assignment always covers every
/// row.
const KMEANS_SAMPLE: usize = 4096;

/// Inverted-file index over one shard block's rows. Immutable once
/// built; deterministic in the block's content.
#[derive(Debug)]
pub struct IvfIndex {
    dim: usize,
    /// `nlist × dim` row-major coarse centroids.
    centroids: Vec<f64>,
    /// Per centroid: local row indices (`0..rows`) assigned to it,
    /// ascending.
    lists: Vec<Vec<u32>>,
    /// Per centroid: indices into the block's train slice whose vertex
    /// row is assigned to it, ascending.
    train_lists: Vec<Vec<u32>>,
}

#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl IvfIndex {
    /// Build the index for a block, or `None` when the block is too
    /// small to benefit ([`ANN_MIN_SHARD_ROWS`]). Deterministic: equal
    /// rows and train set ⇒ equal index, bit for bit.
    pub(crate) fn build(block: &ShardBlock) -> Option<IvfIndex> {
        let dim = block.dim();
        let rows = block.rows();
        if dim == 0 {
            return None;
        }
        let n = rows.len() / dim;
        if n < ANN_MIN_SHARD_ROWS {
            return None;
        }
        let nlist = (n as f64).sqrt().round() as usize;
        let nlist = nlist.clamp(1, n);
        let row = |i: usize| &rows[i * dim..(i + 1) * dim];

        // Deterministic init: centroids seeded from evenly spaced rows.
        let mut centroids: Vec<f64> = Vec::with_capacity(nlist * dim);
        for c in 0..nlist {
            centroids.extend_from_slice(row(c * n / nlist));
        }

        // Lloyd iterations over a deterministically strided sample.
        let stride = n.div_ceil(KMEANS_SAMPLE).max(1);
        let sample: Vec<usize> = (0..n).step_by(stride).collect();
        let nearest = |centroids: &[f64], r: &[f64]| -> usize {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..nlist {
                let d = dist2(r, &centroids[c * dim..(c + 1) * dim]);
                // Strict `<`: ties resolve to the lowest centroid id, so
                // assignment is a pure function of the data.
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        };
        for _ in 0..KMEANS_ITERS {
            let mut sums = vec![0.0f64; nlist * dim];
            let mut counts = vec![0usize; nlist];
            for &i in &sample {
                let c = nearest(&centroids, row(i));
                counts[c] += 1;
                let acc = &mut sums[c * dim..(c + 1) * dim];
                for (a, x) in acc.iter_mut().zip(row(i)) {
                    *a += x;
                }
            }
            for c in 0..nlist {
                // An empty cluster keeps its previous centroid — still
                // deterministic, and it can re-acquire points later.
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for d_i in 0..dim {
                        centroids[c * dim + d_i] = sums[c * dim + d_i] * inv;
                    }
                }
            }
        }

        // Final assignment covers every row (ascending, so lists ascend).
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        let mut assignment: Vec<u32> = Vec::with_capacity(n);
        for i in 0..n {
            let c = nearest(&centroids, row(i));
            assignment.push(c as u32);
            lists[c].push(i as u32);
        }
        let (lo, _) = block.range();
        let mut train_lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (ti, &(v, _)) in block.train().iter().enumerate() {
            let local = (v - lo) as usize;
            train_lists[assignment[local] as usize].push(ti as u32);
        }
        Some(IvfIndex {
            dim,
            centroids,
            lists,
            train_lists,
        })
    }

    /// Number of inverted lists (coarse centroids).
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// The `nlist × dim` row-major centroid matrix.
    pub fn centroids(&self) -> &[f64] {
        &self.centroids
    }

    /// Per-centroid local row indices, ascending within each list.
    pub fn lists(&self) -> &[Vec<u32>] {
        &self.lists
    }

    /// Per-centroid indices into the block's train slice.
    pub fn train_lists(&self) -> &[Vec<u32>] {
        &self.train_lists
    }

    /// Content fingerprint of the index structure (FNV-1a over centroid
    /// bit patterns and list contents). Equal digests ⇔ identical index
    /// structure; used to prove crash recovery re-indexes identically.
    pub fn structure_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u64| {
            h ^= b;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(self.dim as u64);
        eat(self.lists.len() as u64);
        for &c in &self.centroids {
            eat(c.to_bits());
        }
        for list in self.lists.iter().chain(self.train_lists.iter()) {
            eat(list.len() as u64);
            for &i in list {
                eat(u64::from(i));
            }
        }
        h
    }

    /// Squared distance from `q` to every centroid, in centroid order.
    /// The engine merges these across shards to rank all of the
    /// snapshot's inverted lists globally — classic IVF probing, with
    /// the lists merely partitioned by shard.
    pub(crate) fn centroid_dist2(&self, q: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            (0..self.nlist()).map(|c| dist2(q, &self.centroids[c * self.dim..(c + 1) * self.dim])),
        );
    }
}

/// Euclidean squared distance, shared by build and probe paths.
pub(crate) fn row_dist2(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b)
}

/// Bounded k-best selection under a caller-supplied total "is-less"
/// order. Keys must be unique (ties broken by id), so the kept set —
/// and its order — is a pure function of the pushed candidate *set*,
/// independent of push order: the property that makes ANN answers
/// deterministic and full probes equal the exact scan.
pub(crate) struct Selection<T> {
    items: Vec<T>,
    limit: usize,
}

impl<T: Copy> Selection<T> {
    /// Keep the best `limit` items; `universe` caps the preallocation
    /// (limits are client-controlled and may be `usize::MAX`).
    pub(crate) fn new(limit: usize, universe: usize) -> Selection<T> {
        Selection {
            items: Vec::with_capacity(limit.saturating_add(1).min(universe + 1)),
            limit,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, item: T, lt: impl Fn(&T, &T) -> bool) {
        let pos = self.items.partition_point(|b| lt(b, &item));
        if pos < self.limit {
            self.items.insert(pos, item);
            if self.items.len() > self.limit {
                self.items.pop();
            }
        }
    }

    pub(crate) fn into_vec(self) -> Vec<T> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize, dim: usize, labeled_every: usize) -> ShardBlock {
        let rows: Vec<f64> = (0..n * dim)
            .map(|i| ((i as f64) * 0.37).sin() * 3.0)
            .collect();
        let labels: Vec<i32> = (0..n)
            .map(|i| {
                if i % labeled_every == 0 {
                    (i % 3) as i32
                } else {
                    -1
                }
            })
            .collect();
        ShardBlock::build(0, n as u32, dim, rows, labels)
    }

    #[test]
    fn small_blocks_build_no_index() {
        let b = block(ANN_MIN_SHARD_ROWS - 1, 4, 3);
        assert!(IvfIndex::build(&b).is_none());
        let b = block(ANN_MIN_SHARD_ROWS, 4, 3);
        assert!(IvfIndex::build(&b).is_some());
    }

    #[test]
    fn lists_partition_all_rows_and_train_entries() {
        let b = block(500, 4, 3);
        let idx = IvfIndex::build(&b).unwrap();
        let mut seen: Vec<u32> = idx.lists().iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500u32).collect::<Vec<_>>());
        let mut train_seen: Vec<u32> = idx.train_lists().iter().flatten().copied().collect();
        train_seen.sort_unstable();
        assert_eq!(
            train_seen,
            (0..b.train().len() as u32).collect::<Vec<_>>(),
            "every train entry lands in exactly one list"
        );
        for list in idx.lists() {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "lists ascend");
        }
    }

    #[test]
    fn build_is_deterministic_in_content() {
        let a = IvfIndex::build(&block(400, 5, 4)).unwrap();
        let b = IvfIndex::build(&block(400, 5, 4)).unwrap();
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.lists(), b.lists());
        assert_eq!(a.train_lists(), b.train_lists());
        assert_eq!(a.structure_digest(), b.structure_digest());
        let c = IvfIndex::build(&block(401, 5, 4)).unwrap();
        assert_ne!(
            a.structure_digest(),
            c.structure_digest(),
            "different content, different digest"
        );
    }

    #[test]
    fn centroid_distances_cover_every_list_and_rank_sanely() {
        let b = block(600, 3, 2);
        let idx = IvfIndex::build(&b).unwrap();
        let qr = b.row(17).to_vec();
        let mut dists = Vec::new();
        idx.centroid_dist2(&qr, &mut dists);
        assert_eq!(dists.len(), idx.nlist());
        assert!(dists.iter().all(|d| d.is_finite()));
        // The row's own list holds one of the nearest centroids: its
        // assigned centroid distance is the minimum by construction of
        // the final assignment pass.
        let own_list = idx
            .lists()
            .iter()
            .position(|l| l.contains(&17))
            .expect("row 17 is in exactly one list");
        let min = dists.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert_eq!(
            dists[own_list], min,
            "assignment picks the nearest centroid"
        );
    }
}
