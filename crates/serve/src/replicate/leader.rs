//! Leader side: a TCP listener that streams the registry's WAL to
//! followers.
//!
//! Each follower connection gets its own thread (the same accept-loop
//! scaffolding the client [`Server`](crate::Server) uses). The ship
//! loop samples the durable high-water LSN under the log lock, reads
//! the records below it back from the leader's own segment files —
//! appends hit the OS page cache unbuffered, so a record is readable
//! the moment its LSN is assigned — and re-frames them onto the
//! socket. Compaction can retire a segment mid-stream; the loop then
//! ends the connection cleanly and the follower reconnects, landing on
//! the bootstrap path.

use std::fs::File;
use std::io::{Seek, SeekFrom};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gee_graph::io::frame::{self, FrameError};

use crate::metrics::ServeMetrics;
use crate::registry::Registry;
use crate::server::{spawn_accept_loop, ServerHandle};
use crate::{checkpoint, wal, ServeError};

use super::{ReplFrame, MAX_REPL_FRAME_LEN, MIN_REPL_STREAM_VERSION, REPL_STREAM_VERSION};

/// How often an idle leader proves liveness (and refreshes the
/// follower's lag oracle).
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);

/// Idle poll cadence while caught up.
const POLL: Duration = Duration::from_millis(20);

/// The replication listener: attach to a durable [`Registry`] and
/// serve the WAL stream to any number of followers until shut down.
/// Dropping the listener shuts it down (in-flight connections get an
/// [`ReplFrame::End`] at their next loop turn).
pub struct ReplicationListener {
    handle: ServerHandle,
}

impl ReplicationListener {
    /// Bind `addr` and serve follower connections on background
    /// threads. The registry must be durable (the WAL *is* the stream)
    /// and must not itself be a replica (no chaining — promote first).
    pub fn listen(
        registry: Arc<Registry>,
        addr: impl ToSocketAddrs,
    ) -> Result<ReplicationListener, ServeError> {
        if !registry.is_durable() {
            return Err(ServeError::storage(
                "replication requires a durable (WAL) registry: there is no log to ship",
            ));
        }
        if registry.is_replica() {
            return Err(ServeError::storage(
                "cannot attach a replication listener to a replica (chaining is unsupported)",
            ));
        }
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::storage(format!("binding replication listener: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServeError::storage(format!("replication listener addr: {e}")))?;
        registry
            .serve_metrics()
            .replicating
            .store(true, Ordering::Release);
        let stop = Arc::new(AtomicBool::new(false));
        let conn_stop = stop.clone();
        let accept_thread = spawn_accept_loop(listener, stop.clone(), None, move |stream| {
            let _gauge = ConnGauge::attach(registry.serve_metrics());
            // A follower-caused failure ends only this connection; the
            // follower reconnects with backoff.
            let _ = serve_follower(&registry, stream, &conn_stop);
        });
        Ok(ReplicationListener {
            handle: ServerHandle::from_parts(local_addr, stop, accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.handle.addr()
    }

    /// Stop accepting and end follower connections.
    pub fn shutdown(self) {
        self.handle.shutdown();
    }
}

/// RAII increment of the `follower_conns` gauge.
struct ConnGauge<'a> {
    metrics: &'a ServeMetrics,
}

impl<'a> ConnGauge<'a> {
    fn attach(metrics: &'a ServeMetrics) -> ConnGauge<'a> {
        metrics.follower_conns.fetch_add(1, Ordering::AcqRel);
        ConnGauge { metrics }
    }
}

impl Drop for ConnGauge<'_> {
    fn drop(&mut self) {
        self.metrics.follower_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

fn send(stream: &mut TcpStream, frame: &ReplFrame) -> Result<(), ServeError> {
    frame::write_frame(stream, &frame.encode())
        .map_err(|e| ServeError::storage(format!("replication send: {e}")))
}

/// Best-effort `End` before closing: the socket may already be gone.
fn end(stream: &mut TcpStream, detail: &str) {
    let _ = frame::write_frame(
        stream,
        &ReplFrame::End {
            detail: detail.to_string(),
        }
        .encode(),
    );
}

/// Drive one follower connection: handshake, optional bootstrap, then
/// ship records and heartbeats until the leader stops or the range
/// becomes unservable.
fn serve_follower(
    registry: &Arc<Registry>,
    mut stream: TcpStream,
    stop: &AtomicBool,
) -> Result<(), ServeError> {
    let _ = stream.set_nodelay(true);
    // Bound the handshake read so an idle connection cannot pin this
    // thread past shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let hello = frame::read_frame(&mut stream, MAX_REPL_FRAME_LEN)
        .map_err(|e| ServeError::protocol(format!("replication handshake: {e}")))?;
    let (mut next, epochs_on) = match ReplFrame::decode(&hello) {
        Ok(ReplFrame::Hello {
            version,
            start_lsn,
            max_epoch_seen,
        }) if (MIN_REPL_STREAM_VERSION..=REPL_STREAM_VERSION).contains(&version) => {
            // The deposed-leader self-fence: a follower that has
            // durably seen a newer leader epoch proves we were
            // superseded while partitioned. Fence before shipping a
            // single record — a stale leader's log may already have
            // forked from the new epoch's history.
            if max_epoch_seen > registry.leader_epoch() {
                registry.fence(max_epoch_seen);
                end(
                    &mut stream,
                    &format!(
                        "leader fenced: follower has seen epoch {max_epoch_seen}, \
                         this leader is at epoch {}",
                        registry.leader_epoch()
                    ),
                );
                return Err(ServeError::StaleLeader {
                    leader_epoch: registry.leader_epoch(),
                    seen_epoch: max_epoch_seen,
                });
            }
            // v1 followers predate epochs: serve them records, but
            // leave the fencing fields off their frames.
            (start_lsn, version >= 2)
        }
        Ok(ReplFrame::Hello { version, .. }) => {
            end(
                &mut stream,
                &format!("unsupported stream version {version}"),
            );
            return Err(ServeError::protocol(format!(
                "replication stream version {version} (this build speaks \
                 {MIN_REPL_STREAM_VERSION}..={REPL_STREAM_VERSION})"
            )));
        }
        Ok(_) | Err(_) => {
            end(&mut stream, "first frame must be a replication Hello");
            return Err(ServeError::protocol(
                "replication connection did not start with Hello",
            ));
        }
    };
    // A leader fenced by an earlier connection must not serve late
    // followers either: they would replicate a superseded history.
    if let Some(seen) = registry.fenced_by() {
        end(
            &mut stream,
            &format!("leader fenced by epoch {seen}; re-point at the new leader"),
        );
        return Err(ServeError::StaleLeader {
            leader_epoch: registry.leader_epoch(),
            seen_epoch: seen,
        });
    }
    let my_epoch = registry.leader_epoch();
    let dir = registry.data_dir().expect("listener requires durability");
    let high = registry
        .wal_high_water()
        .expect("listener requires durability");
    if next > high {
        end(
            &mut stream,
            &format!("follower at lsn {next} is ahead of leader at {high}"),
        );
        return Ok(());
    }
    // Bootstrap when the follower is behind the compaction horizon: the
    // oldest on-disk segment is the stream floor (after a rotation it
    // starts exactly at the covering checkpoint's LSN).
    let floor = wal::segment_paths(&dir)?.first().map_or(0, |&(lsn, _)| lsn);
    if next < floor {
        let Some((ckpt, _)) = checkpoint::load_latest(&dir)? else {
            end(&mut stream, "leader has no checkpoint to bootstrap from");
            return Err(ServeError::storage(
                "compacted WAL without a checkpoint: cannot serve replication bootstrap",
            ));
        };
        send(
            &mut stream,
            &ReplFrame::Bootstrap {
                lsn: ckpt.lsn,
                leader_epoch: epochs_on.then_some(my_epoch),
            },
        )?;
        frame::write_frame(&mut stream, &checkpoint::encode(&ckpt))
            .map_err(|e| ServeError::storage(format!("shipping bootstrap checkpoint: {e}")))?;
        next = ckpt.lsn;
    }
    send(
        &mut stream,
        &ReplFrame::Stream {
            from_lsn: next,
            leader_epoch: epochs_on.then_some(my_epoch),
        },
    )?;
    let metrics = registry.serve_metrics();
    let mut last_beat = None::<Instant>;
    loop {
        if stop.load(Ordering::SeqCst) {
            end(&mut stream, "leader shutting down");
            return Ok(());
        }
        // Another connection may have fenced us mid-stream; stop
        // shipping a superseded history immediately.
        if let Some(seen) = registry.fenced_by() {
            end(
                &mut stream,
                &format!("leader fenced by epoch {seen}; re-point at the new leader"),
            );
            return Err(ServeError::StaleLeader {
                leader_epoch: registry.leader_epoch(),
                seen_epoch: seen,
            });
        }
        let high = registry
            .wal_high_water()
            .expect("listener requires durability");
        if next < high {
            match ship_range(metrics, &dir, &mut stream, next, high) {
                Ok(shipped_to) => next = shipped_to,
                Err(detail) => {
                    // Typically compaction retired a segment under us;
                    // the follower reconnects and bootstraps.
                    end(&mut stream, &detail);
                    return Err(ServeError::storage(detail));
                }
            }
            last_beat = None; // heartbeat immediately after catching up
        }
        if last_beat.is_none_or(|t| t.elapsed() >= HEARTBEAT_EVERY) {
            send(
                &mut stream,
                &ReplFrame::Heartbeat {
                    next_lsn: high,
                    epochs: registry.published_epochs(),
                    leader_epoch: epochs_on.then_some(my_epoch),
                },
            )?;
            last_beat = Some(Instant::now());
        }
        std::thread::sleep(POLL);
    }
}

/// Ship records `[from, to)` from the on-disk segments. Returns the
/// next LSN to ship (= `to`), or a human-readable reason the range is
/// unservable.
fn ship_range(
    metrics: &ServeMetrics,
    dir: &Path,
    stream: &mut TcpStream,
    from: u64,
    to: u64,
) -> Result<u64, String> {
    let segments = wal::segment_paths(dir).map_err(|e| format!("listing segments: {e}"))?;
    // The segment holding `from` is the last one starting at or below
    // it; earlier segments are fully below the range.
    let first = segments.partition_point(|&(start, _)| start <= from);
    if first == 0 {
        return Err(format!("no segment covers lsn {from} (compacted away)"));
    }
    let mut next = from;
    for (start, path) in &segments[first - 1..] {
        if next >= to {
            break;
        }
        if *start > next {
            return Err(format!(
                "segment gap: need lsn {next}, next segment starts at {start}"
            ));
        }
        let mut file = File::open(path)
            .map_err(|e| format!("opening {} (compacted?): {e}", path.display()))?;
        file.seek(SeekFrom::Start(wal::HEADER_LEN))
            .map_err(|e| format!("seeking past header of {}: {e}", path.display()))?;
        let mut reader = std::io::BufReader::new(file);
        let mut lsn = *start;
        while next < to {
            match frame::read_frame(&mut reader, wal::MAX_RECORD_LEN) {
                Ok(payload) => {
                    if lsn == next {
                        ship_record(metrics, stream, lsn, payload)?;
                        next += 1;
                    }
                    lsn += 1;
                }
                // Segment exhausted; the next one continues the range.
                // (A torn tail can only exist beyond the sampled high
                // water, which the `next < to` bound never reaches.)
                Err(FrameError::Eof) => break,
                Err(e) => return Err(format!("reading {} at lsn {lsn}: {e}", path.display())),
            }
        }
    }
    if next < to {
        return Err(format!(
            "segments end at lsn {next}, expected records through {to}"
        ));
    }
    Ok(next)
}

fn ship_record(
    metrics: &ServeMetrics,
    stream: &mut TcpStream,
    lsn: u64,
    record: Vec<u8>,
) -> Result<(), String> {
    let bytes = record.len() as u64;
    let payload = ReplFrame::Record { lsn, record }.encode();
    frame::write_frame(&mut *stream, &payload).map_err(|e| format!("shipping lsn {lsn}: {e}"))?;
    metrics.shipped_records.fetch_add(1, Ordering::Relaxed);
    metrics.shipped_bytes.fetch_add(bytes, Ordering::Relaxed);
    Ok(())
}
