//! Follower side: a read-only replica that pulls the leader's WAL
//! stream.
//!
//! [`Follower::start`] opens a replica-mode durable
//! [`Registry`](crate::Registry) (recovering whatever it already holds)
//! and spawns a pull loop: connect to the leader, send `Hello` with the
//! local durable high-water LSN, then install the bootstrap checkpoint
//! and/or apply streamed records. Every record is WAL-appended locally
//! *before* it is applied (the same commit ordering the leader used),
//! so a crashed follower restarts, recovers its own log, and resumes
//! from exactly where durability left off — no record is ever applied
//! twice or skipped.
//!
//! The loop reconnects with exponential backoff (100 ms doubling to
//! 2 s) on any failure: connection refused, a dead socket, or a corrupt
//! frame. A successful `Stream` handshake resets the backoff — an
//! idle-but-healthy leader is not a fault. Corruption (CRC mismatch, torn
//! frame, undecodable record, LSN discontinuity) is **never applied** —
//! the connection is dropped, the error lands in
//! [`ReplicationStatus::last_error`], and the next attempt resumes from
//! the durable high water. A graceful leader `End` (e.g. orderly
//! shutdown before failover) is tracked separately in
//! [`ReplicationStatus::last_graceful_end`], never as an error.
//!
//! When the leader is gone for good, [`Follower::promote`] turns this
//! replica into the new leader of a bumped, durably-persisted leader
//! epoch (see the crate docs on fencing).

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gee_graph::io::frame::{self, crc32};

use crate::registry::{Registry, RegistryConfig};
use crate::wal::{self, Durability};
use crate::{checkpoint, ServeError};

use super::{
    ReplFrame, ReplicationListener, ReplicationStatus, MAX_REPL_FRAME_LEN, REPL_STREAM_VERSION,
};

const MIN_BACKOFF: Duration = Duration::from_millis(100);
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// Socket read timeout: how often a blocked read rechecks the stop
/// flag.
const READ_TICK: Duration = Duration::from_millis(50);

/// A running follower: a read-only replica [`Registry`] plus the pull
/// thread keeping it converged with the leader. Serve reads from it by
/// wrapping [`Follower::registry`] in an
/// [`Engine`](crate::Engine) / [`Server`](crate::Server) as usual;
/// writes are rejected with
/// [`ServeError::ReadOnlyReplica`](crate::ServeError::ReadOnlyReplica).
/// Dropping the follower stops the pull loop (the registry lives on
/// while other `Arc`s hold it).
pub struct Follower {
    registry: Arc<Registry>,
    status: Arc<ReplicationStatus>,
    stop: Arc<AtomicBool>,
    pull_thread: Option<JoinHandle<()>>,
}

impl Follower {
    /// Open a replica registry under `config` (which must be
    /// [`Durability::Wal`] — the local log is the resume point) and
    /// start pulling from `leader` (a `host:port` replication-listener
    /// address).
    pub fn start(
        config: RegistryConfig,
        leader: impl Into<String>,
    ) -> Result<Follower, ServeError> {
        if !matches!(config.durability, Durability::Wal { .. }) {
            return Err(ServeError::storage(
                "a follower requires Durability::Wal: its own log is the replication resume point",
            ));
        }
        let leader = leader.into();
        let status = Arc::new(ReplicationStatus::new(leader.clone()));
        let registry = Arc::new(Registry::open_replica(config, status.clone())?);
        let stop = Arc::new(AtomicBool::new(false));
        let pull_thread = {
            let registry = registry.clone();
            let status = status.clone();
            let stop = stop.clone();
            std::thread::spawn(move || pull_loop(&registry, &status, &stop, &leader))
        };
        Ok(Follower {
            registry,
            status,
            stop,
            pull_thread: Some(pull_thread),
        })
    }

    /// The replica registry (serve reads from it; `at_epoch` pins and
    /// ANN policies work exactly as on the leader).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Live replication status (connection state, leader head, last
    /// error).
    pub fn status(&self) -> &Arc<ReplicationStatus> {
        &self.status
    }

    /// Stop the pull loop and wait for it; the registry remains usable
    /// (read-only, no longer advancing).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Promote this follower to leader: stop the pull loop at the
    /// durable high water, durably bump the leader epoch (the fencing
    /// token every surviving follower will hold the old leader to), and
    /// flip the registry writable. With `replicate: Some(addr)` a fresh
    /// [`ReplicationListener`] is warmed on `addr` so the surviving
    /// followers re-point and resume from their own LSNs.
    ///
    /// Writes the old leader acknowledged but never shipped are **not**
    /// recovered — replication is asynchronous; promotion continues
    /// from this follower's durable history.
    pub fn promote(mut self, replicate: Option<&str>) -> Result<Promotion, ServeError> {
        self.shutdown_in_place();
        let registry = self.registry.clone();
        let epoch = registry.promote_to_leader()?;
        let listener = match replicate {
            Some(addr) => Some(ReplicationListener::listen(registry.clone(), addr)?),
            None => None,
        };
        Ok(Promotion {
            registry,
            epoch,
            listener,
        })
    }

    fn shutdown_in_place(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.pull_thread.take() {
            let _ = t.join();
        }
    }
}

/// The result of [`Follower::promote`]: the same registry, now leading
/// under `epoch` (writes pass; [`Registry::leader_epoch`] reports it),
/// plus the replication listener when one was requested.
pub struct Promotion {
    /// The promoted registry — writable, durable, same data dir.
    pub registry: Arc<Registry>,
    /// The new leader epoch (old epoch + 1, durably persisted before
    /// the first write is accepted).
    pub epoch: u64,
    /// Warm listener for surviving followers to re-point at, when
    /// [`Follower::promote`] was given an address.
    pub listener: Option<ReplicationListener>,
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Reconnect-with-backoff shell around [`pull_once`].
fn pull_loop(
    registry: &Arc<Registry>,
    status: &Arc<ReplicationStatus>,
    stop: &AtomicBool,
    leader: &str,
) {
    let mut backoff = MIN_BACKOFF;
    while !stop.load(Ordering::SeqCst) {
        match pull_once(registry, status, stop, leader) {
            // A session that completed the Stream handshake earns a
            // fresh backoff: the leader was healthy, even if idle — a
            // quiescent leader must not push clean reconnects toward
            // the max backoff.
            Ok(true) => backoff = MIN_BACKOFF,
            Ok(false) => {}
            Err(e) => status.record_error(e.to_string()),
        }
        status.set_connected(false);
        status.set_backoff(backoff);
        // Interruptible backoff sleep.
        let deadline = Instant::now() + backoff;
        while Instant::now() < deadline {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        backoff = (backoff * 2).min(MAX_BACKOFF);
    }
}

/// One connection's worth of replication: handshake, then apply frames
/// until the stream ends, something corrupts, or the follower stops.
/// Returns whether the `Stream` handshake completed — the healthy-leader
/// signal the reconnect backoff resets on.
fn pull_once(
    registry: &Arc<Registry>,
    status: &Arc<ReplicationStatus>,
    stop: &AtomicBool,
    leader: &str,
) -> Result<bool, ServeError> {
    let mut stream = TcpStream::connect(leader)
        .map_err(|e| ServeError::storage(format!("connecting to leader {leader}: {e}")))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let start_lsn = registry
        .wal_high_water()
        .expect("followers are always durable");
    frame::write_frame(
        &mut stream,
        &ReplFrame::Hello {
            version: REPL_STREAM_VERSION,
            start_lsn,
            // The fencing half of the handshake: a leader below this
            // epoch self-fences instead of serving us.
            max_epoch_seen: registry.leader_epoch(),
        }
        .encode(),
    )
    .map_err(|e| ServeError::storage(format!("replication hello: {e}")))?;
    let mut streamed = false;
    loop {
        let payload = match read_stream_frame(&mut stream, MAX_REPL_FRAME_LEN, stop, leader)? {
            NetRead::Frame(payload) => payload,
            NetRead::Eof | NetRead::Stopped => return Ok(streamed),
        };
        match ReplFrame::decode(&payload).map_err(|e| corrupt(leader, format!("{e}")))? {
            ReplFrame::Bootstrap { lsn, leader_epoch } => {
                accept_leader_epoch(registry, leader_epoch)?;
                // The checkpoint rides as one raw frame right behind.
                let ckpt_bytes = match read_stream_frame(
                    &mut stream,
                    checkpoint::MAX_CHECKPOINT_LEN,
                    stop,
                    leader,
                )? {
                    NetRead::Frame(p) => p,
                    NetRead::Stopped => return Ok(streamed),
                    NetRead::Eof => {
                        return Err(corrupt(leader, "stream ended inside bootstrap".into()))
                    }
                };
                let ckpt = checkpoint::decode(&ckpt_bytes)
                    .map_err(|e| corrupt(leader, format!("bootstrap checkpoint: {e}")))?;
                if ckpt.lsn != lsn {
                    return Err(corrupt(
                        leader,
                        format!(
                            "bootstrap announced lsn {lsn}, checkpoint is at {}",
                            ckpt.lsn
                        ),
                    ));
                }
                registry.install_bootstrap(ckpt)?;
            }
            ReplFrame::Stream {
                from_lsn,
                leader_epoch,
            } => {
                accept_leader_epoch(registry, leader_epoch)?;
                let local = registry
                    .wal_high_water()
                    .expect("followers are always durable");
                if from_lsn != local {
                    return Err(corrupt(
                        leader,
                        format!("leader streams from lsn {from_lsn}, local log expects {local}"),
                    ));
                }
                streamed = true;
                status.set_connected(true);
            }
            ReplFrame::Record { lsn, record } => {
                // Records are only valid inside a fenced-checked
                // session: a stale leader must not sneak one in before
                // its Stream frame is vetted.
                if !streamed {
                    return Err(corrupt(leader, "record before Stream handshake".into()));
                }
                let record = wal::decode_record(&record)
                    .map_err(|e| corrupt(leader, format!("record at lsn {lsn}: {e}")))?;
                registry.apply_replicated(lsn, &record)?;
            }
            ReplFrame::Heartbeat {
                next_lsn,
                epochs,
                leader_epoch,
            } => {
                accept_leader_epoch(registry, leader_epoch)?;
                status.update_leader(next_lsn, epochs);
            }
            ReplFrame::End { detail } => {
                // An orderly goodbye, not a fault: keep it out of
                // `last_error` so operators can tell a clean failover
                // from a broken stream.
                status.record_end(format!("leader ended stream: {detail}"));
                return Ok(streamed);
            }
            ReplFrame::Hello { .. } => {
                return Err(corrupt(leader, "unexpected Hello from leader".into()));
            }
        }
    }
}

/// Vet the leader epoch advertised on a handshake/heartbeat frame:
/// `None` (a v1 leader) passes epoch-free; a stale epoch is the typed
/// split-brain rejection (nothing from this session is applied after
/// it); a newer epoch is durably noted so this follower holds every
/// future leader to it.
fn accept_leader_epoch(
    registry: &Arc<Registry>,
    leader_epoch: Option<u64>,
) -> Result<(), ServeError> {
    let Some(epoch) = leader_epoch else {
        return Ok(());
    };
    let seen = registry.leader_epoch();
    if epoch < seen {
        return Err(ServeError::StaleLeader {
            leader_epoch: epoch,
            seen_epoch: seen,
        });
    }
    registry.note_leader_epoch(epoch)
}

fn corrupt(leader: &str, detail: String) -> ServeError {
    ServeError::Corrupt {
        path: format!("replication stream from {leader}"),
        detail,
    }
}

/// Outcome of one interruptible frame read.
enum NetRead {
    Frame(Vec<u8>),
    /// Clean close at a frame boundary.
    Eof,
    /// The follower is shutting down; abandon the connection.
    Stopped,
}

/// Read one `[len][crc32][payload]` frame off a read-timeout socket.
/// Unlike [`frame::read_frame`], read timeouts are not errors — they
/// re-check `stop` and resume, preserving partial progress — so a
/// shutdown never has to wait out a quiet leader. A close *inside* a
/// frame, a CRC mismatch, or an oversized length is `Corrupt`: the
/// torn-stream/bit-flip injection suite pins that none of these ever
/// reach the apply path.
fn read_stream_frame(
    stream: &mut TcpStream,
    max_len: usize,
    stop: &AtomicBool,
    leader: &str,
) -> Result<NetRead, ServeError> {
    let mut head = [0u8; 8];
    match fill(stream, &mut head, stop, leader)? {
        Filled::Full => {}
        Filled::CleanEof => return Ok(NetRead::Eof),
        Filled::TornEof { got } => {
            return Err(corrupt(
                leader,
                format!("torn frame header: stream ended after {got} of 8 bytes"),
            ))
        }
        Filled::Stopped => return Ok(NetRead::Stopped),
    }
    let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(corrupt(
            leader,
            format!("frame length {len} exceeds cap {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len];
    match fill(stream, &mut payload, stop, leader)? {
        Filled::Full => {}
        Filled::CleanEof | Filled::TornEof { .. } => {
            return Err(corrupt(leader, format!("torn frame: expected {len} bytes")))
        }
        Filled::Stopped => return Ok(NetRead::Stopped),
    }
    let computed = crc32(&payload);
    if computed != stored {
        return Err(corrupt(
            leader,
            format!("checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"),
        ));
    }
    Ok(NetRead::Frame(payload))
}

enum Filled {
    Full,
    /// 0 bytes then close: a frame boundary.
    CleanEof,
    /// Close mid-buffer.
    TornEof {
        got: usize,
    },
    Stopped,
}

fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    leader: &str,
) -> Result<Filled, ServeError> {
    use std::io::ErrorKind;
    let mut filled = 0usize;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(Filled::Stopped);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Filled::CleanEof
                } else {
                    Filled::TornEof { got: filled }
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(e) => {
                return Err(ServeError::storage(format!(
                    "replication read from {leader}: {e}"
                )))
            }
        }
    }
    Ok(Filled::Full)
}
