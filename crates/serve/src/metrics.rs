//! Server-side observability counters and the protocol-v4 wire report.
//!
//! The serving stack maintains a set of lock-free counters
//! ([`ServeMetrics`], one per [`Registry`](crate::Registry)): a
//! log2-bucketed latency [`Histogram`] per request type, a histogram of
//! batch coalesce sizes (how many reads each
//! [`Engine::execute_batch`](crate::Engine::execute_batch) run answered
//! against one snapshot), back-pressure rejections, and IVF index
//! build/hit counters. The WAL fsync count lives with the
//! [`WalWriter`](crate::wal::WalWriter) itself (it is already serialized
//! behind the log lock). A protocol-v4
//! [`Request::Metrics`](crate::Request::Metrics) snapshots everything
//! into a [`MetricsReport`] — the machine-readable side of `gee bench`'s
//! server polling.
//!
//! Counters are updated with relaxed atomics on the hot path; a report
//! is a point-in-time read, not a seqcst snapshot, so a histogram's
//! `count` can momentarily disagree with the sum of its `buckets` while
//! writers race. Consumers must treat reports as monotone gauges, not
//! exact ledgers.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::engine::Request;

/// Bucket count for [`Histogram`]: bucket `0` holds zeros and bucket
/// `i` holds values in `[2^(i-1), 2^i)`, so 40 buckets cover a span of
/// microsecond latencies past six days.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A lock-free log2-bucketed histogram of `u64` samples (latencies in
/// µs, coalesce sizes in requests).
pub(crate) struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Count one sample.
    pub(crate) fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time wire snapshot (trailing empty buckets trimmed).
    pub(crate) fn report(&self) -> HistogramReport {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramReport {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Wire snapshot of one [`Histogram`]. Part of the protocol-v4
/// contract: `buckets[0]` counts zero samples, `buckets[i]` counts
/// samples in `[2^(i-1), 2^i)`, trailing empty buckets are trimmed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramReport {
    /// An empty histogram (what a fresh server reports).
    pub fn empty() -> HistogramReport {
        HistogramReport {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
        }
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`), `None` when empty. Bucketing bounds the
    /// error to 2x — good enough for a dashboard, not for the loadgen's
    /// exact client-side quantiles.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return Some(if i == 0 { 0 } else { (1u64 << i) - 1 });
            }
        }
        Some(u64::MAX)
    }
}

/// The registry-wide counter set. One per [`Registry`](crate::Registry)
/// (never process-global, so concurrently running registries — e.g.
/// parallel tests — observe only their own traffic).
pub(crate) struct ServeMetrics {
    pub(crate) classify: Histogram,
    pub(crate) similar: Histogram,
    pub(crate) embed_row: Histogram,
    pub(crate) stats: Histogram,
    pub(crate) metrics: Histogram,
    pub(crate) apply_updates: Histogram,
    /// Sizes of coalesced read runs (per `execute_batch` run, in
    /// requests answered against one snapshot resolution).
    pub(crate) coalesce: Histogram,
    /// Write batches rejected by back-pressure
    /// ([`ServeError::Overloaded`](crate::ServeError::Overloaded)).
    pub(crate) overloaded: AtomicU64,
    /// IVF shard indexes built lazily by a query probe (builds via
    /// [`Snapshot::warm_ann_indexes`](crate::Snapshot::warm_ann_indexes)
    /// are deliberate pre-warming and are not counted).
    pub(crate) ivf_builds: AtomicU64,
    /// IVF probes that found a shard's index already cached (counted
    /// per shard block touched, not per request).
    pub(crate) ivf_hits: AtomicU64,
}

impl ServeMetrics {
    pub(crate) fn new() -> ServeMetrics {
        ServeMetrics {
            classify: Histogram::new(),
            similar: Histogram::new(),
            embed_row: Histogram::new(),
            stats: Histogram::new(),
            metrics: Histogram::new(),
            apply_updates: Histogram::new(),
            coalesce: Histogram::new(),
            overloaded: AtomicU64::new(0),
            ivf_builds: AtomicU64::new(0),
            ivf_hits: AtomicU64::new(0),
        }
    }

    /// The latency histogram a request's execution is recorded into.
    pub(crate) fn request_histogram(&self, request: &Request) -> &Histogram {
        match request {
            Request::Classify { .. } => &self.classify,
            Request::Similar { .. } => &self.similar,
            Request::EmbedRow { .. } => &self.embed_row,
            Request::Stats { .. } => &self.stats,
            Request::Metrics => &self.metrics,
            Request::ApplyUpdates { .. } => &self.apply_updates,
        }
    }
}

/// Microseconds elapsed since `start`, saturating.
pub(crate) fn elapsed_us(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Answer to [`Request::Metrics`](crate::Request::Metrics) (protocol
/// v4). The per-graph fields (`epoch` … `updates_applied`) describe the
/// addressed graph exactly as [`GraphReport`](crate::GraphReport) does
/// — the two endpoints never disagree — while the histograms and
/// counters describe the whole registry (every graph's traffic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    pub graph: String,
    /// Published epoch of the addressed graph.
    pub epoch: u64,
    /// Oldest epoch still retained for `at_epoch` reads (same value
    /// `Stats` reports).
    pub oldest_epoch: u64,
    /// Retained epochs in the history ring right now
    /// (`epoch - oldest_epoch + 1`).
    pub history_depth: usize,
    /// Shard blocks of the published snapshot with a built-and-cached
    /// IVF index (same value `Stats` reports; counting never forces a
    /// build).
    pub ann_indexed_shards: usize,
    pub queries_served: u64,
    pub updates_applied: u64,
    /// Per-request-type latency histograms, in microseconds.
    pub classify_us: HistogramReport,
    pub similar_us: HistogramReport,
    pub embed_row_us: HistogramReport,
    pub stats_us: HistogramReport,
    pub metrics_us: HistogramReport,
    pub apply_updates_us: HistogramReport,
    /// Coalesced read-run sizes (requests per run).
    pub coalesce: HistogramReport,
    /// Write batches rejected with `Overloaded` by back-pressure.
    pub overloaded: u64,
    /// WAL data fsyncs performed by appends (0 on an in-memory
    /// registry).
    pub wal_fsyncs: u64,
    /// IVF shard indexes built lazily by query probes.
    pub ivf_builds: u64,
    /// IVF probes answered from an already-cached shard index.
    pub ivf_hits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        let r = h.report();
        assert_eq!(r.count, 9);
        assert_eq!(r.sum, 0 + 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024);
        assert_eq!(r.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(r.buckets[1], 1, "1 in [1,2)");
        assert_eq!(r.buckets[2], 2, "2,3 in [2,4)");
        assert_eq!(r.buckets[3], 2, "4 and 7 in [4,8)");
        assert_eq!(r.buckets[4], 1, "8 in [8,16)");
        assert_eq!(r.buckets[10], 1, "1023 in [512,1024)");
        assert_eq!(r.buckets[11], 1, "1024 in [1024,2048)");
        assert_eq!(r.buckets.len(), 12, "trailing zeros trimmed");
    }

    #[test]
    fn histogram_report_summaries() {
        let h = Histogram::new();
        assert_eq!(h.report(), HistogramReport::empty());
        assert_eq!(HistogramReport::empty().mean(), None);
        assert_eq!(HistogramReport::empty().quantile_upper_bound(0.5), None);
        for v in 0..100u64 {
            h.record(v);
        }
        let r = h.report();
        assert_eq!(r.mean(), Some(49.5));
        // The median of 0..100 is ~50; its bucket [32, 64) upper bound.
        assert_eq!(r.quantile_upper_bound(0.5), Some(63));
        assert_eq!(r.quantile_upper_bound(0.0), Some(0));
        assert_eq!(r.quantile_upper_bound(1.0), Some(127));
    }
}
