//! Server-side observability counters and the protocol-v4 wire report.
//!
//! The serving stack maintains a set of lock-free counters
//! ([`ServeMetrics`], one per [`Registry`](crate::Registry)): a
//! log2-bucketed latency [`Histogram`] per request type, a histogram of
//! batch coalesce sizes (how many reads each
//! [`Engine::execute_batch`](crate::Engine::execute_batch) run answered
//! against one snapshot), back-pressure rejections, and IVF index
//! build/hit counters. The WAL fsync count lives with the
//! [`WalWriter`](crate::wal::WalWriter) itself (it is already serialized
//! behind the log lock). A protocol-v4
//! [`Request::Metrics`](crate::Request::Metrics) snapshots everything
//! into a [`MetricsReport`] — the machine-readable side of `gee bench`'s
//! server polling.
//!
//! Counters are updated with relaxed atomics on the hot path; a report
//! is a point-in-time read, not a seqcst snapshot, so a histogram's
//! `count` can momentarily disagree with the sum of its `buckets` while
//! writers race. Consumers must treat reports as monotone gauges, not
//! exact ledgers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::engine::Request;

/// Bucket count for [`Histogram`]: bucket `0` holds zeros and bucket
/// `i` holds values in `[2^(i-1), 2^i)`, so 40 buckets cover a span of
/// microsecond latencies past six days.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A lock-free log2-bucketed histogram of `u64` samples (latencies in
/// µs, coalesce sizes in requests).
pub(crate) struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Count one sample.
    pub(crate) fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time wire snapshot (trailing empty buckets trimmed).
    pub(crate) fn report(&self) -> HistogramReport {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramReport {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Wire snapshot of one [`Histogram`]. Part of the protocol-v4
/// contract: `buckets[0]` counts zero samples, `buckets[i]` counts
/// samples in `[2^(i-1), 2^i)`, trailing empty buckets are trimmed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramReport {
    /// An empty histogram (what a fresh server reports).
    pub fn empty() -> HistogramReport {
        HistogramReport {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
        }
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`), `None` when empty. Bucketing bounds the
    /// error to 2x — good enough for a dashboard, not for the loadgen's
    /// exact client-side quantiles.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // Nearest-rank with both ends pinned: `ceil(q * count)` is 0 at
        // q = 0.0 (which would make `seen >= rank` fire before any
        // sample is seen — an empty leading bucket would satisfy it)
        // and can exceed `count` when `q * count` rounds up past it, so
        // clamp into the valid rank range [1, count].
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { (1u64 << i) - 1 });
            }
        }
        Some(u64::MAX)
    }
}

/// The registry-wide counter set. One per [`Registry`](crate::Registry)
/// (never process-global, so concurrently running registries — e.g.
/// parallel tests — observe only their own traffic).
pub(crate) struct ServeMetrics {
    pub(crate) classify: Histogram,
    pub(crate) similar: Histogram,
    pub(crate) embed_row: Histogram,
    pub(crate) stats: Histogram,
    pub(crate) metrics: Histogram,
    pub(crate) apply_updates: Histogram,
    /// Sizes of coalesced read runs (per `execute_batch` run, in
    /// requests answered against one snapshot resolution).
    pub(crate) coalesce: Histogram,
    /// Write batches rejected by back-pressure
    /// ([`ServeError::Overloaded`](crate::ServeError::Overloaded)).
    pub(crate) overloaded: AtomicU64,
    /// IVF shard indexes built lazily by a query probe (builds via
    /// [`Snapshot::warm_ann_indexes`](crate::Snapshot::warm_ann_indexes)
    /// are deliberate pre-warming and are not counted).
    pub(crate) ivf_builds: AtomicU64,
    /// IVF probes that found a shard's index already cached (counted
    /// per shard block touched, not per request).
    pub(crate) ivf_hits: AtomicU64,
    /// WAL records shipped to followers by the replication listener.
    pub(crate) shipped_records: AtomicU64,
    /// Encoded record bytes shipped to followers (frame payloads, not
    /// TCP bytes).
    pub(crate) shipped_bytes: AtomicU64,
    /// Follower connections currently attached to the replication
    /// listener.
    pub(crate) follower_conns: AtomicU64,
    /// Set once a replication listener is attached to this registry; a
    /// leader's reports carry a `replication` block only from then on.
    pub(crate) replicating: AtomicBool,
}

impl ServeMetrics {
    pub(crate) fn new() -> ServeMetrics {
        ServeMetrics {
            classify: Histogram::new(),
            similar: Histogram::new(),
            embed_row: Histogram::new(),
            stats: Histogram::new(),
            metrics: Histogram::new(),
            apply_updates: Histogram::new(),
            coalesce: Histogram::new(),
            overloaded: AtomicU64::new(0),
            ivf_builds: AtomicU64::new(0),
            ivf_hits: AtomicU64::new(0),
            shipped_records: AtomicU64::new(0),
            shipped_bytes: AtomicU64::new(0),
            follower_conns: AtomicU64::new(0),
            replicating: AtomicBool::new(false),
        }
    }

    /// The latency histogram a request's execution is recorded into.
    pub(crate) fn request_histogram(&self, request: &Request) -> &Histogram {
        match request {
            Request::Classify { .. } => &self.classify,
            Request::Similar { .. } => &self.similar,
            Request::EmbedRow { .. } => &self.embed_row,
            Request::Stats { .. } => &self.stats,
            Request::Metrics => &self.metrics,
            Request::ApplyUpdates { .. } => &self.apply_updates,
        }
    }
}

/// Microseconds elapsed since `start`, saturating.
pub(crate) fn elapsed_us(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Answer to [`Request::Metrics`](crate::Request::Metrics) (protocol
/// v4). The per-graph fields (`epoch` … `updates_applied`) describe the
/// addressed graph exactly as [`GraphReport`](crate::GraphReport) does
/// — the two endpoints never disagree — while the histograms and
/// counters describe the whole registry (every graph's traffic).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    pub graph: String,
    /// Published epoch of the addressed graph.
    pub epoch: u64,
    /// Oldest epoch still retained for `at_epoch` reads (same value
    /// `Stats` reports).
    pub oldest_epoch: u64,
    /// Retained epochs in the history ring right now
    /// (`epoch - oldest_epoch + 1`).
    pub history_depth: usize,
    /// Shard blocks of the published snapshot with a built-and-cached
    /// IVF index (same value `Stats` reports; counting never forces a
    /// build).
    pub ann_indexed_shards: usize,
    pub queries_served: u64,
    pub updates_applied: u64,
    /// Per-request-type latency histograms, in microseconds.
    pub classify_us: HistogramReport,
    pub similar_us: HistogramReport,
    pub embed_row_us: HistogramReport,
    pub stats_us: HistogramReport,
    pub metrics_us: HistogramReport,
    pub apply_updates_us: HistogramReport,
    /// Coalesced read-run sizes (requests per run).
    pub coalesce: HistogramReport,
    /// Write batches rejected with `Overloaded` by back-pressure.
    pub overloaded: u64,
    /// WAL data fsyncs performed by appends (0 on an in-memory
    /// registry).
    pub wal_fsyncs: u64,
    /// IVF shard indexes built lazily by query probes.
    pub ivf_builds: u64,
    /// IVF probes answered from an already-cached shard index.
    pub ivf_hits: u64,
    /// Replication role and lag gauges (protocol v5). `None` — the key
    /// omitted on the wire — unless this registry is a replication
    /// leader or follower, so pre-v5 reports stay byte-identical.
    pub replication: Option<ReplicationReport>,
}

// Hand-written wire encoding for `MetricsReport`: the derive would
// always emit a `replication` key, changing every v4 frame. Emitting
// the key only when the block is present keeps pre-v5 reports
// byte-identical (`tests/wire_roundtrip.rs` pins the exact bytes), and
// v4 frames decode with `replication: None`.
impl Serialize for MetricsReport {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let mut fields = vec![
            ("graph".to_string(), self.graph.to_value()),
            ("epoch".to_string(), self.epoch.to_value()),
            ("oldest_epoch".to_string(), self.oldest_epoch.to_value()),
            ("history_depth".to_string(), self.history_depth.to_value()),
            (
                "ann_indexed_shards".to_string(),
                self.ann_indexed_shards.to_value(),
            ),
            ("queries_served".to_string(), self.queries_served.to_value()),
            (
                "updates_applied".to_string(),
                self.updates_applied.to_value(),
            ),
            ("classify_us".to_string(), self.classify_us.to_value()),
            ("similar_us".to_string(), self.similar_us.to_value()),
            ("embed_row_us".to_string(), self.embed_row_us.to_value()),
            ("stats_us".to_string(), self.stats_us.to_value()),
            ("metrics_us".to_string(), self.metrics_us.to_value()),
            (
                "apply_updates_us".to_string(),
                self.apply_updates_us.to_value(),
            ),
            ("coalesce".to_string(), self.coalesce.to_value()),
            ("overloaded".to_string(), self.overloaded.to_value()),
            ("wal_fsyncs".to_string(), self.wal_fsyncs.to_value()),
            ("ivf_builds".to_string(), self.ivf_builds.to_value()),
            ("ivf_hits".to_string(), self.ivf_hits.to_value()),
        ];
        if let Some(r) = &self.replication {
            fields.push(("replication".to_string(), r.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for MetricsReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        use serde::de_field;
        Ok(MetricsReport {
            graph: Deserialize::from_value(de_field(v, "graph")?)?,
            epoch: Deserialize::from_value(de_field(v, "epoch")?)?,
            oldest_epoch: Deserialize::from_value(de_field(v, "oldest_epoch")?)?,
            history_depth: Deserialize::from_value(de_field(v, "history_depth")?)?,
            ann_indexed_shards: Deserialize::from_value(de_field(v, "ann_indexed_shards")?)?,
            queries_served: Deserialize::from_value(de_field(v, "queries_served")?)?,
            updates_applied: Deserialize::from_value(de_field(v, "updates_applied")?)?,
            classify_us: Deserialize::from_value(de_field(v, "classify_us")?)?,
            similar_us: Deserialize::from_value(de_field(v, "similar_us")?)?,
            embed_row_us: Deserialize::from_value(de_field(v, "embed_row_us")?)?,
            stats_us: Deserialize::from_value(de_field(v, "stats_us")?)?,
            metrics_us: Deserialize::from_value(de_field(v, "metrics_us")?)?,
            apply_updates_us: Deserialize::from_value(de_field(v, "apply_updates_us")?)?,
            coalesce: Deserialize::from_value(de_field(v, "coalesce")?)?,
            overloaded: Deserialize::from_value(de_field(v, "overloaded")?)?,
            wal_fsyncs: Deserialize::from_value(de_field(v, "wal_fsyncs")?)?,
            ivf_builds: Deserialize::from_value(de_field(v, "ivf_builds")?)?,
            ivf_hits: Deserialize::from_value(de_field(v, "ivf_hits")?)?,
            replication: Deserialize::from_value(de_field(v, "replication")?)?,
        })
    }
}

/// Which side of the replication stream a server is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationRole {
    Leader,
    Follower,
}

/// The additive protocol-v5 `replication` block carried by both
/// [`GraphReport`](crate::GraphReport) (`Stats`) and [`MetricsReport`]
/// (`Metrics`). Both endpoints compute it from the same registry-wide
/// state — they never disagree at quiescence — so lag gauges are
/// registry-wide (worst graph), not per addressed graph.
///
/// A leader fills the `shipped_*` counters and `follower_conns`; a
/// follower fills the lag gauges from its pull loop's last heartbeat.
/// Fields that belong to the other role read zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationReport {
    pub role: ReplicationRole,
    /// Follower: the pull loop currently holds a live leader
    /// connection. Leader: at least one follower is attached.
    pub connected: bool,
    /// Leader: WAL records shipped to followers (all connections,
    /// lifetime).
    pub shipped_records: u64,
    /// Leader: encoded record bytes shipped to followers.
    pub shipped_bytes: u64,
    /// Leader: follower connections attached right now.
    pub follower_conns: u64,
    /// Follower: published-epoch lag behind the leader, worst graph
    /// (from the last heartbeat; 0 while caught up or not yet told).
    pub lag_epochs: u64,
    /// Follower: LSN delta between the leader's append head and the
    /// local durable high water (from the last heartbeat).
    pub lag_lsns: u64,
    /// The local WAL high-water LSN (next LSN to be assigned): the
    /// resume point a restart would request. Both roles report it.
    pub last_durable_lsn: u64,
    /// The leader epoch (replication fencing token) this node serves or
    /// replicates under — 0 until the data dir has ever seen a promoted
    /// leader. Both roles report it.
    pub leader_epoch: u64,
    /// Leader: a peer proved a newer leader epoch exists, so this
    /// deposed leader refuses writes ([`ErrorCode::StaleLeader`](crate::ErrorCode::StaleLeader))
    /// and ships nothing. Always `false` on a follower.
    pub fenced: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        let r = h.report();
        assert_eq!(r.count, 9);
        assert_eq!(r.sum, 0 + 1 + 2 + 3 + 4 + 7 + 8 + 1023 + 1024);
        assert_eq!(r.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(r.buckets[1], 1, "1 in [1,2)");
        assert_eq!(r.buckets[2], 2, "2,3 in [2,4)");
        assert_eq!(r.buckets[3], 2, "4 and 7 in [4,8)");
        assert_eq!(r.buckets[4], 1, "8 in [8,16)");
        assert_eq!(r.buckets[10], 1, "1023 in [512,1024)");
        assert_eq!(r.buckets[11], 1, "1024 in [1024,2048)");
        assert_eq!(r.buckets.len(), 12, "trailing zeros trimmed");
    }

    #[test]
    fn histogram_report_summaries() {
        let h = Histogram::new();
        assert_eq!(h.report(), HistogramReport::empty());
        assert_eq!(HistogramReport::empty().mean(), None);
        assert_eq!(HistogramReport::empty().quantile_upper_bound(0.5), None);
        for v in 0..100u64 {
            h.record(v);
        }
        let r = h.report();
        assert_eq!(r.mean(), Some(49.5));
        // The median of 0..100 is ~50; its bucket [32, 64) upper bound.
        assert_eq!(r.quantile_upper_bound(0.5), Some(63));
        assert_eq!(r.quantile_upper_bound(0.0), Some(0));
        assert_eq!(r.quantile_upper_bound(1.0), Some(127));
    }

    #[test]
    fn quantile_edge_cases_do_not_underflow() {
        // count == 0: every quantile is None.
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(HistogramReport::empty().quantile_upper_bound(q), None);
        }
        // count == 1: every quantile names the single sample's bucket,
        // including q = 0.0 (rank 0 must clamp up to 1, not fire on an
        // empty leading bucket) and q = 1.0.
        let h = Histogram::new();
        h.record(100); // bucket [64, 128)
        let r = h.report();
        assert_eq!(r.count, 1);
        for q in [0.0, 0.001, 0.5, 1.0] {
            assert_eq!(r.quantile_upper_bound(q), Some(127), "q={q}");
        }
        // A q = 0.0 rank of 0 would incorrectly match bucket 0 here,
        // because the first bucket is empty (`seen >= 0` holds at i=0).
        let h = Histogram::new();
        h.record(1000);
        assert_eq!(h.report().quantile_upper_bound(0.0), Some(1023));
        // Out-of-range q clamps instead of panicking or overflowing.
        assert_eq!(h.report().quantile_upper_bound(-3.0), Some(1023));
        assert_eq!(h.report().quantile_upper_bound(7.0), Some(1023));
    }
}
