//! Protocol-v6 binary frame codec.
//!
//! From [`wire::BINARY_FRAME_VERSION`](crate::wire::BINARY_FRAME_VERSION)
//! on, a negotiated connection carries its post-handshake frames in a
//! compact tagged binary layout instead of JSON. The handshake itself
//! ([`ClientFrame::Hello`], [`ServerFrame::HelloAck`], and any
//! pre-negotiation [`ServerFrame::Error`]) is **always JSON** in both
//! directions — the codec for the rest of the connection is implied by
//! the version the `HelloAck` carries, so there is never a frame whose
//! encoding depends on state the peer has not yet seen.
//!
//! # Layout
//!
//! A binary frame body is
//!
//! ```text
//! [crc32 u32 LE over payload][payload]
//! ```
//!
//! checked on decode (the transport's big-endian length prefix remains
//! the stream framing, unchanged since v1). The payload is built from
//! the same primitives as the WAL and replication streams
//! ([`gee_graph::io::frame`]): little-endian fixed-width integers,
//! `u32`-length-prefixed UTF-8 strings, and one leading tag byte per
//! enum. `Option` fields carry a presence byte. Update batches reuse the
//! WAL's update encoding verbatim ([`crate::wal`]), so an update has
//! exactly one binary encoding in the system.
//!
//! Like every protocol bump before it, v6 is **additive**: JSON frames
//! for v1–v5 connections are untouched (pinned byte-for-byte by
//! `tests/wire_roundtrip.rs`), and a v6 client talking to a v5 server
//! negotiates down to JSON automatically.

use gee_graph::io::frame::{self, Cursor, FrameError};

use crate::engine::{Envelope, GraphReport, Request, Response};
use crate::metrics::{HistogramReport, MetricsReport, ReplicationReport, ReplicationRole};
use crate::registry::Update;
use crate::wal::{decode_update, encode_update, MAX_NAME_LEN};
use crate::wire::{self, ClientFrame, ServerFrame, BINARY_FRAME_VERSION, MAX_FRAME_LEN};
use crate::{SearchPolicy, ServeError};

// Frame tags.
const CF_HELLO: u8 = 1;
const CF_BATCH: u8 = 2;
const CF_GOODBYE: u8 = 3;
const SF_HELLO_ACK: u8 = 1;
const SF_BATCH: u8 = 2;
const SF_ERROR: u8 = 3;

// Request tags.
const REQ_CLASSIFY: u8 = 1;
const REQ_SIMILAR: u8 = 2;
const REQ_EMBED_ROW: u8 = 3;
const REQ_APPLY_UPDATES: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_METRICS: u8 = 6;

// Response tags.
const RESP_CLASSES: u8 = 1;
const RESP_NEIGHBORS: u8 = 2;
const RESP_ROW: u8 = 3;
const RESP_APPLIED: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_METRICS: u8 = 6;

// SearchPolicy tags.
const SEARCH_EXACT: u8 = 1;
const SEARCH_ANN: u8 = 2;

// ReplicationRole tags.
const ROLE_LEADER: u8 = 1;
const ROLE_FOLLOWER: u8 = 2;

/// Which encoding a negotiated connection speaks after the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameCodec {
    /// Externally-tagged compact JSON (protocol v1–v5).
    Json,
    /// Tagged binary with a CRC-32 body checksum (protocol v6+).
    Binary,
}

impl FrameCodec {
    /// The codec implied by a negotiated protocol version.
    pub fn for_version(version: u32) -> FrameCodec {
        if version >= BINARY_FRAME_VERSION {
            FrameCodec::Binary
        } else {
            FrameCodec::Json
        }
    }

    /// Encode a post-handshake client frame under this codec.
    pub fn encode_client(&self, frame: &ClientFrame) -> Vec<u8> {
        match self {
            FrameCodec::Json => wire::encode(frame),
            FrameCodec::Binary => encode_client_frame(frame),
        }
    }

    /// Decode a post-handshake client frame under this codec.
    pub fn decode_client(&self, bytes: &[u8]) -> Result<ClientFrame, ServeError> {
        match self {
            FrameCodec::Json => wire::decode(bytes),
            FrameCodec::Binary => decode_client_frame(bytes),
        }
    }

    /// Encode a post-handshake server frame under this codec.
    pub fn encode_server(&self, frame: &ServerFrame) -> Vec<u8> {
        match self {
            FrameCodec::Json => wire::encode(frame),
            FrameCodec::Binary => encode_server_frame(frame),
        }
    }

    /// Decode a post-handshake server frame under this codec.
    pub fn decode_server(&self, bytes: &[u8]) -> Result<ServerFrame, ServeError> {
        match self {
            FrameCodec::Json => wire::decode(bytes),
            FrameCodec::Binary => decode_server_frame(bytes),
        }
    }
}

/// Wrap a payload with its CRC-32 (the binary frame body).
fn seal(payload: Vec<u8>) -> Vec<u8> {
    let mut body = Vec::with_capacity(payload.len() + 4);
    frame::put_u32(&mut body, frame::crc32(&payload));
    body.extend_from_slice(&payload);
    body
}

/// Strip and verify the CRC-32, returning the payload.
fn unseal(bytes: &[u8]) -> Result<&[u8], ServeError> {
    if bytes.len() < 4 {
        return Err(ServeError::protocol(format!(
            "binary frame of {} bytes cannot hold a checksum",
            bytes.len()
        )));
    }
    let want = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let payload = &bytes[4..];
    let got = frame::crc32(payload);
    if want != got {
        return Err(ServeError::protocol(format!(
            "binary frame checksum mismatch: header {want:#010x}, payload {got:#010x}"
        )));
    }
    Ok(payload)
}

fn protocol(e: FrameError) -> ServeError {
    ServeError::protocol(format!("undecodable binary frame: {e}"))
}

/// Encode a [`ClientFrame`] as a binary body. `Hello` is encodable for
/// completeness/tests, but on a live connection the handshake always
/// rides JSON (see the module docs).
pub fn encode_client_frame(frame: &ClientFrame) -> Vec<u8> {
    let mut p = Vec::new();
    match frame {
        ClientFrame::Hello {
            min_version,
            max_version,
        } => {
            frame::put_u8(&mut p, CF_HELLO);
            frame::put_u32(&mut p, *min_version);
            frame::put_u32(&mut p, *max_version);
        }
        ClientFrame::Batch { id, requests } => {
            frame::put_u8(&mut p, CF_BATCH);
            frame::put_u64(&mut p, *id);
            frame::put_u32(&mut p, requests.len() as u32);
            for envelope in requests {
                encode_envelope(&mut p, envelope);
            }
        }
        ClientFrame::Goodbye => frame::put_u8(&mut p, CF_GOODBYE),
    }
    seal(p)
}

/// Decode a binary [`ClientFrame`] body (inverse of
/// [`encode_client_frame`]).
pub fn decode_client_frame(bytes: &[u8]) -> Result<ClientFrame, ServeError> {
    let payload = unseal(bytes)?;
    let mut c = Cursor::new(payload);
    let frame = (|| -> Result<ClientFrame, FrameError> {
        let frame = match c.take_u8("client frame tag")? {
            CF_HELLO => ClientFrame::Hello {
                min_version: c.take_u32("min_version")?,
                max_version: c.take_u32("max_version")?,
            },
            CF_BATCH => {
                let id = c.take_u64("batch id")?;
                let count = c.take_count(2, "request count")?;
                let mut requests = Vec::with_capacity(count);
                for _ in 0..count {
                    requests.push(decode_envelope(&mut c)?);
                }
                ClientFrame::Batch { id, requests }
            }
            CF_GOODBYE => ClientFrame::Goodbye,
            other => {
                return Err(FrameError::malformed(format!(
                    "unknown client frame tag {other}"
                )));
            }
        };
        c.finish("client frame")?;
        Ok(frame)
    })();
    frame.map_err(protocol)
}

/// Encode a [`ServerFrame`] as a binary body. `HelloAck` and the
/// pre-negotiation `Error` are encodable for completeness/tests, but on
/// a live connection the handshake always rides JSON.
pub fn encode_server_frame(frame: &ServerFrame) -> Vec<u8> {
    let mut p = Vec::new();
    match frame {
        ServerFrame::HelloAck { version } => {
            frame::put_u8(&mut p, SF_HELLO_ACK);
            frame::put_u32(&mut p, *version);
        }
        ServerFrame::Batch { id, results } => {
            frame::put_u8(&mut p, SF_BATCH);
            frame::put_u64(&mut p, *id);
            frame::put_u32(&mut p, results.len() as u32);
            for result in results {
                match result {
                    Ok(response) => {
                        frame::put_u8(&mut p, 1);
                        encode_response(&mut p, response);
                    }
                    Err(error) => {
                        frame::put_u8(&mut p, 0);
                        encode_error(&mut p, error);
                    }
                }
            }
        }
        ServerFrame::Error { error } => {
            frame::put_u8(&mut p, SF_ERROR);
            encode_error(&mut p, error);
        }
    }
    seal(p)
}

/// Decode a binary [`ServerFrame`] body (inverse of
/// [`encode_server_frame`]).
pub fn decode_server_frame(bytes: &[u8]) -> Result<ServerFrame, ServeError> {
    let payload = unseal(bytes)?;
    let mut c = Cursor::new(payload);
    let frame = (|| -> Result<ServerFrame, FrameError> {
        let frame = match c.take_u8("server frame tag")? {
            SF_HELLO_ACK => ServerFrame::HelloAck {
                version: c.take_u32("version")?,
            },
            SF_BATCH => {
                let id = c.take_u64("batch id")?;
                let count = c.take_count(1, "result count")?;
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    results.push(match c.take_u8("result discriminant")? {
                        1 => Ok(decode_response(&mut c)?),
                        0 => Err(decode_error(&mut c)?),
                        other => {
                            return Err(FrameError::malformed(format!(
                                "result discriminant {other}"
                            )));
                        }
                    });
                }
                ServerFrame::Batch { id, results }
            }
            SF_ERROR => ServerFrame::Error {
                error: decode_error(&mut c)?,
            },
            other => {
                return Err(FrameError::malformed(format!(
                    "unknown server frame tag {other}"
                )));
            }
        };
        c.finish("server frame")?;
        Ok(frame)
    })();
    frame.map_err(protocol)
}

fn encode_envelope(p: &mut Vec<u8>, envelope: &Envelope) {
    frame::put_str(p, &envelope.graph);
    encode_request(p, &envelope.request);
}

fn decode_envelope(c: &mut Cursor<'_>) -> Result<Envelope, FrameError> {
    Ok(Envelope {
        graph: c.take_str(MAX_NAME_LEN, "graph name")?,
        request: decode_request(c)?,
    })
}

fn encode_opt_u64(p: &mut Vec<u8>, value: Option<u64>) {
    match value {
        Some(v) => {
            frame::put_u8(p, 1);
            frame::put_u64(p, v);
        }
        None => frame::put_u8(p, 0),
    }
}

fn decode_opt_u64(c: &mut Cursor<'_>, what: &str) -> Result<Option<u64>, FrameError> {
    match c.take_u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(c.take_u64(what)?)),
        other => Err(FrameError::malformed(format!(
            "{what} presence byte {other}"
        ))),
    }
}

fn encode_opt_search(p: &mut Vec<u8>, search: &Option<SearchPolicy>) {
    match search {
        None => frame::put_u8(p, 0),
        Some(SearchPolicy::Exact) => {
            frame::put_u8(p, 1);
            frame::put_u8(p, SEARCH_EXACT);
        }
        Some(SearchPolicy::Ann { nprobe, refine }) => {
            frame::put_u8(p, 1);
            frame::put_u8(p, SEARCH_ANN);
            frame::put_u64(p, *nprobe as u64);
            frame::put_u64(p, *refine as u64);
        }
    }
}

fn decode_opt_search(c: &mut Cursor<'_>) -> Result<Option<SearchPolicy>, FrameError> {
    match c.take_u8("search presence")? {
        0 => Ok(None),
        1 => Ok(Some(match c.take_u8("search tag")? {
            SEARCH_EXACT => SearchPolicy::Exact,
            SEARCH_ANN => SearchPolicy::Ann {
                nprobe: take_usize(c, "nprobe")?,
                refine: take_usize(c, "refine")?,
            },
            other => {
                return Err(FrameError::malformed(format!("unknown search tag {other}")));
            }
        })),
        other => Err(FrameError::malformed(format!(
            "search presence byte {other}"
        ))),
    }
}

/// `usize` rides the wire as `u64`; reject values this build cannot
/// represent instead of truncating.
fn take_usize(c: &mut Cursor<'_>, what: &str) -> Result<usize, FrameError> {
    let v = c.take_u64(what)?;
    usize::try_from(v).map_err(|_| FrameError::malformed(format!("{what} {v} overflows usize")))
}

fn encode_request(p: &mut Vec<u8>, request: &Request) {
    match request {
        Request::Classify {
            vertices,
            k,
            at_epoch,
            search,
        } => {
            frame::put_u8(p, REQ_CLASSIFY);
            frame::put_u32(p, vertices.len() as u32);
            for &v in vertices {
                frame::put_u32(p, v);
            }
            frame::put_u64(p, *k as u64);
            encode_opt_u64(p, *at_epoch);
            encode_opt_search(p, search);
        }
        Request::Similar {
            vertex,
            top,
            at_epoch,
            search,
        } => {
            frame::put_u8(p, REQ_SIMILAR);
            frame::put_u32(p, *vertex);
            frame::put_u64(p, *top as u64);
            encode_opt_u64(p, *at_epoch);
            encode_opt_search(p, search);
        }
        Request::EmbedRow { vertex, at_epoch } => {
            frame::put_u8(p, REQ_EMBED_ROW);
            frame::put_u32(p, *vertex);
            encode_opt_u64(p, *at_epoch);
        }
        Request::ApplyUpdates { updates } => {
            frame::put_u8(p, REQ_APPLY_UPDATES);
            frame::put_u32(p, updates.len() as u32);
            for u in updates {
                encode_update(p, u);
            }
        }
        Request::Stats { at_epoch } => {
            frame::put_u8(p, REQ_STATS);
            encode_opt_u64(p, *at_epoch);
        }
        Request::Metrics => frame::put_u8(p, REQ_METRICS),
    }
}

fn decode_request(c: &mut Cursor<'_>) -> Result<Request, FrameError> {
    Ok(match c.take_u8("request tag")? {
        REQ_CLASSIFY => {
            let count = c.take_count(4, "vertex count")?;
            let mut vertices = Vec::with_capacity(count);
            for _ in 0..count {
                vertices.push(c.take_u32("vertex")?);
            }
            Request::Classify {
                vertices,
                k: take_usize(c, "k")?,
                at_epoch: decode_opt_u64(c, "at_epoch")?,
                search: decode_opt_search(c)?,
            }
        }
        REQ_SIMILAR => Request::Similar {
            vertex: c.take_u32("vertex")?,
            top: take_usize(c, "top")?,
            at_epoch: decode_opt_u64(c, "at_epoch")?,
            search: decode_opt_search(c)?,
        },
        REQ_EMBED_ROW => Request::EmbedRow {
            vertex: c.take_u32("vertex")?,
            at_epoch: decode_opt_u64(c, "at_epoch")?,
        },
        REQ_APPLY_UPDATES => {
            let count = c.take_count(6, "update count")?;
            let mut updates: Vec<Update> = Vec::with_capacity(count);
            for _ in 0..count {
                updates.push(decode_update(c)?);
            }
            Request::ApplyUpdates { updates }
        }
        REQ_STATS => Request::Stats {
            at_epoch: decode_opt_u64(c, "at_epoch")?,
        },
        REQ_METRICS => Request::Metrics,
        other => {
            return Err(FrameError::malformed(format!(
                "unknown request tag {other}"
            )));
        }
    })
}

fn encode_response(p: &mut Vec<u8>, response: &Response) {
    match response {
        Response::Classes(classes) => {
            frame::put_u8(p, RESP_CLASSES);
            frame::put_u32(p, classes.len() as u32);
            for &class in classes {
                frame::put_u32(p, class);
            }
        }
        Response::Neighbors(neighbors) => {
            frame::put_u8(p, RESP_NEIGHBORS);
            frame::put_u32(p, neighbors.len() as u32);
            for &(v, d) in neighbors {
                frame::put_u32(p, v);
                frame::put_f64(p, d);
            }
        }
        Response::Row(row) => {
            frame::put_u8(p, RESP_ROW);
            frame::put_u32(p, row.len() as u32);
            for &x in row {
                frame::put_f64(p, x);
            }
        }
        Response::Applied { applied, epoch } => {
            frame::put_u8(p, RESP_APPLIED);
            frame::put_u64(p, *applied as u64);
            frame::put_u64(p, *epoch);
        }
        Response::Stats(report) => {
            frame::put_u8(p, RESP_STATS);
            encode_graph_report(p, report);
        }
        Response::Metrics(report) => {
            frame::put_u8(p, RESP_METRICS);
            encode_metrics_report(p, report);
        }
    }
}

fn decode_response(c: &mut Cursor<'_>) -> Result<Response, FrameError> {
    Ok(match c.take_u8("response tag")? {
        RESP_CLASSES => {
            let count = c.take_count(4, "class count")?;
            let mut classes = Vec::with_capacity(count);
            for _ in 0..count {
                classes.push(c.take_u32("class")?);
            }
            Response::Classes(classes)
        }
        RESP_NEIGHBORS => {
            let count = c.take_count(12, "neighbor count")?;
            let mut neighbors = Vec::with_capacity(count);
            for _ in 0..count {
                let v = c.take_u32("neighbor vertex")?;
                let d = c.take_f64("neighbor distance")?;
                neighbors.push((v, d));
            }
            Response::Neighbors(neighbors)
        }
        RESP_ROW => {
            let count = c.take_count(8, "row length")?;
            let mut row = Vec::with_capacity(count);
            for _ in 0..count {
                row.push(c.take_f64("row value")?);
            }
            Response::Row(row)
        }
        RESP_APPLIED => Response::Applied {
            applied: take_usize(c, "applied")?,
            epoch: c.take_u64("epoch")?,
        },
        RESP_STATS => Response::Stats(decode_graph_report(c)?),
        RESP_METRICS => Response::Metrics(decode_metrics_report(c)?),
        other => {
            return Err(FrameError::malformed(format!(
                "unknown response tag {other}"
            )));
        }
    })
}

fn encode_opt_replication(p: &mut Vec<u8>, replication: &Option<ReplicationReport>) {
    match replication {
        None => frame::put_u8(p, 0),
        Some(r) => {
            frame::put_u8(p, 1);
            frame::put_u8(
                p,
                match r.role {
                    ReplicationRole::Leader => ROLE_LEADER,
                    ReplicationRole::Follower => ROLE_FOLLOWER,
                },
            );
            frame::put_u8(p, u8::from(r.connected));
            frame::put_u64(p, r.shipped_records);
            frame::put_u64(p, r.shipped_bytes);
            frame::put_u64(p, r.follower_conns);
            frame::put_u64(p, r.lag_epochs);
            frame::put_u64(p, r.lag_lsns);
            frame::put_u64(p, r.last_durable_lsn);
            frame::put_u64(p, r.leader_epoch);
            frame::put_u8(p, u8::from(r.fenced));
        }
    }
}

fn decode_opt_replication(c: &mut Cursor<'_>) -> Result<Option<ReplicationReport>, FrameError> {
    match c.take_u8("replication presence")? {
        0 => Ok(None),
        1 => {
            let role = match c.take_u8("replication role")? {
                ROLE_LEADER => ReplicationRole::Leader,
                ROLE_FOLLOWER => ReplicationRole::Follower,
                other => {
                    return Err(FrameError::malformed(format!(
                        "unknown replication role {other}"
                    )));
                }
            };
            let connected = match c.take_u8("connected")? {
                0 => false,
                1 => true,
                other => {
                    return Err(FrameError::malformed(format!("connected byte {other}")));
                }
            };
            Ok(Some(ReplicationReport {
                role,
                connected,
                shipped_records: c.take_u64("shipped_records")?,
                shipped_bytes: c.take_u64("shipped_bytes")?,
                follower_conns: c.take_u64("follower_conns")?,
                lag_epochs: c.take_u64("lag_epochs")?,
                lag_lsns: c.take_u64("lag_lsns")?,
                last_durable_lsn: c.take_u64("last_durable_lsn")?,
                leader_epoch: c.take_u64("leader_epoch")?,
                fenced: match c.take_u8("fenced")? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(FrameError::malformed(format!("fenced byte {other}")));
                    }
                },
            }))
        }
        other => Err(FrameError::malformed(format!(
            "replication presence byte {other}"
        ))),
    }
}

fn encode_graph_report(p: &mut Vec<u8>, r: &GraphReport) {
    frame::put_str(p, &r.graph);
    frame::put_u64(p, r.epoch);
    frame::put_u64(p, r.oldest_epoch);
    frame::put_u64(p, r.num_vertices as u64);
    frame::put_u64(p, r.dim as u64);
    frame::put_u64(p, r.num_shards as u64);
    frame::put_u64(p, r.num_labeled as u64);
    frame::put_u64(p, r.ann_indexed_shards as u64);
    frame::put_u64(p, r.queries_served);
    frame::put_u64(p, r.updates_applied);
    encode_opt_replication(p, &r.replication);
}

fn decode_graph_report(c: &mut Cursor<'_>) -> Result<GraphReport, FrameError> {
    Ok(GraphReport {
        graph: c.take_str(MAX_NAME_LEN, "graph name")?,
        epoch: c.take_u64("epoch")?,
        oldest_epoch: c.take_u64("oldest_epoch")?,
        num_vertices: take_usize(c, "num_vertices")?,
        dim: take_usize(c, "dim")?,
        num_shards: take_usize(c, "num_shards")?,
        num_labeled: take_usize(c, "num_labeled")?,
        ann_indexed_shards: take_usize(c, "ann_indexed_shards")?,
        queries_served: c.take_u64("queries_served")?,
        updates_applied: c.take_u64("updates_applied")?,
        replication: decode_opt_replication(c)?,
    })
}

fn encode_histogram(p: &mut Vec<u8>, h: &HistogramReport) {
    frame::put_u32(p, h.buckets.len() as u32);
    for &b in &h.buckets {
        frame::put_u64(p, b);
    }
    frame::put_u64(p, h.count);
    frame::put_u64(p, h.sum);
}

fn decode_histogram(c: &mut Cursor<'_>) -> Result<HistogramReport, FrameError> {
    let count = c.take_count(8, "bucket count")?;
    let mut buckets = Vec::with_capacity(count);
    for _ in 0..count {
        buckets.push(c.take_u64("bucket")?);
    }
    Ok(HistogramReport {
        buckets,
        count: c.take_u64("histogram count")?,
        sum: c.take_u64("histogram sum")?,
    })
}

fn encode_metrics_report(p: &mut Vec<u8>, r: &MetricsReport) {
    frame::put_str(p, &r.graph);
    frame::put_u64(p, r.epoch);
    frame::put_u64(p, r.oldest_epoch);
    frame::put_u64(p, r.history_depth as u64);
    frame::put_u64(p, r.ann_indexed_shards as u64);
    frame::put_u64(p, r.queries_served);
    frame::put_u64(p, r.updates_applied);
    encode_histogram(p, &r.classify_us);
    encode_histogram(p, &r.similar_us);
    encode_histogram(p, &r.embed_row_us);
    encode_histogram(p, &r.stats_us);
    encode_histogram(p, &r.metrics_us);
    encode_histogram(p, &r.apply_updates_us);
    encode_histogram(p, &r.coalesce);
    frame::put_u64(p, r.overloaded);
    frame::put_u64(p, r.wal_fsyncs);
    frame::put_u64(p, r.ivf_builds);
    frame::put_u64(p, r.ivf_hits);
    encode_opt_replication(p, &r.replication);
}

fn decode_metrics_report(c: &mut Cursor<'_>) -> Result<MetricsReport, FrameError> {
    Ok(MetricsReport {
        graph: c.take_str(MAX_NAME_LEN, "graph name")?,
        epoch: c.take_u64("epoch")?,
        oldest_epoch: c.take_u64("oldest_epoch")?,
        history_depth: take_usize(c, "history_depth")?,
        ann_indexed_shards: take_usize(c, "ann_indexed_shards")?,
        queries_served: c.take_u64("queries_served")?,
        updates_applied: c.take_u64("updates_applied")?,
        classify_us: decode_histogram(c)?,
        similar_us: decode_histogram(c)?,
        embed_row_us: decode_histogram(c)?,
        stats_us: decode_histogram(c)?,
        metrics_us: decode_histogram(c)?,
        apply_updates_us: decode_histogram(c)?,
        coalesce: decode_histogram(c)?,
        overloaded: c.take_u64("overloaded")?,
        wal_fsyncs: c.take_u64("wal_fsyncs")?,
        ivf_builds: c.take_u64("ivf_builds")?,
        ivf_hits: c.take_u64("ivf_hits")?,
        replication: decode_opt_replication(c)?,
    })
}

/// The stable [`ErrorCode`](crate::ErrorCode) doubles as the binary
/// tag, so the numeric wire contract and the binary encoding can never
/// disagree.
fn encode_error(p: &mut Vec<u8>, error: &ServeError) {
    frame::put_u32(p, u32::from(error.code().as_u16()));
    match error {
        ServeError::UnknownGraph { graph } => frame::put_str(p, graph),
        ServeError::VertexOutOfRange {
            vertex,
            num_vertices,
        } => {
            frame::put_u32(p, *vertex);
            frame::put_u64(p, *num_vertices as u64);
        }
        ServeError::ClassOutOfRange { class, num_classes } => {
            frame::put_u32(p, *class);
            frame::put_u64(p, *num_classes as u64);
        }
        ServeError::ZeroLimit { param } => frame::put_str(p, param),
        ServeError::NoLabeledVertices { graph } => frame::put_str(p, graph),
        ServeError::NonFinite { param } => frame::put_str(p, param),
        ServeError::ResponseTooLarge { bytes, max_bytes } => {
            frame::put_u64(p, *bytes as u64);
            frame::put_u64(p, *max_bytes as u64);
        }
        ServeError::VersionUnsupported {
            client_min,
            client_max,
            server_min,
            server_max,
        } => {
            frame::put_u32(p, *client_min);
            frame::put_u32(p, *client_max);
            frame::put_u32(p, *server_min);
            frame::put_u32(p, *server_max);
        }
        ServeError::Protocol { detail }
        | ServeError::Transport { detail }
        | ServeError::Storage { detail } => frame::put_str(p, detail),
        ServeError::Corrupt { path, detail } => {
            frame::put_str(p, path);
            frame::put_str(p, detail);
        }
        ServeError::EpochEvicted {
            graph,
            epoch,
            oldest,
            newest,
        } => {
            frame::put_str(p, graph);
            frame::put_u64(p, *epoch);
            frame::put_u64(p, *oldest);
            frame::put_u64(p, *newest);
        }
        ServeError::Overloaded {
            graph,
            pending,
            max_pending,
        } => {
            frame::put_str(p, graph);
            frame::put_u64(p, *pending as u64);
            frame::put_u64(p, *max_pending as u64);
        }
        ServeError::ReadOnlyReplica { graph, leader } => {
            frame::put_str(p, graph);
            frame::put_str(p, leader);
        }
        ServeError::StaleLeader {
            leader_epoch,
            seen_epoch,
        } => {
            frame::put_u64(p, *leader_epoch);
            frame::put_u64(p, *seen_epoch);
        }
    }
}

/// Cap for free-form detail strings inside error frames — generous, but
/// bounded below the frame cap.
const MAX_DETAIL_LEN: usize = 1 << 20;

fn decode_error(c: &mut Cursor<'_>) -> Result<ServeError, FrameError> {
    let code = c.take_u32("error code")?;
    Ok(match code {
        1 => ServeError::UnknownGraph {
            graph: c.take_str(MAX_NAME_LEN, "graph name")?,
        },
        2 => ServeError::VertexOutOfRange {
            vertex: c.take_u32("vertex")?,
            num_vertices: take_usize(c, "num_vertices")?,
        },
        3 => ServeError::ClassOutOfRange {
            class: c.take_u32("class")?,
            num_classes: take_usize(c, "num_classes")?,
        },
        4 => ServeError::ZeroLimit {
            param: c.take_str(MAX_DETAIL_LEN, "param")?,
        },
        5 => ServeError::NoLabeledVertices {
            graph: c.take_str(MAX_NAME_LEN, "graph name")?,
        },
        6 => ServeError::VersionUnsupported {
            client_min: c.take_u32("client_min")?,
            client_max: c.take_u32("client_max")?,
            server_min: c.take_u32("server_min")?,
            server_max: c.take_u32("server_max")?,
        },
        7 => ServeError::Protocol {
            detail: c.take_str(MAX_DETAIL_LEN, "detail")?,
        },
        8 => ServeError::Transport {
            detail: c.take_str(MAX_DETAIL_LEN, "detail")?,
        },
        9 => ServeError::NonFinite {
            param: c.take_str(MAX_DETAIL_LEN, "param")?,
        },
        10 => ServeError::ResponseTooLarge {
            bytes: take_usize(c, "bytes")?,
            max_bytes: take_usize(c, "max_bytes")?,
        },
        11 => ServeError::Corrupt {
            path: c.take_str(MAX_DETAIL_LEN, "path")?,
            detail: c.take_str(MAX_DETAIL_LEN, "detail")?,
        },
        12 => ServeError::Storage {
            detail: c.take_str(MAX_DETAIL_LEN, "detail")?,
        },
        13 => ServeError::EpochEvicted {
            graph: c.take_str(MAX_NAME_LEN, "graph name")?,
            epoch: c.take_u64("epoch")?,
            oldest: c.take_u64("oldest")?,
            newest: c.take_u64("newest")?,
        },
        14 => ServeError::Overloaded {
            graph: c.take_str(MAX_NAME_LEN, "graph name")?,
            pending: take_usize(c, "pending")?,
            max_pending: take_usize(c, "max_pending")?,
        },
        15 => ServeError::ReadOnlyReplica {
            graph: c.take_str(MAX_NAME_LEN, "graph name")?,
            leader: c.take_str(MAX_DETAIL_LEN, "leader")?,
        },
        16 => ServeError::StaleLeader {
            leader_epoch: c.take_u64("leader_epoch")?,
            seen_epoch: c.take_u64("seen_epoch")?,
        },
        other => {
            return Err(FrameError::malformed(format!("unknown error code {other}")));
        }
    })
}

// Keep the compiler honest about the cap relationship the decoder
// relies on: a sealed frame must fit the transport bound.
const _: () = assert!(MAX_DETAIL_LEN < MAX_FRAME_LEN);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Request;

    #[test]
    fn client_frames_round_trip_binary() {
        let frames = vec![
            ClientFrame::Hello {
                min_version: 1,
                max_version: 6,
            },
            ClientFrame::Batch {
                id: u64::MAX,
                requests: vec![
                    Envelope::new("g", Request::classify(vec![0, 1, u32::MAX], 3)),
                    Envelope::new("h", Request::stats().pinned(9)),
                    Envelope::new(
                        "g",
                        Request::similar(7, 5).with_search(SearchPolicy::Ann {
                            nprobe: 3,
                            refine: 8,
                        }),
                    ),
                    Envelope::new(
                        "g",
                        Request::ApplyUpdates {
                            updates: vec![
                                Update::InsertEdge { u: 1, v: 2, w: 0.5 },
                                Update::SetLabel { v: 3, label: None },
                            ],
                        },
                    ),
                    Envelope::new("g", Request::Metrics),
                ],
            },
            ClientFrame::Goodbye,
        ];
        for f in frames {
            let bytes = encode_client_frame(&f);
            assert_eq!(decode_client_frame(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn server_frames_round_trip_binary() {
        let frames = vec![
            ServerFrame::HelloAck { version: 6 },
            ServerFrame::Batch {
                id: 3,
                results: vec![
                    Ok(Response::Classes(vec![1, 0])),
                    Ok(Response::Neighbors(vec![(7, 0.25), (9, f64::MAX)])),
                    Ok(Response::Row(vec![-1.5, 0.0, 2.25])),
                    Ok(Response::Applied {
                        applied: 4,
                        epoch: 11,
                    }),
                    Err(ServeError::UnknownGraph { graph: "h".into() }),
                    Err(ServeError::EpochEvicted {
                        graph: "g".into(),
                        epoch: 0,
                        oldest: 2,
                        newest: 5,
                    }),
                ],
            },
            ServerFrame::Error {
                error: ServeError::protocol("bad"),
            },
        ];
        for f in frames {
            let bytes = encode_server_frame(&f);
            assert_eq!(decode_server_frame(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn corrupted_binary_frame_fails_the_checksum() {
        let mut bytes = encode_client_frame(&ClientFrame::Goodbye);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = decode_client_frame(&bytes).unwrap_err();
        assert!(
            matches!(&err, ServeError::Protocol { detail } if detail.contains("checksum")),
            "{err:?}"
        );
        // Truncation below the checksum is typed too.
        assert!(matches!(
            decode_client_frame(&[1, 2]),
            Err(ServeError::Protocol { .. })
        ));
    }

    #[test]
    fn codec_choice_follows_the_negotiated_version() {
        assert_eq!(FrameCodec::for_version(1), FrameCodec::Json);
        assert_eq!(
            FrameCodec::for_version(BINARY_FRAME_VERSION - 1),
            FrameCodec::Json
        );
        assert_eq!(
            FrameCodec::for_version(BINARY_FRAME_VERSION),
            FrameCodec::Binary
        );
        assert_eq!(FrameCodec::for_version(u32::MAX), FrameCodec::Binary);
        // The same frame decodes under the codec that encoded it.
        let f = ClientFrame::Goodbye;
        for codec in [FrameCodec::Json, FrameCodec::Binary] {
            assert_eq!(codec.decode_client(&codec.encode_client(&f)).unwrap(), f);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let f = ClientFrame::Goodbye;
        let sealed = encode_client_frame(&f);
        // Re-seal with an extra payload byte so the CRC passes but the
        // cursor does not drain.
        let mut payload = sealed[4..].to_vec();
        payload.push(0);
        let bytes = seal(payload);
        assert!(matches!(
            decode_client_frame(&bytes),
            Err(ServeError::Protocol { .. })
        ));
    }

    #[test]
    fn stats_and_metrics_responses_round_trip_binary() {
        let report = GraphReport {
            graph: "g".into(),
            epoch: 7,
            oldest_epoch: 3,
            num_vertices: 100,
            dim: 5,
            num_shards: 4,
            num_labeled: 30,
            ann_indexed_shards: 2,
            queries_served: 999,
            updates_applied: 42,
            replication: Some(ReplicationReport {
                role: ReplicationRole::Follower,
                connected: true,
                shipped_records: 0,
                shipped_bytes: 0,
                follower_conns: 0,
                lag_epochs: 1,
                lag_lsns: 2,
                last_durable_lsn: 77,
                leader_epoch: 3,
                fenced: false,
            }),
        };
        let metrics = MetricsReport {
            graph: "g".into(),
            epoch: 7,
            oldest_epoch: 3,
            history_depth: 5,
            ann_indexed_shards: 2,
            queries_served: 999,
            updates_applied: 42,
            classify_us: HistogramReport {
                buckets: vec![0, 3, 1],
                count: 4,
                sum: 17,
            },
            similar_us: HistogramReport::empty(),
            embed_row_us: HistogramReport::empty(),
            stats_us: HistogramReport::empty(),
            metrics_us: HistogramReport::empty(),
            apply_updates_us: HistogramReport::empty(),
            coalesce: HistogramReport::empty(),
            overloaded: 1,
            wal_fsyncs: 12,
            ivf_builds: 2,
            ivf_hits: 30,
            replication: None,
        };
        let frame = ServerFrame::Batch {
            id: 1,
            results: vec![Ok(Response::Stats(report)), Ok(Response::Metrics(metrics))],
        };
        let bytes = encode_server_frame(&frame);
        assert_eq!(decode_server_frame(&bytes).unwrap(), frame);
    }
}
