//! Subcommand dispatch and implementations.

use std::fmt::Write as _;
use std::path::Path;

use gee_community::{leiden, louvain, modularity, LeidenOptions, LouvainOptions, Partition};
use gee_core::{AtomicsMode, Labels};
use gee_gen::{LabelSpec, RmatParams, SbmParams};
use gee_graph::{stats::graph_stats, CsrGraph};

use crate::flags::Flags;
use crate::formats::{read_graph, write_graph};
use crate::CliError;

const USAGE: &str = "\
gee — Edge-Parallel Graph Encoder Embedding toolkit

subcommands:
  generate     --kind <rmat|er|sbm|pa|ws|powerlaw> --out <file> [--edges N] [--vertices N]
               [--scale S] [--blocks B] [--p-in X] [--p-out X] [--lattice-k K] [--beta B]
               [--alpha A] [--seed S] [--symmetrize true]
  stats        <file>
  embed        --graph <file> --out <csv> [--k K=50] [--labeled F=0.1]
               [--impl ligra|ligra-serial|optimized|reference|deterministic] [--threads T] [--seed S]
  communities  --graph <file> [--algo leiden|louvain] [--gamma G=1.0]
  analyze      --graph <file> --algo <cc|pagerank|kcore|sssp|bfs|triangles|
                                       matching|dominating-set|densest> [--source V=0]
  serve        --graph <file> (--script <file> | --listen ADDR) [--k K=50] [--labeled F=0.1]
               [--shards S=4] [--seed S=42] [--history N=1] [--max-pending N]
               [--index exact|ivf] [--nprobe N=8] [--refine R=8]
               script lines: classify v1,v2,.. [k] | similar v [top] | row v |
                             insert u v w | remove u v w | label v <class|none> | stats
               --listen serves wire protocol v4 over TCP (graph name \"g\");
               [--max-conns N] stop after N connections, [--port-file F] write bound addr to F
               --history N retains the N newest epochs for --at-epoch reads;
               --max-pending N rejects update batches beyond N in flight (code 14)
               --index ivf answers Similar/Classify from per-shard IVF indexes
               (approximate; probe --nprobe lists, pool >= --refine x top);
               small shards and oversized top/k fall back to the exact scan
               durability: [--data-dir DIR [--sync always|never|group] [--checkpoint-every N=64]]
               --workers N sizes the connection worker pool (default: CPU count)
               recovers graph \"g\" from DIR if present (then --graph is optional);
               every update batch is WAL-logged and survives restart
               replication: --replicate ADDR ships the WAL to followers
               ([--replicate-port-file F] writes the bound address; needs --data-dir);
               --follow LEADER --data-dir DIR --listen ADDR trails a leader as a
               read-only replica: reads (incl. --at-epoch pins) serve locally,
               writes fail with code 15 ReadOnlyReplica, lag shows in stats/metrics;
               --promote-file PATH arms in-process failover: when PATH appears
               the replica promotes itself to leader (new fenced epoch, writes
               start passing; with --replicate ADDR it also ships its WAL)
  promote      --data-dir DIR [--shards S=4] [--replicate ADDR [--replicate-port-file F]]
               promote a stopped follower's data dir to leader: durably bump the
               leader epoch (fencing token — the deposed leader gets code 16
               StaleLeader everywhere), report the new epoch; with --replicate
               keep running and ship the WAL so surviving followers re-point
  query        --graph <file> (--classify v1,v2,.. | --similar V | --row V |
                               --stats true | --metrics true)
               [--k K=5] [--top T=10] [--classes K=50] [--labeled F=0.1]
               [--shards S=4] [--seed S=42] [--at-epoch E] [--history N=1]
               [--index exact|ivf] [--nprobe N=8] [--refine R=8] [--exact true]
               or query a running server: --connect ADDR [--name g] instead of --graph
               --at-epoch E pins the read to retained epoch E (error 13 if evicted)
               --nprobe/--exact override the server's search policy per request:
               --nprobe N asks for IVF approximate search, --exact true is the
               escape hatch forcing the exact scan (works over --connect too)
               --timing true prints the client-measured round-trip in µs on
               stderr (with --connect)
  bench        --connect ADDR [--name g] [--mix read=90,write=5,timetravel=3,ann=2]
               [--clients N=2] [--duration S=5] [--requests N] [--qps Q] [--seed S=42]
               [--poll-metrics MS=500] [--csv FILE] [--json FILE]
               multi-client load generator over the wire protocol: draws request
               types from the weighted --mix with a seeded RNG, one CSV row per
               request; --requests N issues exactly N per client (deterministic);
               --qps Q paces an open loop at Q req/s total instead of closed loop;
               --poll-metrics MS samples the server's protocol-v4 Metrics endpoint
               every MS ms (0 disables), interleaving `server` rows into the CSV;
               --csv writes the per-request rows, --json a BENCH_*.json report
               (servers should run with --history deep enough for timetravel pins)
  bench-report [--in FILE] [--bench NAME=serve_loadgen] [--json FILE]
               streaming CSV→JSON analytics filter: read bench CSV rows from
               stdin (or --in), emit the BENCH report on stdout (or --json)
  recover      --data-dir DIR [--shards S=4] [--checkpoint true]
               recover a durable serving directory (checkpoint + WAL replay), report
               each graph's epoch/size plus the WAL high-water LSN, latest
               checkpoint LSN and stored leader epoch, optionally force a
               compacting checkpoint
  convert      <in-file> <out-file>

formats by extension: .txt/.el/.edgelist (text), .snap, .mtx, .csr (binary), .edges (stream)
";

/// Run the CLI, returning the text to print.
pub fn run(args: &[String]) -> crate::Result<String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage(USAGE.into()));
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "generate" => generate(&flags),
        "stats" => stats(&flags),
        "embed" => embed(&flags),
        "communities" => communities(&flags),
        "analyze" => analyze(&flags),
        "serve" => serve(&flags),
        "query" => query(&flags),
        "bench" => bench(&flags),
        "bench-report" => bench_report(&flags),
        "recover" => recover(&flags),
        "promote" => promote(&flags),
        "convert" => convert(&flags),
        "help" | "--help" | "-h" => Ok(USAGE.into()),
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other:?}\n\n{USAGE}"
        ))),
    }
}

fn generate(flags: &Flags) -> crate::Result<String> {
    let kind = flags.get("kind").unwrap_or("rmat");
    let out = flags.require("out")?.to_string();
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let symmetrize: bool = flags.get_parsed("symmetrize", false)?;
    let el = match kind {
        "rmat" => {
            let scale: u32 = flags.get_parsed("scale", 16)?;
            let edges: usize = flags.get_parsed("edges", 1usize << 20)?;
            gee_gen::rmat(scale, edges, RmatParams::default(), seed)
        }
        "er" => {
            let vertices: usize = flags.get_parsed("vertices", 1usize << 16)?;
            let edges: usize = flags.get_parsed("edges", 1usize << 20)?;
            gee_gen::erdos_renyi_gnm(vertices, edges, seed)
        }
        "sbm" => {
            let blocks: usize = flags.get_parsed("blocks", 4)?;
            let vertices: usize = flags.get_parsed("vertices", 4000)?;
            let p_in: f64 = flags.get_parsed("p-in", 0.1)?;
            let p_out: f64 = flags.get_parsed("p-out", 0.005)?;
            gee_gen::sbm(
                &SbmParams::balanced(blocks, vertices / blocks.max(1), p_in, p_out),
                seed,
            )
            .edges
        }
        "pa" => {
            let vertices: usize = flags.get_parsed("vertices", 100_000)?;
            let m: usize = flags.get_parsed("edges-per-vertex", 4)?;
            gee_gen::preferential_attachment(vertices, m, seed)
        }
        "ws" => {
            let vertices: usize = flags.get_parsed("vertices", 1usize << 16)?;
            let lattice_k: usize = flags.get_parsed("lattice-k", 8)?;
            let beta: f64 = flags.get_parsed("beta", 0.1)?;
            gee_gen::watts_strogatz(
                gee_gen::WsParams {
                    n: vertices,
                    k: lattice_k,
                    beta,
                },
                seed,
            )
        }
        "powerlaw" => {
            let vertices: usize = flags.get_parsed("vertices", 1usize << 16)?;
            let alpha: f64 = flags.get_parsed("alpha", 2.3)?;
            let d_max: usize = flags.get_parsed("d-max", vertices / 10)?;
            let degrees = gee_gen::power_law_degrees(vertices, alpha, 1, d_max.max(1), seed);
            gee_gen::config_model(&degrees, seed)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --kind {other:?} (rmat|er|sbm|pa|ws|powerlaw)"
            )))
        }
    };
    let el = if symmetrize { el.symmetrized() } else { el };
    write_graph(Path::new(&out), &el)?;
    Ok(format!(
        "wrote {}: {} vertices, {} edges ({kind}, seed {seed})\n",
        out,
        el.num_vertices(),
        el.num_edges()
    ))
}

fn stats(flags: &Flags) -> crate::Result<String> {
    let path = flags
        .positional(0)
        .ok_or_else(|| CliError::Usage("stats: need a graph file argument".into()))?;
    let el = read_graph(Path::new(path))?;
    let g = CsrGraph::from_edge_list(&el);
    let s = graph_stats(&g);
    let hist = gee_graph::stats::degree_histogram(&g);
    let mut out = String::new();
    writeln!(out, "{path}").unwrap();
    writeln!(out, "  vertices      : {}", s.num_vertices).unwrap();
    writeln!(out, "  edges         : {}", s.num_edges).unwrap();
    writeln!(
        out,
        "  degree        : min {} / avg {:.2} / max {}",
        s.min_degree, s.avg_degree, s.max_degree
    )
    .unwrap();
    writeln!(out, "  isolated      : {}", s.isolated).unwrap();
    writeln!(out, "  self-loops    : {}", s.self_loops).unwrap();
    writeln!(out, "  weighted      : {}", g.is_weighted()).unwrap();
    writeln!(out, "  degree histogram (power-of-two buckets):").unwrap();
    for (i, &c) in hist.iter().enumerate() {
        if c > 0 {
            // Bucket 0 additionally holds degree-0 vertices.
            let lo = if i == 0 { 0 } else { 1usize << i };
            writeln!(out, "    [{:>8}..{:>8}) {:>10}", lo, 1usize << (i + 1), c).unwrap();
        }
    }
    Ok(out)
}

fn embed(flags: &Flags) -> crate::Result<String> {
    let graph_path = flags.require("graph")?.to_string();
    let out_path = flags.require("out")?.to_string();
    let k: usize = flags.get_parsed("k", 50)?;
    let labeled: f64 = flags.get_parsed("labeled", 0.1)?;
    let threads: usize = flags.get_parsed("threads", 0)?;
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let which = flags.get("impl").unwrap_or("ligra");
    let el = read_graph(Path::new(&graph_path))?;
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            el.num_vertices(),
            LabelSpec {
                num_classes: k,
                labeled_fraction: labeled,
            },
            seed,
        ),
        k,
    );
    let t0 = std::time::Instant::now();
    let z = match which {
        "reference" => gee_core::serial_reference::embed(&el, &labels),
        "optimized" => gee_core::serial_optimized::embed(&el, &labels),
        "ligra-serial" => {
            let g = CsrGraph::from_edge_list(&el);
            gee_ligra::with_threads(1, || {
                gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
            })
        }
        "ligra" => {
            let g = CsrGraph::from_edge_list(&el);
            gee_ligra::with_threads(threads, || {
                gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
            })
        }
        "deterministic" => gee_ligra::with_threads(threads, || {
            gee_core::deterministic::embed(el.num_vertices(), el.edges(), &labels)
        }),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --impl {other:?} (reference|optimized|ligra-serial|ligra|deterministic)"
            )))
        }
    };
    let dt = t0.elapsed();
    gee_core::diagnostics::assert_healthy(&z, &el, &labels, 1e-6);
    // CSV: vertex, k columns.
    let mut csv = String::with_capacity(z.num_vertices() * z.dim() * 8);
    for v in 0..z.num_vertices() as u32 {
        csv.push_str(&v.to_string());
        for x in z.row(v) {
            write!(csv, ",{x}").unwrap();
        }
        csv.push('\n');
    }
    std::fs::write(&out_path, csv)?;
    Ok(format!(
        "embedded {} ({} vertices, {} edges) with {which} in {dt:.2?}; Z is {}×{} → {}\n",
        graph_path,
        el.num_vertices(),
        el.num_edges(),
        z.num_vertices(),
        z.dim(),
        out_path
    ))
}

fn communities(flags: &Flags) -> crate::Result<String> {
    let graph_path = flags.require("graph")?.to_string();
    let algo = flags.get("algo").unwrap_or("leiden");
    let gamma: f64 = flags.get_parsed("gamma", 1.0)?;
    let el = read_graph(Path::new(&graph_path))?.symmetrized();
    let g = CsrGraph::from_edge_list(&el);
    let t0 = std::time::Instant::now();
    let p: Partition = match algo {
        "louvain" => louvain(
            &g,
            LouvainOptions {
                gamma,
                ..Default::default()
            },
        ),
        "leiden" => leiden(
            &g,
            LeidenOptions {
                gamma,
                ..Default::default()
            },
        ),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --algo {other:?} (louvain|leiden)"
            )))
        }
    };
    let dt = t0.elapsed();
    let q = modularity(&g, &p, gamma);
    let mut sizes = p.community_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let mut out = String::new();
    writeln!(
        out,
        "{algo} on {graph_path} (γ = {gamma}): {} communities, modularity {q:.4}, {dt:.2?}",
        p.num_communities()
    )
    .unwrap();
    writeln!(
        out,
        "largest communities: {:?}",
        &sizes[..sizes.len().min(10)]
    )
    .unwrap();
    if let Some(out_path) = flags.get("out") {
        let mut csv = String::new();
        for (v, &c) in p.membership().iter().enumerate() {
            writeln!(csv, "{v},{c}").unwrap();
        }
        std::fs::write(out_path, csv)?;
        writeln!(out, "membership written to {out_path}").unwrap();
    }
    Ok(out)
}

fn analyze(flags: &Flags) -> crate::Result<String> {
    let graph_path = flags.require("graph")?.to_string();
    let algo = flags.require("algo")?.to_string();
    let source: u32 = flags.get_parsed("source", 0u32)?;
    // The engine algorithms assume symmetric inputs where noted; analyze
    // symmetrizes uniformly so every algorithm sees the undirected graph.
    let el = read_graph(Path::new(&graph_path))?.symmetrized();
    let g = CsrGraph::from_edge_list(&el);
    let t0 = std::time::Instant::now();
    let mut out = String::new();
    match algo.as_str() {
        "cc" => {
            let comp = gee_algos::connected_components(&g);
            let mut roots: Vec<u32> = comp.clone();
            roots.sort_unstable();
            roots.dedup();
            writeln!(out, "connected components: {}", roots.len()).unwrap();
        }
        "pagerank" => {
            let pr = gee_algos::pagerank(&g, gee_algos::PageRankOptions::default());
            let mut top: Vec<(u32, f64)> =
                pr.iter().enumerate().map(|(v, &r)| (v as u32, r)).collect();
            top.sort_by(|a, b| b.1.total_cmp(&a.1));
            writeln!(out, "top-5 PageRank: {:?}", &top[..top.len().min(5)]).unwrap();
        }
        "kcore" => {
            let core = gee_algos::kcore_bucketed(&g);
            let max = core.iter().copied().max().unwrap_or(0);
            writeln!(out, "degeneracy (max core): {max}").unwrap();
        }
        "sssp" => {
            let d = gee_algos::delta_stepping(&g, source, gee_algos::suggest_delta(&g));
            let reached = d.iter().filter(|x| x.is_finite()).count();
            let ecc = d.iter().filter(|x| x.is_finite()).fold(0.0f64, |a, &b| a.max(b));
            writeln!(out, "sssp from {source}: {reached} reachable, eccentricity {ecc:.3}").unwrap();
        }
        "bfs" => {
            let d = gee_algos::bfs_distances(&g, source);
            let reached = d.iter().filter(|&&x| x != u32::MAX).count();
            let depth = d.iter().filter(|&&x| x != u32::MAX).max().copied().unwrap_or(0);
            writeln!(out, "bfs from {source}: {reached} reachable, depth {depth}").unwrap();
        }
        "triangles" => {
            writeln!(out, "triangles: {}", gee_algos::triangle_count(&g)).unwrap();
        }
        "matching" => {
            let m = gee_algos::maximal_matching(&g, 42);
            let matched = m.iter().filter(|&&p| p != u32::MAX).count();
            writeln!(out, "maximal matching: {} edges ({} matched vertices)", matched / 2, matched)
                .unwrap();
        }
        "dominating-set" => {
            let ds = gee_algos::dominating_set(&g);
            writeln!(out, "greedy dominating set: {} of {} vertices", ds.len(), g.num_vertices())
                .unwrap();
        }
        "densest" => {
            let r = gee_algos::densest_subgraph(&g);
            writeln!(
                out,
                "densest subgraph (2-approx): {} vertices, density {:.3}",
                r.vertices.len(),
                r.density
            )
            .unwrap();
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --algo {other:?} (cc|pagerank|kcore|sssp|bfs|triangles|matching|dominating-set|densest)"
            )))
        }
    }
    writeln!(out, "({:.2?})", t0.elapsed()).unwrap();
    Ok(out)
}

/// The durability policy the flags describe, if `--data-dir` was given.
fn durability_from_flags(flags: &Flags) -> crate::Result<Option<gee_serve::Durability>> {
    let Some(dir) = flags.get("data-dir") else {
        return Ok(None);
    };
    let sync = match flags.get("sync").unwrap_or("always") {
        "always" => gee_serve::SyncPolicy::Always,
        "never" => gee_serve::SyncPolicy::Never,
        // Group commit: concurrent writers share one fsync per commit
        // window — the Always guarantee at a fraction of the syncs.
        "group" => gee_serve::SyncPolicy::group(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --sync {other:?} (always|never|group)"
            )))
        }
    };
    let checkpoint_every: u64 = flags.get_parsed("checkpoint-every", 64u64)?;
    Ok(Some(gee_serve::Durability::Wal {
        dir: std::path::PathBuf::from(dir),
        sync,
        checkpoint_every,
    }))
}

/// Load the `--graph` file and label it (randomly, like `embed`).
fn load_labeled_graph(
    flags: &Flags,
    classes_flag: &str,
    default_classes: usize,
) -> crate::Result<(gee_graph::EdgeList, Labels)> {
    let graph_path = flags.require("graph")?.to_string();
    let k: usize = flags.get_parsed(classes_flag, default_classes)?;
    let labeled: f64 = flags.get_parsed("labeled", 0.1)?;
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let el = read_graph(Path::new(&graph_path))?;
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            el.num_vertices(),
            LabelSpec {
                num_classes: k,
                labeled_fraction: labeled,
            },
            seed,
        ),
        k,
    );
    Ok((el, labels))
}

/// Parse `[--nprobe N] [--refine R]` into an IVF
/// [`gee_serve::SearchPolicy::Ann`] — the single owner of both
/// defaults, shared by `serve --index ivf` and `query --nprobe`.
fn ann_from_flags(flags: &Flags) -> crate::Result<gee_serve::SearchPolicy> {
    let nprobe: usize = flags.get_parsed("nprobe", 8)?;
    let refine: usize = flags.get_parsed("refine", gee_serve::SearchPolicy::DEFAULT_REFINE)?;
    Ok(gee_serve::SearchPolicy::Ann { nprobe, refine })
}

/// Parse `--index exact|ivf [--nprobe N] [--refine R]` into the
/// registry-wide default [`gee_serve::SearchPolicy`].
fn search_from_flags(flags: &Flags) -> crate::Result<gee_serve::SearchPolicy> {
    match flags.get("index").unwrap_or("exact") {
        "exact" => Ok(gee_serve::SearchPolicy::Exact),
        "ivf" => ann_from_flags(flags),
        other => Err(CliError::Usage(format!(
            "unknown --index {other:?} (exact|ivf)"
        ))),
    }
}

/// Stand up a one-graph serving engine named `"g"`. Without
/// `--data-dir` the registry is in-memory and `--graph` is required;
/// with it, the data directory is recovered first and `--graph` is only
/// needed (and only read) when no graph `"g"` was recovered.
fn build_engine(
    flags: &Flags,
    classes_flag: &str,
    default_classes: usize,
) -> crate::Result<(gee_serve::Engine, usize)> {
    let shards: usize = flags.get_parsed("shards", 4)?;
    let history: usize = flags.get_parsed("history", 1)?;
    let backpressure = match flags.get("max-pending") {
        Some(raw) => {
            let max: usize = raw.parse().map_err(|_| {
                CliError::Usage(format!("flag --max-pending: cannot parse {raw:?}"))
            })?;
            gee_serve::BackpressurePolicy::max_pending(max)
        }
        None => gee_serve::BackpressurePolicy::unbounded(),
    };
    let search = search_from_flags(flags)?;
    let engine = gee_serve::Engine::with_config(gee_serve::RegistryConfig {
        default_shards: shards,
        history: gee_serve::HistoryPolicy::keep(history),
        backpressure,
        durability: durability_from_flags(flags)?.unwrap_or(gee_serve::Durability::None),
        search,
    })?;
    let num_vertices = if let Ok(snap) = engine.registry().snapshot("g") {
        eprintln!(
            "recovered \"g\" at epoch {} from {}",
            snap.epoch,
            flags.get("data-dir").unwrap_or("?")
        );
        snap.num_vertices()
    } else {
        let (el, labels) = load_labeled_graph(flags, classes_flag, default_classes)?;
        engine.registry().register("g", &el, &labels)?;
        el.num_vertices()
    };
    if search.is_ann() {
        // Pay the k-means cost now so the first query is warm.
        let indexed = engine.registry().snapshot("g")?.warm_ann_indexes();
        eprintln!("ivf: {indexed} shard(s) indexed (small shards stay exact)");
    }
    Ok((engine, num_vertices))
}

/// `recover`: open a durable serving directory (latest checkpoint + WAL
/// tail replay) and report what came back. `--checkpoint true` then
/// forces a compacting checkpoint, retiring covered WAL segments.
fn recover(flags: &Flags) -> crate::Result<String> {
    let dir = flags.require("data-dir")?.to_string();
    let shards: usize = flags.get_parsed("shards", 4)?;
    let durability = durability_from_flags(flags)?.expect("--data-dir was required");
    let registry = gee_serve::Registry::open(shards, durability)?;
    let names = registry.graph_names();
    let mut out = String::new();
    writeln!(out, "recovered {} graph(s) from {dir}", names.len()).unwrap();
    for name in &names {
        let snap = registry.snapshot(name)?;
        writeln!(
            out,
            "  {name:?}: epoch {} | {} vertices × {} dims, {} labeled",
            snap.epoch,
            snap.num_vertices(),
            snap.dim(),
            snap.num_labeled(),
        )
        .unwrap();
    }
    // The replication coordinates: where the durable log ends and where
    // the newest checkpoint sits (what a follower would bootstrap from).
    let high = registry.wal_high_water().expect("registry opened durable");
    writeln!(out, "wal high-water lsn {high}").unwrap();
    match registry.latest_checkpoint_lsn()? {
        Some(lsn) => writeln!(out, "latest checkpoint at lsn {lsn}").unwrap(),
        None => writeln!(out, "no checkpoint on disk").unwrap(),
    }
    writeln!(out, "leader epoch {}", registry.leader_epoch()).unwrap();
    if flags.get_parsed("checkpoint", false)? {
        let lsn = registry.checkpoint_now()?.expect("registry opened durable");
        writeln!(out, "checkpoint written at lsn {lsn}; WAL compacted").unwrap();
    }
    Ok(out)
}

/// `promote`: turn a stopped follower's data dir into the new leader.
/// Recovers the directory, durably bumps the leader epoch (the fencing
/// token the cluster holds the deposed leader to), and — with
/// `--replicate ADDR` — stays up shipping the WAL so surviving
/// followers can re-point and resume from their own LSNs.
fn promote(flags: &Flags) -> crate::Result<String> {
    let dir = flags.require("data-dir")?.to_string();
    let shards: usize = flags.get_parsed("shards", 4)?;
    let durability = durability_from_flags(flags)?.expect("--data-dir was required");
    let registry = std::sync::Arc::new(gee_serve::Registry::open(shards, durability)?);
    let epoch = registry.promote_to_leader()?;
    let high = registry.wal_high_water().expect("registry opened durable");
    let mut out = String::new();
    writeln!(
        out,
        "promoted {dir} to leader epoch {epoch} (wal high-water lsn {high})"
    )
    .unwrap();
    if let Some(addr) = flags.get("replicate") {
        let listener = gee_serve::ReplicationListener::listen(registry.clone(), addr)?;
        // Print now: with --replicate this command never returns.
        print!("{out}");
        println!("replication: shipping WAL on {}", listener.addr());
        if let Some(file) = flags.get("replicate-port-file") {
            std::fs::write(file, listener.addr().to_string())?;
        }
        loop {
            // Lead until killed (like `serve --listen` without a conn cap).
            std::thread::park();
        }
    }
    Ok(out)
}

fn parse_vertex_list(raw: &str) -> crate::Result<Vec<u32>> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .map_err(|_| CliError::Usage(format!("cannot parse vertex id {s:?}")))
        })
        .collect()
}

/// Parse one serve-script line into a request (empty/comment lines → None).
fn parse_script_line(line: &str) -> crate::Result<Option<gee_serve::Request>> {
    use gee_serve::{Request, Update};
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let cmd = parts.next().expect("nonempty line has a first token");
    let args: Vec<&str> = parts.collect();
    let usage = |msg: &str| CliError::Usage(format!("serve script: {msg} (line {line:?})"));
    let parse_u32 = |s: &str, what: &str| {
        s.parse::<u32>()
            .map_err(|_| usage(&format!("bad {what} {s:?}")))
    };
    let req = match cmd {
        "classify" => {
            let vertices = parse_vertex_list(
                args.first()
                    .ok_or_else(|| usage("classify needs vertices"))?,
            )?;
            let k = match args.get(1) {
                Some(s) => s.parse().map_err(|_| usage(&format!("bad k {s:?}")))?,
                None => 5,
            };
            Request::classify(vertices, k)
        }
        "similar" => {
            let vertex = parse_u32(
                args.first()
                    .ok_or_else(|| usage("similar needs a vertex"))?,
                "vertex",
            )?;
            let top = match args.get(1) {
                Some(s) => s.parse().map_err(|_| usage(&format!("bad top {s:?}")))?,
                None => 10,
            };
            Request::similar(vertex, top)
        }
        "row" => {
            let vertex = parse_u32(
                args.first().ok_or_else(|| usage("row needs a vertex"))?,
                "vertex",
            )?;
            Request::embed_row(vertex)
        }
        "insert" | "remove" => {
            let [u, v, w] = args[..] else {
                return Err(usage(&format!("{cmd} needs: u v w")));
            };
            let (u, v) = (parse_u32(u, "endpoint")?, parse_u32(v, "endpoint")?);
            let w: f64 = w.parse().map_err(|_| usage(&format!("bad weight {w:?}")))?;
            let update = if cmd == "insert" {
                Update::InsertEdge { u, v, w }
            } else {
                Update::RemoveEdge { u, v, w }
            };
            Request::ApplyUpdates {
                updates: vec![update],
            }
        }
        "label" => {
            let [v, class] = args[..] else {
                return Err(usage("label needs: v <class|none>"));
            };
            let v = parse_u32(v, "vertex")?;
            let label = if class == "none" {
                None
            } else {
                Some(parse_u32(class, "class")?)
            };
            Request::ApplyUpdates {
                updates: vec![Update::SetLabel { v, label }],
            }
        }
        "stats" => Request::stats(),
        other => return Err(usage(&format!("unknown command {other:?}"))),
    };
    Ok(Some(req))
}

fn render_response(out: &mut String, r: &gee_serve::Response) {
    use gee_serve::Response;
    match r {
        Response::Classes(c) => writeln!(out, "classes: {c:?}").unwrap(),
        Response::Neighbors(n) => {
            let shown: Vec<String> = n.iter().map(|(v, d)| format!("{v} (d={d:.4})")).collect();
            writeln!(out, "neighbors: [{}]", shown.join(", ")).unwrap();
        }
        Response::Row(row) => {
            let shown: Vec<String> = row.iter().map(|x| format!("{x:.6}")).collect();
            writeln!(out, "row: [{}]", shown.join(", ")).unwrap();
        }
        Response::Applied { applied, epoch } => {
            writeln!(out, "applied {applied} update(s); now at epoch {epoch}").unwrap();
        }
        Response::Stats(s) => {
            write!(
                out,
                "stats: graph {:?} epoch {} (retained from {}) | {} vertices × {} dims, {} shards, {} labeled | {} queries served, {} updates applied",
                s.graph, s.epoch, s.oldest_epoch, s.num_vertices, s.dim, s.num_shards, s.num_labeled, s.queries_served, s.updates_applied
            )
            .unwrap();
            if let Some(r) = &s.replication {
                write!(out, " | {}", render_replication(r)).unwrap();
            }
            writeln!(out).unwrap();
        }
        Response::Metrics(m) => {
            write!(
                out,
                "metrics: graph {:?} epoch {} (retained from {}, depth {}) | {} queries served, {} updates applied | classify p50 ≤{} µs | coalesce mean {:.1} | {} overloaded, {} wal fsyncs, ivf {}/{} built/hit, {} ann shards",
                m.graph,
                m.epoch,
                m.oldest_epoch,
                m.history_depth,
                m.queries_served,
                m.updates_applied,
                m.classify_us.quantile_upper_bound(0.5).unwrap_or(0),
                m.coalesce.mean().unwrap_or(0.0),
                m.overloaded,
                m.wal_fsyncs,
                m.ivf_builds,
                m.ivf_hits,
                m.ann_indexed_shards
            )
            .unwrap();
            if let Some(r) = &m.replication {
                write!(out, " | {}", render_replication(r)).unwrap();
            }
            writeln!(out).unwrap();
        }
    }
}

/// One-line v5 replication summary shared by the Stats and Metrics
/// renders (both endpoints carry the identical block).
fn render_replication(r: &gee_serve::ReplicationReport) -> String {
    match r.role {
        gee_serve::ReplicationRole::Leader => format!(
            "replication: leader ({} follower(s){}), {} records / {} bytes shipped, leader epoch {}{}",
            r.follower_conns,
            if r.connected { "" } else { ", idle" },
            r.shipped_records,
            r.shipped_bytes,
            r.leader_epoch,
            if r.fenced { " [FENCED]" } else { "" },
        ),
        gee_serve::ReplicationRole::Follower => format!(
            "replication: follower ({}) lag {} epoch(s) / {} lsn(s), durable to lsn {}, leader epoch {}",
            if r.connected {
                "connected"
            } else {
                "disconnected"
            },
            r.lag_epochs,
            r.lag_lsns,
            r.last_durable_lsn,
            r.leader_epoch,
        ),
    }
}

fn max_conns_from_flags(flags: &Flags) -> crate::Result<Option<usize>> {
    flags
        .get("max-conns")
        .map(|raw| {
            raw.parse::<usize>()
                .map_err(|_| CliError::Usage(format!("flag --max-conns: cannot parse {raw:?}")))
        })
        .transpose()
}

/// `--workers N`: size of the connection worker pool (defaults to the
/// CPU count).
fn workers_from_flags(flags: &Flags) -> crate::Result<usize> {
    let workers: usize = flags.get_parsed("workers", gee_serve::server::default_workers())?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".into()));
    }
    Ok(workers)
}

/// `serve --listen`: stand up the engine and serve the wire protocol over
/// TCP until `--max-conns` connections finish (or forever without it).
/// With `--replicate ADDR` the process also leads a replica set: a
/// second listener streams the WAL to followers.
fn serve_listen(flags: &Flags, addr: &str) -> crate::Result<String> {
    let (engine, n) = build_engine(flags, "k", 50)?;
    let max_conns = max_conns_from_flags(flags)?;
    let replication = flags
        .get("replicate")
        .map(|repl_addr| -> crate::Result<_> {
            if flags.get("data-dir").is_none() {
                return Err(CliError::Usage(
                    "serve: --replicate requires --data-dir (the WAL is the replication stream)"
                        .into(),
                ));
            }
            let listener =
                gee_serve::ReplicationListener::listen(engine.registry_handle(), repl_addr)?;
            eprintln!("replication: shipping WAL on {}", listener.addr());
            if let Some(file) = flags.get("replicate-port-file") {
                std::fs::write(file, listener.addr().to_string())?;
            }
            Ok(listener)
        })
        .transpose()?;
    let workers = workers_from_flags(flags)?;
    let handle =
        gee_serve::Server::listen_with(std::sync::Arc::new(engine), addr, max_conns, workers)?;
    let bound = handle.addr();
    eprintln!(
        "serving \"g\" ({n} vertices) on {bound} (wire protocol v{}, {workers} workers)",
        gee_serve::PROTOCOL_VERSION
    );
    if let Some(port_file) = flags.get("port-file") {
        std::fs::write(port_file, bound.to_string())?;
    }
    let summary = match max_conns {
        Some(m) => {
            handle.wait();
            format!("served {m} connection(s) on {bound}; exiting\n")
        }
        None => {
            handle.wait(); // unbounded: runs until the process is killed
            String::new()
        }
    };
    if let Some(listener) = replication {
        listener.shutdown();
    }
    Ok(summary)
}

/// `serve --follow`: run a read-only replica. The follower pulls the
/// leader's WAL stream into its own `--data-dir`, serves reads (with
/// epoch pins and ANN policies) on `--listen`, and rejects writes with
/// error code 15 (`ReadOnlyReplica`).
fn serve_follow(flags: &Flags, leader: &str) -> crate::Result<String> {
    let Some(durability) = durability_from_flags(flags)? else {
        return Err(CliError::Usage(
            "serve: --follow requires --data-dir (the replica's own durable log)".into(),
        ));
    };
    let listen = flags.get("listen").ok_or_else(|| {
        CliError::Usage("serve: --follow serves reads; pass --listen ADDR".into())
    })?;
    let shards: usize = flags.get_parsed("shards", 4)?;
    let history: usize = flags.get_parsed("history", 1)?;
    let config = gee_serve::RegistryConfig {
        default_shards: shards,
        history: gee_serve::HistoryPolicy::keep(history),
        backpressure: gee_serve::BackpressurePolicy::unbounded(),
        durability,
        search: search_from_flags(flags)?,
    };
    let follower = gee_serve::Follower::start(config, leader)?;
    eprintln!("following leader at {leader}");
    let registry = follower.registry().clone();
    let engine = gee_serve::Engine::new(registry.clone());
    let handle = gee_serve::Server::listen_with(
        std::sync::Arc::new(engine),
        listen,
        max_conns_from_flags(flags)?,
        workers_from_flags(flags)?,
    )?;
    let bound = handle.addr();
    eprintln!(
        "replica serving reads on {bound} (wire protocol v{})",
        gee_serve::PROTOCOL_VERSION
    );
    if let Some(port_file) = flags.get("port-file") {
        std::fs::write(port_file, bound.to_string())?;
    }
    // `--promote-file PATH` arms in-process failover: a watcher thread
    // promotes the replica to leader the moment PATH appears (an
    // operator `touch`, a supervisor, the failover-smoke CI job). The
    // read server keeps serving throughout; after promotion its
    // registry accepts writes under the new, durably-fenced epoch.
    let follower_slot = std::sync::Arc::new(std::sync::Mutex::new(Some(follower)));
    if let Some(promote_path) = flags.get("promote-file") {
        let promote_path = std::path::PathBuf::from(promote_path);
        let replicate = flags.get("replicate").map(str::to_string);
        let replicate_port_file = flags.get("replicate-port-file").map(str::to_string);
        let slot = follower_slot.clone();
        std::thread::spawn(move || loop {
            if promote_path.exists() {
                let Some(follower) = slot.lock().expect("follower slot poisoned").take() else {
                    return;
                };
                match follower.promote(replicate.as_deref()) {
                    Ok(promotion) => {
                        eprintln!("promoted to leader epoch {}", promotion.epoch);
                        if let Some(listener) = promotion.listener {
                            eprintln!("replication: shipping WAL on {}", listener.addr());
                            if let Some(file) = &replicate_port_file {
                                let _ = std::fs::write(file, listener.addr().to_string());
                            }
                            // Leak the handle: the listener must outlive
                            // this watcher thread and keep shipping until
                            // the process exits.
                            std::mem::forget(listener);
                        }
                    }
                    Err(e) => eprintln!("promotion failed: {e}"),
                }
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        });
    }
    handle.wait();
    let lsn = registry.wal_high_water().expect("followers are durable");
    let still_following = follower_slot.lock().expect("follower slot poisoned").take();
    let summary = match still_following {
        Some(follower) => {
            follower.shutdown();
            format!("replica exiting at lsn {lsn}\n")
        }
        None => format!(
            "promoted leader (epoch {}) exiting at lsn {lsn}\n",
            registry.leader_epoch()
        ),
    };
    Ok(summary)
}

/// `serve`: stand up the engine and run a query script against it as one
/// coalesced batch (or serve TCP with `--listen`, or trail a leader as a
/// read-only replica with `--follow`).
fn serve(flags: &Flags) -> crate::Result<String> {
    if let Some(leader) = flags.get("follow") {
        return serve_follow(flags, &leader.to_string());
    }
    if let Some(addr) = flags.get("listen") {
        return serve_listen(flags, &addr.to_string());
    }
    let script_path = flags.require("script")?.to_string();
    let (engine, _) = build_engine(flags, "k", 50)?;
    let script = std::fs::read_to_string(&script_path)?;
    let mut requests = Vec::new();
    let mut lines = Vec::new();
    for line in script.lines() {
        if let Some(req) = parse_script_line(line)? {
            requests.push(gee_serve::Envelope::new("g", req));
            lines.push(line.trim().to_string());
        }
    }
    let t0 = std::time::Instant::now();
    let answers = engine.execute_batch(requests);
    let dt = t0.elapsed();
    let mut out = String::new();
    for (line, answer) in lines.iter().zip(&answers) {
        write!(out, "> {line}\n  ").unwrap();
        match answer {
            Ok(r) => render_response(&mut out, r),
            Err(e) => writeln!(out, "error: {e}").unwrap(),
        }
    }
    writeln!(out, "served {} request(s) in {dt:.2?}", lines.len()).unwrap();
    Ok(out)
}

/// `query`: one-shot request against a freshly served graph, or — with
/// `--connect` — against a running `serve --listen` server over the wire.
fn query(flags: &Flags) -> crate::Result<String> {
    use gee_serve::Request;
    let mut request = if let Some(raw) = flags.get("classify") {
        let k: usize = flags.get_parsed("k", 5)?;
        Request::classify(parse_vertex_list(raw)?, k)
    } else if let Some(raw) = flags.get("similar") {
        let vertex = raw
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --similar vertex {raw:?}")))?;
        let top: usize = flags.get_parsed("top", 10)?;
        Request::similar(vertex, top)
    } else if let Some(raw) = flags.get("row") {
        let vertex = raw
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --row vertex {raw:?}")))?;
        Request::embed_row(vertex)
    } else if flags.get("stats").is_some() {
        Request::stats()
    } else if flags.get_parsed("metrics", false)? {
        // Protocol-v4 observability probe (never pinnable).
        Request::Metrics
    } else {
        return Err(CliError::Usage(
            "query: need one of --classify, --similar, --row, --stats true, --metrics true".into(),
        ));
    };
    if let Some(raw) = flags.get("at-epoch") {
        let epoch: u64 = raw
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --at-epoch {raw:?}")))?;
        request = request.pinned(epoch);
    }
    // Per-request search override: `--exact true` is the escape hatch
    // that forces the exact scan no matter how the server is configured;
    // `--nprobe`/`--index ivf` asks for IVF approximate search. Both
    // ride the wire with --connect (protocol v3).
    if flags.get_parsed("exact", false)? {
        request = request.with_search(gee_serve::SearchPolicy::Exact);
    } else if flags.get("index").is_some() {
        request = request.with_search(search_from_flags(flags)?);
    } else if flags.get("nprobe").is_some() {
        request = request.with_search(ann_from_flags(flags)?);
    }
    let mut out = String::new();
    if let Some(addr) = flags.get("connect") {
        let graph = flags.get("name").unwrap_or("g");
        let timing: bool = flags.get_parsed("timing", false)?;
        let mut client = gee_serve::Client::connect(addr)?;
        let started = std::time::Instant::now();
        let response = client.execute(graph, request)?;
        if timing {
            // Client-measured round-trip on stderr, so timing never
            // perturbs the parseable stdout payload. Same clock the
            // load generator records with.
            eprintln!("round-trip: {} µs", gee_loadgen::elapsed_micros(started));
        }
        render_response(&mut out, &response);
        client.goodbye()?;
        return Ok(out);
    }
    let (engine, _) = build_engine(flags, "classes", 50)?;
    match engine.execute("g", request) {
        Ok(r) => render_response(&mut out, &r),
        Err(e) => return Err(CliError::Usage(format!("query failed: {e}"))),
    }
    Ok(out)
}

/// `bench`: multi-client load generation against a running server, with
/// per-request CSV rows and a BENCH_*.json report.
fn bench(flags: &Flags) -> crate::Result<String> {
    use gee_loadgen::{run_bench, Analysis, BenchConfig, Mix};
    let addr = flags.require("connect")?.to_string();
    let graph = flags.get("name").unwrap_or("g").to_string();
    let mix_str = flags
        .get("mix")
        .unwrap_or("read=90,write=5,timetravel=3,ann=2");
    let mix = Mix::parse(mix_str).map_err(CliError::Usage)?;
    let clients: usize = flags.get_parsed("clients", 2)?;
    if clients == 0 {
        return Err(CliError::Usage(
            "bench: --clients must be at least 1".into(),
        ));
    }
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let requests_per_client: Option<u64> = flags
        .get("requests")
        .map(|raw| {
            raw.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("flag --requests: cannot parse {raw:?}")))
        })
        .transpose()?;
    // Duration bounds the run unless a fixed request count was asked
    // for *instead* — then the count alone decides (deterministic mode).
    let duration = match (flags.get("duration"), requests_per_client) {
        (None, Some(_)) => None,
        _ => {
            let secs: f64 = flags.get_parsed("duration", 5.0)?;
            if secs <= 0.0 {
                return Err(CliError::Usage("bench: --duration must be positive".into()));
            }
            Some(std::time::Duration::from_secs_f64(secs))
        }
    };
    let target_qps: Option<f64> = flags
        .get("qps")
        .map(|raw| {
            raw.parse::<f64>()
                .ok()
                .filter(|q| *q > 0.0)
                .ok_or_else(|| CliError::Usage(format!("flag --qps: cannot parse {raw:?}")))
        })
        .transpose()?;
    let poll_ms: u64 = flags.get_parsed("poll-metrics", 500u64)?;
    let config = BenchConfig {
        graph,
        mix,
        clients,
        seed,
        duration,
        requests_per_client,
        target_qps,
        poll_metrics: (poll_ms > 0).then(|| std::time::Duration::from_millis(poll_ms)),
    };
    let t0 = std::time::Instant::now();
    let records = run_bench(&config, || gee_serve::Client::connect(&addr))?;
    let elapsed = t0.elapsed();

    if let Some(path) = flags.get("csv") {
        let mut csv = String::with_capacity(records.len() * 48);
        csv.push_str(gee_loadgen::CSV_HEADER);
        csv.push('\n');
        for r in &records {
            csv.push_str(&r.to_csv_row());
            csv.push('\n');
        }
        std::fs::write(path, csv)?;
    }

    let mut analysis = Analysis::new();
    for r in &records {
        analysis.ingest(r);
    }
    if let Some(path) = flags.get("json") {
        let meta = serde_json::json!({
            "connect": addr,
            "graph": config.graph,
            "mix": config.mix.to_string(),
            "clients": clients,
            "seed": seed,
            "mode": if target_qps.is_some() { "open" } else { "closed" },
            "poll_metrics_ms": poll_ms,
            "records": analysis.records(),
            "span_secs": analysis.span_secs(),
            "max_epoch": analysis.max_epoch(),
            "max_epoch_lag": analysis.max_epoch_lag(),
        });
        gee_loadgen::write_json(
            path,
            &gee_loadgen::report::analysis_report("serve_loadgen", meta, &analysis),
        )?;
    }
    let mut out = render_analysis(&analysis);
    writeln!(
        out,
        "{} request(s) from {clients} client(s) in {elapsed:.2?} (mix {mix_str}, seed {seed})",
        analysis.records()
    )
    .unwrap();
    Ok(out)
}

/// `bench-report`: the stdin→stdout analytics filter over bench CSV.
fn bench_report(flags: &Flags) -> crate::Result<String> {
    use gee_loadgen::Analysis;
    use std::io::BufRead;
    let mut analysis = Analysis::new();
    let ingest = |analysis: &mut Analysis, reader: &mut dyn BufRead| -> crate::Result<()> {
        for line in reader.lines() {
            analysis.ingest_csv_line(&line?).map_err(CliError::Usage)?;
        }
        Ok(())
    };
    match flags.get("in") {
        Some(path) => {
            let file = std::fs::File::open(path)?;
            ingest(&mut analysis, &mut std::io::BufReader::new(file))?;
        }
        None => ingest(&mut analysis, &mut std::io::stdin().lock())?,
    }
    let meta = serde_json::json!({
        "records": analysis.records(),
        "span_secs": analysis.span_secs(),
        "max_epoch": analysis.max_epoch(),
        "max_epoch_lag": analysis.max_epoch_lag(),
    });
    let report = gee_loadgen::report::analysis_report(
        flags.get("bench").unwrap_or("serve_loadgen"),
        meta,
        &analysis,
    );
    if let Some(path) = flags.get("json") {
        gee_loadgen::write_json(path, &report)?;
        return Ok(render_analysis(&analysis));
    }
    let mut text = serde_json::to_string_pretty(&report).expect("reports always serialize");
    text.push('\n');
    Ok(text)
}

/// Human-readable per-type summary of a bench analysis.
fn render_analysis(analysis: &gee_loadgen::Analysis) -> String {
    let mut out = String::new();
    let q = |est: Option<f64>| est.map_or(0u64, |v| v.round() as u64);
    for (kind, summary) in analysis.types() {
        writeln!(
            out,
            "{kind:>10}: {:>7} requests, {:>9.1} q/s, p50 {} µs, p99 {} µs, p999 {} µs, {} error(s)",
            summary.latency_us.count,
            analysis.qps(summary),
            q(summary.p50.estimate()),
            q(summary.p99.estimate()),
            q(summary.p999.estimate()),
            summary.errors,
        )
        .unwrap();
    }
    writeln!(
        out,
        "span {:.2}s | max epoch {} | max epoch lag {}",
        analysis.span_secs(),
        analysis.max_epoch(),
        analysis.max_epoch_lag()
    )
    .unwrap();
    out
}

fn convert(flags: &Flags) -> crate::Result<String> {
    if flags.num_positional() != 2 {
        return Err(CliError::Usage("convert: need <in-file> <out-file>".into()));
    }
    let input = flags.positional(0).expect("checked");
    let output = flags.positional(1).expect("checked");
    let el = read_graph(Path::new(input))?;
    write_graph(Path::new(output), &el)?;
    Ok(format!(
        "converted {input} → {output} ({} vertices, {} edges)\n",
        el.num_vertices(),
        el.num_edges()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn no_args_shows_usage() {
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&sv(&["help"])).unwrap();
        assert!(out.contains("subcommands"));
    }

    #[test]
    fn unknown_subcommand() {
        assert!(matches!(run(&sv(&["frobnicate"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn generate_stats_embed_pipeline() {
        let graph = tmp("gee_cli_pipe.txt");
        let emb = tmp("gee_cli_pipe.csv");
        let out = run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "500",
            "--edges",
            "4000",
            "--out",
            &graph,
        ]))
        .unwrap();
        assert!(out.contains("4000 edges"), "{out}");
        let out = run(&sv(&["stats", &graph])).unwrap();
        assert!(out.contains("vertices      : 500"), "{out}");
        let out = run(&sv(&[
            "embed",
            "--graph",
            &graph,
            "--out",
            &emb,
            "--k",
            "5",
            "--impl",
            "optimized",
        ]))
        .unwrap();
        assert!(out.contains("Z is 500×5"), "{out}");
        let csv = std::fs::read_to_string(&emb).unwrap();
        assert_eq!(csv.lines().count(), 500);
        assert_eq!(csv.lines().next().unwrap().split(',').count(), 6);
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&emb).ok();
    }

    #[test]
    fn generate_sbm_and_communities() {
        let graph = tmp("gee_cli_sbm.txt");
        run(&sv(&[
            "generate",
            "--kind",
            "sbm",
            "--blocks",
            "3",
            "--vertices",
            "120",
            "--p-in",
            "0.4",
            "--p-out",
            "0.01",
            "--out",
            &graph,
        ]))
        .unwrap();
        let out = run(&sv(&["communities", "--graph", &graph, "--algo", "leiden"])).unwrap();
        assert!(out.contains("3 communities"), "{out}");
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn convert_between_formats() {
        let a = tmp("gee_cli_conv.txt");
        let b = tmp("gee_cli_conv.mtx");
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "50",
            "--edges",
            "200",
            "--out",
            &a,
        ]))
        .unwrap();
        let out = run(&sv(&["convert", &a, &b])).unwrap();
        assert!(out.contains("200 edges"), "{out}");
        let back = read_graph(Path::new(&b)).unwrap();
        assert_eq!(back.num_edges(), 200);
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn embed_rejects_unknown_impl() {
        let graph = tmp("gee_cli_impl.txt");
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "20",
            "--edges",
            "50",
            "--out",
            &graph,
        ]))
        .unwrap();
        let r = run(&sv(&[
            "embed",
            "--graph",
            &graph,
            "--out",
            "/dev/null",
            "--impl",
            "magic",
        ]));
        assert!(matches!(r, Err(CliError::Usage(_))));
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn generate_requires_out() {
        assert!(matches!(
            run(&sv(&["generate", "--kind", "er"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn generate_watts_strogatz_and_powerlaw() {
        let graph = tmp("gee_cli_ws.txt");
        let out = run(&sv(&[
            "generate",
            "--kind",
            "ws",
            "--vertices",
            "100",
            "--lattice-k",
            "4",
            "--beta",
            "0.2",
            "--out",
            &graph,
        ]))
        .unwrap();
        assert!(out.contains("100 vertices"), "{out}");
        let out = run(&sv(&[
            "generate",
            "--kind",
            "powerlaw",
            "--vertices",
            "200",
            "--alpha",
            "2.5",
            "--out",
            &graph,
        ]))
        .unwrap();
        assert!(out.contains("200 vertices"), "{out}");
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn embed_deterministic_impl() {
        let graph = tmp("gee_cli_det.txt");
        let emb = tmp("gee_cli_det.csv");
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "200",
            "--edges",
            "1000",
            "--out",
            &graph,
        ]))
        .unwrap();
        let out = run(&sv(&[
            "embed",
            "--graph",
            &graph,
            "--out",
            &emb,
            "--k",
            "4",
            "--impl",
            "deterministic",
        ]))
        .unwrap();
        assert!(out.contains("Z is 200×4"), "{out}");
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&emb).ok();
    }

    #[test]
    fn analyze_runs_every_algorithm() {
        let graph = tmp("gee_cli_analyze.txt");
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "300",
            "--edges",
            "2400",
            "--out",
            &graph,
        ]))
        .unwrap();
        for (algo, needle) in [
            ("cc", "connected components"),
            ("pagerank", "top-5 PageRank"),
            ("kcore", "degeneracy"),
            ("sssp", "reachable"),
            ("bfs", "reachable"),
            ("triangles", "triangles:"),
            ("matching", "maximal matching"),
            ("dominating-set", "dominating set"),
            ("densest", "densest subgraph"),
        ] {
            let out = run(&sv(&["analyze", "--graph", &graph, "--algo", algo])).unwrap();
            assert!(out.contains(needle), "{algo}: {out}");
        }
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn serve_runs_a_script_end_to_end() {
        let graph = tmp("gee_cli_serve.txt");
        let script = tmp("gee_cli_serve.script");
        run(&sv(&[
            "generate",
            "--kind",
            "sbm",
            "--blocks",
            "3",
            "--vertices",
            "120",
            "--p-in",
            "0.4",
            "--p-out",
            "0.01",
            "--out",
            &graph,
        ]))
        .unwrap();
        std::fs::write(
            &script,
            "# smoke script\n\
             classify 0,1,2 3\n\
             similar 5 4\n\
             row 7\n\
             insert 0 1 2.5\n\
             label 3 1\n\
             remove 0 1 2.5\n\
             stats\n",
        )
        .unwrap();
        let out = run(&sv(&[
            "serve",
            "--graph",
            &graph,
            "--script",
            &script,
            "--k",
            "3",
            "--labeled",
            "0.5",
            "--shards",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("classes:"), "{out}");
        assert!(out.contains("neighbors:"), "{out}");
        assert!(out.contains("row:"), "{out}");
        assert!(out.contains("applied 1 update(s); now at epoch 3"), "{out}");
        assert!(
            out.contains("epoch 3 (retained from 3) | 120 vertices × 3 dims, 3 shards"),
            "{out}"
        );
        assert!(out.contains("served 7 request(s)"), "{out}");
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&script).ok();
    }

    #[test]
    fn serve_rejects_bad_script_line() {
        let graph = tmp("gee_cli_serve_bad.txt");
        let script = tmp("gee_cli_serve_bad.script");
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "30",
            "--edges",
            "100",
            "--out",
            &graph,
        ]))
        .unwrap();
        std::fs::write(&script, "frobnicate 1 2\n").unwrap();
        let r = run(&sv(&["serve", "--graph", &graph, "--script", &script]));
        assert!(matches!(r, Err(CliError::Usage(_))));
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&script).ok();
    }

    #[test]
    fn query_classify_and_stats() {
        let graph = tmp("gee_cli_query.txt");
        run(&sv(&[
            "generate",
            "--kind",
            "sbm",
            "--blocks",
            "3",
            "--vertices",
            "90",
            "--p-in",
            "0.4",
            "--p-out",
            "0.01",
            "--out",
            &graph,
        ]))
        .unwrap();
        let out = run(&sv(&[
            "query",
            "--graph",
            &graph,
            "--classify",
            "0,1,2",
            "--classes",
            "3",
            "--labeled",
            "0.5",
            "--k",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("classes:"), "{out}");
        let out = run(&sv(&["query", "--graph", &graph, "--stats", "true"])).unwrap();
        assert!(out.contains("90 vertices"), "{out}");
        let out = run(&sv(&[
            "query",
            "--graph",
            &graph,
            "--similar",
            "4",
            "--top",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("neighbors:"), "{out}");
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn query_at_epoch_pins_and_reports_eviction() {
        let graph = tmp("gee_cli_query_epoch.txt");
        run(&sv(&[
            "generate",
            "--kind",
            "sbm",
            "--blocks",
            "3",
            "--vertices",
            "90",
            "--p-in",
            "0.4",
            "--p-out",
            "0.01",
            "--out",
            &graph,
        ]))
        .unwrap();
        // A fresh engine serves only epoch 0: a pinned read at 0 answers
        // exactly like the unpinned read.
        let base = |extra: &[&str]| {
            let mut args = vec!["query", "--graph", &graph, "--row", "7", "--seed", "9"];
            args.extend_from_slice(extra);
            run(&sv(&args))
        };
        let unpinned = base(&[]).unwrap();
        let pinned = base(&["--at-epoch", "0"]).unwrap();
        assert_eq!(unpinned, pinned);
        // Pinning an epoch the ring does not retain is the typed
        // EpochEvicted failure (code 13), surfaced in the message.
        let err = base(&["--at-epoch", "5"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("not retained"), "{msg}");
        // Stats reports the retained range.
        let out = run(&sv(&[
            "query",
            "--graph",
            &graph,
            "--stats",
            "true",
            "--history",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("epoch 0 (retained from 0)"), "{out}");
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn serve_listen_and_query_connect_end_to_end() {
        let graph = tmp("gee_cli_listen.txt");
        let port_file = tmp("gee_cli_listen.port");
        std::fs::remove_file(&port_file).ok();
        run(&sv(&[
            "generate",
            "--kind",
            "sbm",
            "--blocks",
            "3",
            "--vertices",
            "90",
            "--p-in",
            "0.4",
            "--p-out",
            "0.01",
            "--out",
            &graph,
        ]))
        .unwrap();
        let serve_args = sv(&[
            "serve",
            "--graph",
            &graph,
            "--listen",
            "127.0.0.1:0",
            "--max-conns",
            "2",
            "--port-file",
            &port_file,
            "--k",
            "3",
            "--labeled",
            "0.5",
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        // Wait for the server to write its bound address.
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(addr) = std::fs::read_to_string(&port_file) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                tries += 1;
                assert!(tries < 200, "server never wrote its port file");
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        };
        let out = run(&sv(&["query", "--connect", &addr, "--stats", "true"])).unwrap();
        assert!(out.contains("90 vertices"), "{out}");
        let out = run(&sv(&[
            "query",
            "--connect",
            &addr,
            "--classify",
            "0,1,2",
            "--k",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("classes:"), "{out}");
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("served 2 connection(s)"), "{out}");
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&port_file).ok();
    }

    #[test]
    fn query_connect_reports_typed_errors() {
        let graph = tmp("gee_cli_connect_err.txt");
        let port_file = tmp("gee_cli_connect_err.port");
        std::fs::remove_file(&port_file).ok();
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "40",
            "--edges",
            "150",
            "--out",
            &graph,
        ]))
        .unwrap();
        let serve_args = sv(&[
            "serve",
            "--graph",
            &graph,
            "--listen",
            "127.0.0.1:0",
            "--max-conns",
            "1",
            "--port-file",
            &port_file,
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(addr) = std::fs::read_to_string(&port_file) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                tries += 1;
                assert!(tries < 200, "server never wrote its port file");
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        };
        let r = run(&sv(&[
            "query",
            "--connect",
            &addr,
            "--name",
            "nope",
            "--stats",
            "true",
        ]));
        match r {
            Err(CliError::Serve(e)) => {
                assert!(
                    matches!(e, gee_serve::ServeError::UnknownGraph { .. }),
                    "{e}"
                )
            }
            other => panic!("expected typed serve error, got {other:?}"),
        }
        server.join().unwrap().unwrap();
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&port_file).ok();
    }

    #[test]
    fn bench_against_live_server_emits_csv_and_json() {
        let graph = tmp("gee_cli_bench.txt");
        let port_file = tmp("gee_cli_bench.port");
        let csv_path = tmp("gee_cli_bench.csv");
        let json_path = tmp("gee_cli_bench.json");
        std::fs::remove_file(&port_file).ok();
        run(&sv(&[
            "generate",
            "--kind",
            "sbm",
            "--blocks",
            "3",
            "--vertices",
            "150",
            "--p-in",
            "0.3",
            "--p-out",
            "0.02",
            "--out",
            &graph,
        ]))
        .unwrap();
        // 2 bench clients + 1 metrics poller + 1 final --metrics query.
        let serve_args = sv(&[
            "serve",
            "--graph",
            &graph,
            "--listen",
            "127.0.0.1:0",
            "--history",
            "256",
            "--k",
            "3",
            "--labeled",
            "0.5",
            "--max-conns",
            "4",
            "--port-file",
            &port_file,
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(addr) = std::fs::read_to_string(&port_file) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                tries += 1;
                assert!(tries < 200, "server never wrote its port file");
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        };
        let out = run(&sv(&[
            "bench",
            "--connect",
            &addr,
            "--clients",
            "2",
            "--requests",
            "60",
            "--seed",
            "7",
            "--poll-metrics",
            "50",
            "--csv",
            &csv_path,
            "--json",
            &json_path,
        ]))
        .unwrap();
        assert!(out.contains("read:"), "{out}");
        // 120 client requests plus a timing-dependent number of poller
        // samples.
        assert!(out.contains("request(s) from 2 client(s)"), "{out}");
        // CSV: header + 120 client rows + at least one server row.
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(gee_loadgen::CSV_HEADER));
        assert!(csv.lines().count() > 120, "server rows interleaved: {csv}");
        assert!(csv.contains(",server,"), "{csv}");
        // JSON: the BENCH envelope with per-type stats, zero errors.
        let json = std::fs::read_to_string(&json_path).unwrap();
        let report: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(report["schema"].as_str(), Some(gee_loadgen::BENCH_SCHEMA));
        assert_eq!(report["bench"].as_str(), Some("serve_loadgen"));
        assert_eq!(report["meta"]["clients"].as_u64(), Some(2));
        for kind in ["read", "write", "timetravel", "ann", "server"] {
            let t = &report["per_type"][kind];
            assert!(t.get("count").is_some(), "missing per_type {kind}: {json}");
            assert_eq!(t["error_rate"].as_f64(), Some(0.0), "{kind} errors");
            assert!(t["p50_us"].as_f64().is_some(), "{kind} p50");
        }
        // The server's own v4 metrics agree the traffic happened.
        let out = run(&sv(&["query", "--connect", &addr, "--metrics", "true"])).unwrap();
        assert!(out.contains("metrics: graph \"g\""), "{out}");
        server.join().unwrap().unwrap();
        // bench-report over the CSV reproduces the same per-type counts.
        let reread = run(&sv(&["bench-report", "--in", &csv_path])).unwrap();
        let reread: serde_json::Value = serde_json::from_str(&reread).unwrap();
        assert_eq!(
            reread["per_type"]["read"]["count"],
            report["per_type"]["read"]["count"]
        );
        assert_eq!(
            reread["per_type"]["read"]["p50_us"],
            report["per_type"]["read"]["p50_us"]
        );
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&port_file).ok();
        std::fs::remove_file(&csv_path).ok();
        std::fs::remove_file(&json_path).ok();
    }

    #[test]
    fn bench_rejects_bad_flags() {
        for args in [
            vec!["bench"],
            vec!["bench", "--connect", "127.0.0.1:1", "--mix", "red=9"],
            vec!["bench", "--connect", "127.0.0.1:1", "--clients", "0"],
            vec!["bench", "--connect", "127.0.0.1:1", "--duration", "0"],
            vec!["bench", "--connect", "127.0.0.1:1", "--qps", "-3"],
        ] {
            assert!(
                matches!(run(&sv(&args)), Err(CliError::Usage(_))),
                "{args:?}"
            );
        }
    }

    #[test]
    fn bench_report_filters_csv_to_bench_json() {
        let csv_path = tmp("gee_cli_bench_report.csv");
        std::fs::write(
            &csv_path,
            format!(
                "{}\n0,0,read,100,ok,1,\n50,1,read,200,ok,1,\n120,0,write,900,error,1,boom\n",
                gee_loadgen::CSV_HEADER
            ),
        )
        .unwrap();
        let out = run(&sv(&[
            "bench-report",
            "--in",
            &csv_path,
            "--bench",
            "smoke",
        ]))
        .unwrap();
        let report: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(report["bench"].as_str(), Some("smoke"));
        assert_eq!(report["schema"].as_str(), Some("gee-bench-v1"));
        assert_eq!(report["meta"]["records"].as_u64(), Some(3));
        assert_eq!(report["per_type"]["read"]["count"].as_u64(), Some(2));
        assert_eq!(
            report["per_type"]["write"]["error_rate"].as_f64(),
            Some(1.0)
        );
        // Malformed rows are usage errors, not panics.
        std::fs::write(&csv_path, "not,a,valid,row\n").unwrap();
        assert!(matches!(
            run(&sv(&["bench-report", "--in", &csv_path])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&csv_path).ok();
    }

    #[test]
    fn query_timing_flag_is_accepted_over_the_wire() {
        let graph = tmp("gee_cli_timing.txt");
        let port_file = tmp("gee_cli_timing.port");
        std::fs::remove_file(&port_file).ok();
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "60",
            "--edges",
            "240",
            "--out",
            &graph,
        ]))
        .unwrap();
        let serve_args = sv(&[
            "serve",
            "--graph",
            &graph,
            "--listen",
            "127.0.0.1:0",
            "--max-conns",
            "1",
            "--port-file",
            &port_file,
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(addr) = std::fs::read_to_string(&port_file) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                tries += 1;
                assert!(tries < 200, "server never wrote its port file");
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        };
        // --timing writes to stderr only: stdout stays byte-identical
        // to the untimed render for the same deterministic stats view.
        let out = run(&sv(&[
            "query",
            "--connect",
            &addr,
            "--stats",
            "true",
            "--timing",
            "true",
        ]))
        .unwrap();
        assert!(out.contains("60 vertices"), "{out}");
        assert!(!out.contains("round-trip"), "timing must not hit stdout");
        server.join().unwrap().unwrap();
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&port_file).ok();
    }

    #[test]
    fn serve_data_dir_survives_restart_and_recover_reports() {
        let graph = tmp("gee_cli_durable.txt");
        let script = tmp("gee_cli_durable.script");
        let data_dir = tmp("gee_cli_durable_data");
        std::fs::remove_dir_all(&data_dir).ok();
        run(&sv(&[
            "generate",
            "--kind",
            "sbm",
            "--blocks",
            "3",
            "--vertices",
            "90",
            "--p-in",
            "0.4",
            "--p-out",
            "0.01",
            "--out",
            &graph,
        ]))
        .unwrap();
        std::fs::write(&script, "insert 0 1 2.5\nlabel 3 1\nstats\n").unwrap();
        let out = run(&sv(&[
            "serve",
            "--graph",
            &graph,
            "--script",
            &script,
            "--k",
            "3",
            "--labeled",
            "0.5",
            "--data-dir",
            &data_dir,
        ]))
        .unwrap();
        assert!(out.contains("epoch 2"), "{out}");
        // Restart without --graph: the graph comes back from the WAL.
        std::fs::write(&script, "stats\nlabel 5 2\n").unwrap();
        let out = run(&sv(&[
            "serve",
            "--script",
            &script,
            "--data-dir",
            &data_dir,
        ]))
        .unwrap();
        assert!(
            out.contains("epoch 2 (retained from 2) | 90 vertices"),
            "{out}"
        );
        // recover: reports the state (now at epoch 3 after the label).
        let out = run(&sv(&["recover", "--data-dir", &data_dir])).unwrap();
        assert!(out.contains("recovered 1 graph(s)"), "{out}");
        assert!(out.contains("\"g\": epoch 3 | 90 vertices"), "{out}");
        // Replication coordinates: register + 3 update batches = 4
        // records, and nothing has checkpointed yet.
        assert!(out.contains("wal high-water lsn 4"), "{out}");
        assert!(out.contains("no checkpoint on disk"), "{out}");
        // --checkpoint false must NOT compact.
        let out = run(&sv(&[
            "recover",
            "--data-dir",
            &data_dir,
            "--checkpoint",
            "false",
        ]))
        .unwrap();
        assert!(!out.contains("WAL compacted"), "{out}");
        // recover --checkpoint true compacts the WAL.
        let out = run(&sv(&[
            "recover",
            "--data-dir",
            &data_dir,
            "--checkpoint",
            "true",
        ]))
        .unwrap();
        assert!(out.contains("WAL compacted"), "{out}");
        // Damage the checkpoint: recovery must fail typed, not panic.
        let ckpt = std::fs::read_dir(&data_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.to_string_lossy().ends_with(".ckpt"))
            .expect("a checkpoint exists after --checkpoint true");
        let mut bytes = std::fs::read(&ckpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x11;
        std::fs::write(&ckpt, &bytes).unwrap();
        match run(&sv(&["recover", "--data-dir", &data_dir])) {
            Err(CliError::Serve(e)) => {
                assert!(matches!(e, gee_serve::ServeError::Corrupt { .. }), "{e}")
            }
            other => panic!("expected typed Corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&script).ok();
        std::fs::remove_dir_all(&data_dir).ok();
    }

    #[test]
    fn serve_follow_replicates_and_serves_identical_reads() {
        let graph = tmp("gee_cli_repl.txt");
        let script = tmp("gee_cli_repl.script");
        let leader_dir = tmp("gee_cli_repl_leader");
        let follower_dir = tmp("gee_cli_repl_follower");
        let leader_port = tmp("gee_cli_repl_leader.port");
        let repl_port = tmp("gee_cli_repl_repl.port");
        let follower_port = tmp("gee_cli_repl_follower.port");
        for f in [&leader_port, &repl_port, &follower_port] {
            std::fs::remove_file(f).ok();
        }
        for d in [&leader_dir, &follower_dir] {
            std::fs::remove_dir_all(d).ok();
        }
        run(&sv(&[
            "generate",
            "--kind",
            "sbm",
            "--blocks",
            "3",
            "--vertices",
            "90",
            "--p-in",
            "0.4",
            "--p-out",
            "0.01",
            "--out",
            &graph,
        ]))
        .unwrap();
        // Two committed write batches before any server comes up.
        std::fs::write(&script, "insert 0 1 2.5\nlabel 3 1\n").unwrap();
        run(&sv(&[
            "serve",
            "--graph",
            &graph,
            "--script",
            &script,
            "--k",
            "3",
            "--labeled",
            "0.5",
            "--data-dir",
            &leader_dir,
        ]))
        .unwrap();

        let wait_port = |file: &str| {
            let mut tries = 0;
            loop {
                if let Ok(addr) = std::fs::read_to_string(file) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                tries += 1;
                assert!(tries < 200, "no port file at {file}");
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        };

        // Leader: one client connection's worth of serving, plus the
        // replication listener.
        let leader_args = sv(&[
            "serve",
            "--data-dir",
            &leader_dir,
            "--listen",
            "127.0.0.1:0",
            "--max-conns",
            "1",
            "--port-file",
            &leader_port,
            "--replicate",
            "127.0.0.1:0",
            "--replicate-port-file",
            &repl_port,
        ]);
        let leader = std::thread::spawn(move || run(&leader_args));
        let repl_addr = wait_port(&repl_port);

        // Follower: bootstraps from the leader's stream into its own
        // data dir and serves reads on its own port.
        const FOLLOWER_CONNS: usize = 120;
        let follower_args = sv(&[
            "serve",
            "--follow",
            &repl_addr,
            "--data-dir",
            &follower_dir,
            "--listen",
            "127.0.0.1:0",
            "--max-conns",
            &FOLLOWER_CONNS.to_string(),
            "--port-file",
            &follower_port,
        ]);
        let follower = std::thread::spawn(move || run(&follower_args));
        let follower_addr = wait_port(&follower_port);

        // Poll replica stats until it has converged (epoch 2, zero lag).
        let mut polls = 0;
        loop {
            let out = run(&sv(&[
                "query",
                "--connect",
                &follower_addr,
                "--stats",
                "true",
            ]))
            .unwrap();
            polls += 1;
            if out.contains("epoch 2") && out.contains("lag 0 epoch(s) / 0 lsn(s)") {
                assert!(out.contains("replication: follower (connected)"), "{out}");
                break;
            }
            assert!(polls < FOLLOWER_CONNS - 2, "replica never converged: {out}");
            std::thread::sleep(std::time::Duration::from_millis(50));
        }

        // The same pinned read answers identically on both sides.
        let ask = |addr: &str| {
            run(&sv(&[
                "query",
                "--connect",
                addr,
                "--classify",
                "0,1,2,3",
                "--k",
                "3",
                "--at-epoch",
                "2",
            ]))
            .unwrap()
        };
        let leader_addr = wait_port(&leader_port);
        let from_leader = ask(&leader_addr);
        let from_follower = ask(&follower_addr);
        polls += 1;
        assert_eq!(from_leader, from_follower, "replica reads diverged");
        assert!(from_leader.starts_with("classes:"), "{from_leader}");

        // Drain the follower's remaining connection budget so its
        // accept loop exits and the thread joins.
        for _ in polls..FOLLOWER_CONNS {
            let _ = std::net::TcpStream::connect(&follower_addr);
        }
        let out = follower.join().unwrap().unwrap();
        assert!(out.contains("replica exiting at lsn 3"), "{out}");
        leader.join().unwrap().unwrap();

        // The replica's own recover report shows the replicated log.
        let out = run(&sv(&["recover", "--data-dir", &follower_dir])).unwrap();
        assert!(out.contains("\"g\": epoch 2 | 90 vertices"), "{out}");
        assert!(out.contains("wal high-water lsn 3"), "{out}");

        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&script).ok();
        for f in [&leader_port, &repl_port, &follower_port] {
            std::fs::remove_file(f).ok();
        }
        for d in [&leader_dir, &follower_dir] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn serve_follow_requires_data_dir_and_listen() {
        assert!(matches!(
            run(&sv(&["serve", "--follow", "127.0.0.1:1"])),
            Err(CliError::Usage(m)) if m.contains("--data-dir")
        ));
        let dir = tmp("gee_cli_follow_nodir");
        let r = run(&sv(&[
            "serve",
            "--follow",
            "127.0.0.1:1",
            "--data-dir",
            &dir,
        ]));
        assert!(matches!(r, Err(CliError::Usage(m)) if m.contains("--listen")));
        // --replicate without --data-dir is refused before binding anything.
        let graph = tmp("gee_cli_follow_nodir.txt");
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "30",
            "--edges",
            "60",
            "--out",
            &graph,
        ]))
        .unwrap();
        let r = run(&sv(&[
            "serve",
            "--graph",
            &graph,
            "--listen",
            "127.0.0.1:0",
            "--max-conns",
            "0",
            "--replicate",
            "127.0.0.1:0",
        ]));
        assert!(matches!(r, Err(CliError::Usage(m)) if m.contains("--data-dir")));
        std::fs::remove_file(&graph).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_requires_data_dir_and_rejects_bad_sync() {
        assert!(matches!(run(&sv(&["recover"])), Err(CliError::Usage(_))));
        let data_dir = tmp("gee_cli_badsync_data");
        let r = run(&sv(&[
            "recover",
            "--data-dir",
            &data_dir,
            "--sync",
            "sometimes",
        ]));
        assert!(matches!(r, Err(CliError::Usage(_))));
        std::fs::remove_dir_all(&data_dir).ok();
    }

    #[test]
    fn query_requires_a_request_kind() {
        let graph = tmp("gee_cli_query_none.txt");
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "20",
            "--edges",
            "40",
            "--out",
            &graph,
        ]))
        .unwrap();
        let r = run(&sv(&["query", "--graph", &graph]));
        assert!(matches!(r, Err(CliError::Usage(_))));
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn analyze_rejects_unknown_algo() {
        let graph = tmp("gee_cli_analyze_bad.txt");
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "20",
            "--edges",
            "40",
            "--out",
            &graph,
        ]))
        .unwrap();
        let r = run(&sv(&["analyze", "--graph", &graph, "--algo", "frobnicate"]));
        assert!(matches!(r, Err(CliError::Usage(_))));
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn serve_and_query_with_ivf_index() {
        // 600 vertices on 2 shards = 300 rows each — above the IVF
        // row-count threshold, so --index ivf genuinely indexes.
        let graph = tmp("gee_cli_ivf.txt");
        let script = tmp("gee_cli_ivf.script");
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "600",
            "--edges",
            "3600",
            "--out",
            &graph,
        ]))
        .unwrap();
        std::fs::write(&script, "similar 5 10\nclassify 0,1,2 3\nstats\n").unwrap();
        let out = run(&sv(&[
            "serve", "--graph", &graph, "--script", &script, "--shards", "2", "--index", "ivf",
            "--nprobe", "4",
        ]))
        .unwrap();
        assert!(out.contains("neighbors:"), "{out}");
        assert!(out.contains("classes:"), "{out}");
        // The per-request exact escape hatch and an ANN override both
        // answer; with a generous nprobe they agree exactly.
        let exact = run(&sv(&[
            "query",
            "--graph",
            &graph,
            "--similar",
            "5",
            "--shards",
            "2",
            "--exact",
            "true",
        ]))
        .unwrap();
        let ann_full = run(&sv(&[
            "query",
            "--graph",
            &graph,
            "--similar",
            "5",
            "--shards",
            "2",
            "--nprobe",
            "600",
        ]))
        .unwrap();
        assert!(exact.contains("neighbors:"), "{exact}");
        assert_eq!(exact, ann_full, "full probe equals the exact scan");
        // Unknown index kinds are usage errors.
        let r = run(&sv(&[
            "serve", "--graph", &graph, "--script", &script, "--index", "hnsw",
        ]));
        assert!(matches!(r, Err(CliError::Usage(_))));
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&script).ok();
    }

    #[test]
    fn query_search_overrides_travel_the_wire() {
        let graph = tmp("gee_cli_ivf_net.txt");
        let port_file = tmp("gee_cli_ivf_net.port");
        std::fs::remove_file(&port_file).ok();
        run(&sv(&[
            "generate",
            "--kind",
            "er",
            "--vertices",
            "600",
            "--edges",
            "3000",
            "--out",
            &graph,
        ]))
        .unwrap();
        let serve_args = sv(&[
            "serve",
            "--graph",
            &graph,
            "--listen",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--index",
            "ivf",
            "--nprobe",
            "4",
            "--max-conns",
            "2",
            "--port-file",
            &port_file,
        ]);
        let server = std::thread::spawn(move || run(&serve_args));
        let addr = {
            let mut tries = 0;
            loop {
                if let Ok(addr) = std::fs::read_to_string(&port_file) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                tries += 1;
                assert!(tries < 200, "server never wrote its port file");
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        };
        // The exact escape hatch and an ANN override both ride protocol
        // v3 to a --listen server configured with an IVF default.
        let out = run(&sv(&[
            "query",
            "--connect",
            &addr,
            "--similar",
            "7",
            "--exact",
            "true",
        ]))
        .unwrap();
        assert!(out.contains("neighbors:"), "{out}");
        let out = run(&sv(&[
            "query",
            "--connect",
            &addr,
            "--similar",
            "7",
            "--nprobe",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("neighbors:"), "{out}");
        server.join().unwrap().unwrap();
        std::fs::remove_file(&graph).ok();
        std::fs::remove_file(&port_file).ok();
    }
}
