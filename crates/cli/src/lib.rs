//! Implementation of the `gee` command-line tool. All command logic lives
//! here (returning the output as a `String`) so it is unit-testable; the
//! binary is a three-line wrapper.

mod commands;
mod flags;
mod formats;

pub use commands::run;
pub use flags::Flags;
pub use formats::{detect_format, read_graph, write_graph, Format};

/// CLI errors: either bad usage (with help text) or an underlying failure.
#[derive(Debug)]
pub enum CliError {
    /// Wrong flags/arguments; the string is a usage message.
    Usage(String),
    /// Graph I/O or processing failure.
    Graph(gee_graph::GraphError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serving/wire-protocol failure (typed; see `gee_serve::ErrorCode`).
    Serve(gee_serve::ServeError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Graph(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Serve(e) => write!(f, "serve error [{}]: {e}", e.code().as_u16()),
        }
    }
}

impl std::error::Error for CliError {}

impl From<gee_serve::ServeError> for CliError {
    fn from(e: gee_serve::ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<gee_graph::GraphError> for CliError {
    fn from(e: gee_graph::GraphError) -> Self {
        CliError::Graph(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Result alias for CLI operations.
pub type Result<T> = std::result::Result<T, CliError>;
