//! Tiny flag parser: `--name value` pairs plus positional arguments.

use std::collections::HashMap;

use crate::CliError;

/// Parsed flags and positionals.
#[derive(Debug, Default)]
pub struct Flags {
    named: HashMap<String, String>,
    positional: Vec<String>,
}

impl Flags {
    /// Parse `args` (everything after the subcommand).
    pub fn parse(args: &[String]) -> crate::Result<Flags> {
        let mut out = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("flag --{name} needs a value")))?;
                out.named.insert(name.to_string(), value.clone());
                i += 2;
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Positional argument `idx`.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(|s| s.as_str())
    }

    /// Number of positionals.
    pub fn num_positional(&self) -> usize {
        self.positional.len()
    }

    /// String flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.named.get(name).map(|s| s.as_str())
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> crate::Result<&str> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
    }

    /// Parsed flag with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> crate::Result<T> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| CliError::Usage(format!("flag --{name}: cannot parse {raw:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_named_and_positional() {
        let f = Flags::parse(&sv(&["input.txt", "--k", "50", "out.csv"])).unwrap();
        assert_eq!(f.positional(0), Some("input.txt"));
        assert_eq!(f.positional(1), Some("out.csv"));
        assert_eq!(f.get("k"), Some("50"));
    }

    #[test]
    fn missing_value_is_usage_error() {
        assert!(matches!(
            Flags::parse(&sv(&["--k"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn typed_defaults() {
        let f = Flags::parse(&sv(&["--k", "7"])).unwrap();
        assert_eq!(f.get_parsed("k", 50usize).unwrap(), 7);
        assert_eq!(f.get_parsed("threads", 4usize).unwrap(), 4);
        assert!(f.get_parsed::<usize>("k", 0).is_ok());
    }

    #[test]
    fn bad_typed_value() {
        let f = Flags::parse(&sv(&["--k", "zebra"])).unwrap();
        assert!(f.get_parsed::<usize>("k", 0).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let f = Flags::parse(&[]).unwrap();
        match f.require("graph") {
            Err(CliError::Usage(m)) => assert!(m.contains("--graph")),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
