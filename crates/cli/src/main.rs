//! `gee` — command-line front end for the Edge-Parallel GEE reproduction.
//!
//! ```text
//! gee generate --kind rmat --scale 16 --edges 1000000 --out graph.txt
//! gee stats graph.txt
//! gee embed --graph graph.txt --k 50 --labeled 0.1 --out embedding.csv
//! gee communities --graph graph.txt --algo leiden
//! gee convert graph.txt graph.mtx
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gee_cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
