//! File-format detection and unified read/write by extension.

use std::io::{BufReader, BufWriter};
use std::path::Path;

use gee_graph::{io, CsrGraph, EdgeList};

use crate::CliError;

/// Supported graph file formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Whitespace `u v [w]` lines (`.txt`, `.el`, `.edgelist`).
    EdgeListText,
    /// SNAP repository text (`.snap`).
    Snap,
    /// Matrix Market coordinate (`.mtx`).
    MatrixMarket,
    /// Binary CSR dump (`.csr`).
    BinaryCsr,
    /// Streaming binary edges (`.edges`).
    EdgeStream,
}

/// Pick a format from the file extension.
pub fn detect_format(path: &Path) -> crate::Result<Format> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    match ext.to_ascii_lowercase().as_str() {
        "txt" | "el" | "edgelist" => Ok(Format::EdgeListText),
        "snap" => Ok(Format::Snap),
        "mtx" => Ok(Format::MatrixMarket),
        "csr" => Ok(Format::BinaryCsr),
        "edges" => Ok(Format::EdgeStream),
        other => Err(CliError::Usage(format!(
            "cannot infer format from extension {other:?} (known: .txt/.el/.edgelist, .snap, .mtx, .csr, .edges)"
        ))),
    }
}

/// Load a graph file (any supported format) as an edge list.
pub fn read_graph(path: &Path) -> crate::Result<EdgeList> {
    let format = detect_format(path)?;
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    Ok(match format {
        Format::EdgeListText => io::edgelist::read(reader, None)?,
        Format::Snap => io::snap::read(reader, io::snap::SnapOptions::default())?,
        Format::MatrixMarket => io::mtx::read(reader)?,
        Format::BinaryCsr => io::binary::read(&mut reader)?.to_edge_list(),
        Format::EdgeStream => {
            let mut r = io::edge_stream::EdgeStreamReader::new(reader)?;
            let mut buf = Vec::new();
            let mut all = Vec::with_capacity(r.num_edges());
            while r.read_chunk(&mut buf, 1 << 20)? > 0 {
                all.extend_from_slice(&buf);
            }
            EdgeList::new_unchecked(r.num_vertices(), all)
        }
    })
}

/// Write an edge list to a graph file (format from extension).
pub fn write_graph(path: &Path, el: &EdgeList) -> crate::Result<()> {
    let format = detect_format(path)?;
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    match format {
        Format::EdgeListText => io::edgelist::write(writer, el)?,
        Format::Snap => {
            return Err(CliError::Usage(
                "writing SNAP format is not supported; use .txt".into(),
            ))
        }
        Format::MatrixMarket => io::mtx::write(writer, el)?,
        Format::BinaryCsr => io::binary::write(&mut writer, &CsrGraph::from_edge_list(el))?,
        Format::EdgeStream => io::edge_stream::write(writer, el)?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::Edge;

    #[test]
    fn detection_by_extension() {
        assert_eq!(
            detect_format(Path::new("a.txt")).unwrap(),
            Format::EdgeListText
        );
        assert_eq!(
            detect_format(Path::new("a.mtx")).unwrap(),
            Format::MatrixMarket
        );
        assert_eq!(
            detect_format(Path::new("a.csr")).unwrap(),
            Format::BinaryCsr
        );
        assert_eq!(
            detect_format(Path::new("a.edges")).unwrap(),
            Format::EdgeStream
        );
        assert!(detect_format(Path::new("a.xyz")).is_err());
    }

    #[test]
    fn round_trip_all_writable_formats() {
        let el = EdgeList::new(4, vec![Edge::new(0, 1, 2.0), Edge::unit(3, 2)]).unwrap();
        let dir = std::env::temp_dir();
        for name in [
            "gee_cli_t.txt",
            "gee_cli_t.mtx",
            "gee_cli_t.csr",
            "gee_cli_t.edges",
        ] {
            let p = dir.join(name);
            write_graph(&p, &el).unwrap();
            let back = read_graph(&p).unwrap();
            assert_eq!(back.num_edges(), el.num_edges(), "{name}");
            assert_eq!(back.num_vertices(), el.num_vertices(), "{name}");
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn snap_write_rejected() {
        let el = EdgeList::new(2, vec![Edge::unit(0, 1)]).unwrap();
        assert!(write_graph(&std::env::temp_dir().join("x.snap"), &el).is_err());
    }
}
