//! Graph transforms: symmetrize, compact vertex ids, filter.

use std::collections::HashMap;

use crate::{Edge, EdgeList, VertexId};

/// Remove self-loops from an edge list.
pub fn remove_self_loops(el: &EdgeList) -> EdgeList {
    let edges: Vec<Edge> = el.edges().iter().copied().filter(|e| e.u != e.v).collect();
    EdgeList::new_unchecked(el.num_vertices(), edges)
}

/// Relabel vertices so that only vertices that appear on at least one edge
/// get ids, in order of first appearance. Returns the compacted edge list
/// and the old→new id map (dense vector with `u32::MAX` for absent ids).
///
/// SNAP files frequently have sparse, non-contiguous ids; Table I's graph
/// sizes count only active vertices, so the loaders compact by default.
pub fn compact(el: &EdgeList) -> (EdgeList, Vec<VertexId>) {
    let mut map: Vec<VertexId> = vec![VertexId::MAX; el.num_vertices()];
    let mut next: VertexId = 0;
    let mut edges = Vec::with_capacity(el.num_edges());
    for e in el.edges() {
        for endpoint in [e.u, e.v] {
            if map[endpoint as usize] == VertexId::MAX {
                map[endpoint as usize] = next;
                next += 1;
            }
        }
        edges.push(Edge::new(map[e.u as usize], map[e.v as usize], e.w));
    }
    (EdgeList::new_unchecked(next as usize, edges), map)
}

/// Apply an arbitrary vertex permutation `perm` (new id of vertex `v` is
/// `perm[v]`). `perm` must be a bijection on `0..n`.
pub fn permute(el: &EdgeList, perm: &[VertexId]) -> EdgeList {
    assert_eq!(
        perm.len(),
        el.num_vertices(),
        "permutation length must equal vertex count"
    );
    debug_assert!({
        let mut seen = vec![false; perm.len()];
        perm.iter().all(|&p| {
            let fresh = !seen[p as usize];
            seen[p as usize] = true;
            fresh
        })
    });
    let edges = el
        .edges()
        .iter()
        .map(|e| Edge::new(perm[e.u as usize], perm[e.v as usize], e.w))
        .collect();
    EdgeList::new_unchecked(el.num_vertices(), edges)
}

/// Keep only edges whose endpoints satisfy `keep`, then compact.
pub fn induced_subgraph<F: Fn(VertexId) -> bool>(
    el: &EdgeList,
    keep: F,
) -> (EdgeList, Vec<VertexId>) {
    let edges: Vec<Edge> = el
        .edges()
        .iter()
        .copied()
        .filter(|e| keep(e.u) && keep(e.v))
        .collect();
    compact(&EdgeList::new_unchecked(el.num_vertices(), edges))
}

/// Merge parallel edges by summing weights. Output order is by first
/// occurrence of each `(u, v)` pair.
pub fn coalesce(el: &EdgeList) -> EdgeList {
    let mut slot: HashMap<(VertexId, VertexId), usize> = HashMap::new();
    let mut merged: Vec<Edge> = Vec::new();
    for e in el.edges() {
        match slot.entry((e.u, e.v)) {
            std::collections::hash_map::Entry::Occupied(o) => merged[*o.get()].w += e.w,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(merged.len());
                merged.push(*e);
            }
        }
    }
    EdgeList::new_unchecked(el.num_vertices(), merged)
}

/// Union-find with path halving and union by size (local to the graph
/// crate so transforms don't depend on the engine).
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }
    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Extract the largest weakly-connected component (edges whose endpoints
/// both lie in it), compacted to dense ids. Returns the component edge
/// list and the old→new id map (`u32::MAX` for vertices outside it).
/// Isolated vertices count as singleton components.
pub fn largest_component(el: &EdgeList) -> (EdgeList, Vec<VertexId>) {
    let n = el.num_vertices();
    if n == 0 {
        return (EdgeList::new_unchecked(0, Vec::new()), Vec::new());
    }
    let mut uf = UnionFind::new(n);
    for e in el.edges() {
        uf.union(e.u, e.v);
    }
    let roots: Vec<u32> = (0..n as u32).map(|v| uf.find(v)).collect();
    let champion = (0..n as u32)
        .max_by_key(|&v| uf.size[roots[v as usize] as usize])
        .expect("n > 0");
    let root = roots[champion as usize];
    induced_subgraph(el, |v| roots[v as usize] == root)
}

/// Deterministically keep each edge with probability `p`, decided by a
/// SplitMix64 hash of `(seed, edge index)` — no RNG dependency and stable
/// under re-runs. Vertex ids are preserved (not compacted), so sampled
/// graphs stay comparable to the original.
pub fn sample_edges(el: &EdgeList, p: f64, seed: u64) -> EdgeList {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let threshold = (p * u64::MAX as f64) as u64;
    let edges: Vec<Edge> = el
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, _)| splitmix64(seed ^ (*i as u64).wrapping_mul(0x9E37_79B9)) <= threshold)
        .map(|(_, e)| *e)
        .collect();
    EdgeList::new_unchecked(el.num_vertices(), edges)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(
            10,
            vec![
                Edge::unit(3, 3),
                Edge::unit(3, 7),
                Edge::new(7, 3, 2.0),
                Edge::new(7, 3, 0.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn self_loop_removal() {
        let el = remove_self_loops(&sample());
        assert_eq!(el.num_edges(), 3);
        assert!(el.edges().iter().all(|e| e.u != e.v));
    }

    #[test]
    fn compact_renumbers_in_appearance_order() {
        let (el, map) = compact(&sample());
        assert_eq!(el.num_vertices(), 2);
        assert_eq!(map[3], 0);
        assert_eq!(map[7], 1);
        assert_eq!(map[0], VertexId::MAX);
        assert_eq!(el.edges()[1], Edge::unit(0, 1));
    }

    #[test]
    fn coalesce_sums_parallel_edges() {
        let el = coalesce(&sample());
        assert_eq!(el.num_edges(), 3);
        let w: f64 = el.edges().iter().find(|e| e.u == 7).unwrap().w;
        assert_eq!(w, 2.5);
    }

    #[test]
    fn permute_is_bijective_relabel() {
        let el = EdgeList::new(3, vec![Edge::unit(0, 1), Edge::unit(1, 2)]).unwrap();
        let out = permute(&el, &[2, 0, 1]);
        assert_eq!(out.edges()[0], Edge::unit(2, 0));
        assert_eq!(out.edges()[1], Edge::unit(0, 1));
    }

    #[test]
    #[should_panic(expected = "permutation length")]
    fn permute_rejects_wrong_length() {
        let el = EdgeList::new(3, vec![Edge::unit(0, 1)]).unwrap();
        permute(&el, &[0, 1]);
    }

    #[test]
    fn induced_subgraph_filters_and_compacts() {
        let el = EdgeList::new(
            4,
            vec![Edge::unit(0, 1), Edge::unit(2, 3), Edge::unit(1, 3)],
        )
        .unwrap();
        let (sub, _) = induced_subgraph(&el, |v| v != 3);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.num_vertices(), 2);
    }

    #[test]
    fn largest_component_picks_bigger_side() {
        // Component A: 0-1-2 (3 vertices); component B: 3-4 (2 vertices).
        let el = EdgeList::new(
            6,
            vec![Edge::unit(0, 1), Edge::unit(1, 2), Edge::unit(3, 4)],
        )
        .unwrap();
        let (lcc, map) = largest_component(&el);
        assert_eq!(lcc.num_vertices(), 3);
        assert_eq!(lcc.num_edges(), 2);
        assert_ne!(map[0], VertexId::MAX);
        assert_eq!(map[3], VertexId::MAX);
        assert_eq!(map[5], VertexId::MAX); // isolated vertex excluded
    }

    #[test]
    fn largest_component_connected_graph_is_identity_shape() {
        let el = EdgeList::new(
            4,
            vec![Edge::unit(0, 1), Edge::unit(1, 2), Edge::unit(2, 3)],
        )
        .unwrap();
        let (lcc, _) = largest_component(&el);
        assert_eq!(lcc.num_vertices(), 4);
        assert_eq!(lcc.num_edges(), 3);
    }

    #[test]
    fn largest_component_empty_graph() {
        let el = EdgeList::new_unchecked(0, Vec::new());
        let (lcc, map) = largest_component(&el);
        assert_eq!(lcc.num_vertices(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn sample_edges_extremes() {
        let el = EdgeList::new(5, (0..4).map(|i| Edge::unit(i, i + 1)).collect()).unwrap();
        assert_eq!(sample_edges(&el, 1.0, 7).num_edges(), 4);
        assert_eq!(sample_edges(&el, 0.0, 7).num_edges(), 0);
        // Vertex universe preserved.
        assert_eq!(sample_edges(&el, 0.5, 7).num_vertices(), 5);
    }

    #[test]
    fn sample_edges_rate_and_determinism() {
        let edges: Vec<Edge> = (0..10_000u32)
            .map(|i| Edge::unit(i % 100, (i + 1) % 100))
            .collect();
        let el = EdgeList::new(100, edges).unwrap();
        let a = sample_edges(&el, 0.3, 11);
        let b = sample_edges(&el, 0.3, 11);
        assert_eq!(a.num_edges(), b.num_edges());
        let rate = a.num_edges() as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
        let c = sample_edges(&el, 0.3, 12);
        assert_ne!(a.num_edges(), 0);
        // Different seed almost surely differs in the selected multiset.
        assert!(a.num_edges() != c.num_edges() || a.edges() != c.edges());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn sample_edges_validates_p() {
        let el = EdgeList::new(2, vec![Edge::unit(0, 1)]).unwrap();
        sample_edges(&el, 1.5, 0);
    }
}
