//! Incremental, validating graph construction.

use std::collections::HashMap;

use crate::{CsrGraph, Edge, EdgeList, VertexId, Weight};

/// Policy for repeated `(u, v)` pairs fed to the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Keep every occurrence (GEE sums per-occurrence contributions).
    #[default]
    Keep,
    /// Sum the weights of duplicates into one edge.
    SumWeights,
    /// Keep only the first occurrence.
    First,
}

/// Builder that accumulates edges, optionally deduplicates, optionally
/// symmetrizes, and emits an [`EdgeList`] or [`CsrGraph`].
///
/// ```
/// use gee_graph::{GraphBuilder, Edge};
/// let g = GraphBuilder::new(4)
///     .add_edge(0, 1, 1.0)
///     .add_edge(1, 2, 1.0)
///     .symmetrize(true)
///     .build_csr()
///     .unwrap();
/// assert_eq!(g.num_edges(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
    policy: DuplicatePolicy,
    symmetrize: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// Start a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            policy: DuplicatePolicy::Keep,
            symmetrize: false,
            drop_self_loops: false,
        }
    }

    /// Append a weighted edge.
    pub fn add_edge(mut self, u: VertexId, v: VertexId, w: Weight) -> Self {
        self.edges.push(Edge::new(u, v, w));
        self
    }

    /// Append a unit-weight edge.
    pub fn add_unit_edge(self, u: VertexId, v: VertexId) -> Self {
        self.add_edge(u, v, 1.0)
    }

    /// Append many edges.
    pub fn extend<I: IntoIterator<Item = Edge>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// Set the duplicate-edge policy.
    pub fn duplicates(mut self, policy: DuplicatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Mirror every edge on build (undirected-as-two-directed encoding).
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// Remove self-loops on build.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Finish into a validated [`EdgeList`].
    pub fn build(self) -> crate::Result<EdgeList> {
        let GraphBuilder {
            num_vertices,
            mut edges,
            policy,
            symmetrize,
            drop_self_loops,
        } = self;
        if drop_self_loops {
            edges.retain(|e| e.u != e.v);
        }
        match policy {
            DuplicatePolicy::Keep => {}
            DuplicatePolicy::SumWeights => {
                // Map each (u, v) to its slot in the output, preserving
                // first-occurrence order.
                let mut slot: HashMap<(VertexId, VertexId), usize> = HashMap::new();
                let mut merged: Vec<Edge> = Vec::new();
                for e in &edges {
                    match slot.entry((e.u, e.v)) {
                        std::collections::hash_map::Entry::Occupied(o) => {
                            merged[*o.get()].w += e.w;
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(merged.len());
                            merged.push(*e);
                        }
                    }
                }
                edges = merged;
            }
            DuplicatePolicy::First => {
                let mut seen = std::collections::HashSet::new();
                edges.retain(|e| seen.insert((e.u, e.v)));
            }
        }
        let el = EdgeList::new(num_vertices, edges)?;
        Ok(if symmetrize { el.symmetrized() } else { el })
    }

    /// Finish straight into a [`CsrGraph`].
    pub fn build_csr(self) -> crate::Result<CsrGraph> {
        Ok(CsrGraph::from_edge_list(&self.build()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_policy_preserves_duplicates() {
        let el = GraphBuilder::new(2)
            .add_unit_edge(0, 1)
            .add_unit_edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn sum_policy_merges() {
        let el = GraphBuilder::new(2)
            .add_edge(0, 1, 1.5)
            .add_edge(0, 1, 2.5)
            .duplicates(DuplicatePolicy::SumWeights)
            .build()
            .unwrap();
        assert_eq!(el.num_edges(), 1);
        assert_eq!(el.edges()[0].w, 4.0);
    }

    #[test]
    fn first_policy_keeps_first() {
        let el = GraphBuilder::new(2)
            .add_edge(0, 1, 1.5)
            .add_edge(0, 1, 2.5)
            .duplicates(DuplicatePolicy::First)
            .build()
            .unwrap();
        assert_eq!(el.num_edges(), 1);
        assert_eq!(el.edges()[0].w, 1.5);
    }

    #[test]
    fn self_loop_dropping() {
        let el = GraphBuilder::new(2)
            .add_unit_edge(0, 0)
            .add_unit_edge(0, 1)
            .drop_self_loops(true)
            .build()
            .unwrap();
        assert_eq!(el.num_edges(), 1);
    }

    #[test]
    fn symmetrize_then_csr() {
        let g = GraphBuilder::new(3)
            .add_unit_edge(0, 1)
            .add_unit_edge(1, 2)
            .symmetrize(true)
            .build_csr()
            .unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(1), 2);
    }

    #[test]
    fn invalid_vertex_propagates() {
        assert!(GraphBuilder::new(1).add_unit_edge(0, 3).build().is_err());
    }
}
