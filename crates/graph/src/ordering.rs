//! Vertex reordering for cache locality.
//!
//! §IV of the paper: per edge, "access to Z(v, :) and W(v, :) will likely
//! result in cache misses" — how likely depends on vertex order. These
//! orderings are the standard levers: degree sort places hot (high-degree)
//! rows together; BFS order gives neighbors nearby ids. The
//! `ablation-reorder` bench measures their effect on the GEE kernel.

use crate::{transform, CsrGraph, EdgeList, VertexId};

/// Permutation assigning new id `perm[v]` to vertex `v`, ordered by
/// descending out-degree (ties by id). High-degree vertices get small ids,
/// concentrating the hottest `Z` rows in a compact address range.
pub fn degree_order(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(g.out_degree(v)), v));
    let mut perm = vec![0 as VertexId; n];
    for (new_id, &v) in by_degree.iter().enumerate() {
        perm[v as usize] = new_id as VertexId;
    }
    perm
}

/// BFS order from the highest-degree vertex (unreached vertices are
/// appended in id order, each starting a fresh BFS): neighbors receive
/// nearby ids, improving the locality of the `Z(v, ·)` accesses.
pub fn bfs_order(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut perm = vec![VertexId::MAX; n];
    let mut next: u32 = 0;
    let mut queue = std::collections::VecDeque::new();
    // Seed from the max-degree vertex, then sweep remaining ids.
    let seed = (0..n as u32).max_by_key(|&v| g.out_degree(v)).unwrap_or(0);
    let starts = std::iter::once(seed).chain(0..n as u32);
    for s in starts {
        if n == 0 {
            break;
        }
        if perm[s as usize] != VertexId::MAX {
            continue;
        }
        perm[s as usize] = next;
        next += 1;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if perm[v as usize] == VertexId::MAX {
                    perm[v as usize] = next;
                    next += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    perm
}

/// Pseudo-random order (SplitMix64 shuffle) — the locality *worst case*,
/// used as the baseline in the reorder ablation.
pub fn random_order(n: usize, seed: u64) -> Vec<VertexId> {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    // Fisher–Yates with an inline SplitMix64 (no rand dependency here).
    let mut x = seed;
    let mut rng = move || {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..n).rev() {
        let j = (rng() % (i as u64 + 1)) as usize;
        ids.swap(i, j);
    }
    let mut perm = vec![0 as VertexId; n];
    for (new_id, &v) in ids.iter().enumerate() {
        perm[v as usize] = new_id as VertexId;
    }
    perm
}

/// Apply an ordering to an edge list (convenience over
/// [`transform::permute`]).
pub fn apply(el: &EdgeList, perm: &[VertexId]) -> EdgeList {
    transform::permute(el, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, EdgeList};

    fn star_plus_path() -> CsrGraph {
        // 0 is a hub (degree 4); 5-6-7 a path.
        let el = EdgeList::new(
            8,
            vec![
                Edge::unit(0, 1),
                Edge::unit(0, 2),
                Edge::unit(0, 3),
                Edge::unit(0, 4),
                Edge::unit(5, 6),
                Edge::unit(6, 7),
            ],
        )
        .unwrap();
        CsrGraph::from_edge_list(&el)
    }

    fn is_permutation(perm: &[u32]) -> bool {
        let mut seen = vec![false; perm.len()];
        perm.iter().all(|&p| {
            let fresh = !seen[p as usize];
            seen[p as usize] = true;
            fresh
        })
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let g = star_plus_path();
        let perm = degree_order(&g);
        assert!(is_permutation(&perm));
        assert_eq!(perm[0], 0, "hub gets id 0");
    }

    #[test]
    fn bfs_order_is_permutation_and_clusters_neighbors() {
        let g = star_plus_path();
        let perm = bfs_order(&g);
        assert!(is_permutation(&perm));
        // Hub is the seed; its neighbors get the next ids (1..=4).
        assert_eq!(perm[0], 0);
        let mut leaf_ids: Vec<u32> = (1..5).map(|v| perm[v as usize]).collect();
        leaf_ids.sort_unstable();
        assert_eq!(leaf_ids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn random_order_is_permutation_and_seeded() {
        let a = random_order(100, 7);
        let b = random_order(100, 7);
        let c = random_order(100, 8);
        assert!(is_permutation(&a));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn apply_preserves_structure() {
        let el = EdgeList::new(3, vec![Edge::unit(0, 1), Edge::unit(1, 2)]).unwrap();
        let g = CsrGraph::from_edge_list(&el);
        let perm = degree_order(&g);
        let out = apply(&el, &perm);
        assert_eq!(out.num_edges(), 2);
        // Degrees as a multiset are preserved.
        let g2 = CsrGraph::from_edge_list(&out);
        let mut d1: Vec<usize> = (0..3).map(|v| g.out_degree(v)).collect();
        let mut d2: Vec<usize> = (0..3).map(|v| g2.out_degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn empty_graph_orders() {
        let g = CsrGraph::build(0, &[], false);
        assert!(degree_order(&g).is_empty());
        assert!(bfs_order(&g).is_empty());
        assert!(random_order(0, 1).is_empty());
    }
}
