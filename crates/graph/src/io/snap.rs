//! Loader for the SNAP repository text format.
//!
//! SNAP files (the source of the paper's Table I graphs) are `#`-commented,
//! tab- or space-separated `FromNodeId ToNodeId` pairs with sparse,
//! non-contiguous 64-bit ids. This loader accepts ids up to `u64`, compacts
//! them to dense `u32` ids in order of first appearance, and optionally
//! symmetrizes (SNAP's `soc-*` graphs are directed; `com-*` are undirected
//! and listed one direction only).

use std::collections::HashMap;
use std::io::BufRead;

use crate::{Edge, EdgeList, GraphError};

/// Options for [`read`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapOptions {
    /// Mirror every edge after loading (use for undirected SNAP files).
    pub symmetrize: bool,
    /// Drop self-loops while loading.
    pub drop_self_loops: bool,
}

/// Read a SNAP-format file, compacting sparse ids to dense `u32`.
pub fn read<R: BufRead>(reader: R, opts: SnapOptions) -> crate::Result<EdgeList> {
    let mut remap: HashMap<u64, u32> = HashMap::new();
    let mut next: u32 = 0;
    let mut edges: Vec<Edge> = Vec::new();
    let mut intern = |raw: u64, remap: &mut HashMap<u64, u32>| -> u32 {
        *remap.entry(raw).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> crate::Result<u64> {
            s.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "missing endpoint".into(),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad id: {e}"),
            })
        };
        let raw_u = parse(it.next())?;
        let raw_v = parse(it.next())?;
        if opts.drop_self_loops && raw_u == raw_v {
            continue;
        }
        let u = intern(raw_u, &mut remap);
        let v = intern(raw_v, &mut remap);
        edges.push(Edge::unit(u, v));
    }
    let el = EdgeList::new_unchecked(next as usize, edges);
    Ok(if opts.symmetrize {
        el.symmetrized()
    } else {
        el
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
# Directed graph (each unordered pair of nodes is saved once)
# FromNodeId\tToNodeId
101\t205
205\t101
101\t999
";

    #[test]
    fn compacts_sparse_ids() {
        let el = read(Cursor::new(SAMPLE), SnapOptions::default()).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.num_edges(), 3);
        // 101 -> 0, 205 -> 1, 999 -> 2 by first appearance
        assert_eq!(el.edges()[0], Edge::unit(0, 1));
        assert_eq!(el.edges()[2], Edge::unit(0, 2));
    }

    #[test]
    fn symmetrize_option() {
        let el = read(
            Cursor::new("1 2\n"),
            SnapOptions {
                symmetrize: true,
                drop_self_loops: false,
            },
        )
        .unwrap();
        assert_eq!(el.num_edges(), 2);
    }

    #[test]
    fn self_loop_dropping() {
        let el = read(
            Cursor::new("5 5\n5 6\n"),
            SnapOptions {
                symmetrize: false,
                drop_self_loops: true,
            },
        )
        .unwrap();
        assert_eq!(el.num_edges(), 1);
        assert_eq!(el.num_vertices(), 2);
    }

    #[test]
    fn bad_line_reports_position() {
        let err = read(Cursor::new("1 2\nx y\n"), SnapOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }
}
