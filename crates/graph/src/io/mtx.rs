//! Matrix Market (`.mtx`) coordinate format — the standard HPC sparse
//! matrix interchange format (SuiteSparse, NIST). Supports the
//! `matrix coordinate {pattern|real|integer} {general|symmetric}`
//! combinations that cover graph use.

use std::io::{BufRead, Write};

use crate::{Edge, EdgeList, GraphError};

/// Field type parsed from the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Pattern,
    Real,
    Integer,
}

/// Read a Matrix Market coordinate file as a graph. `symmetric` files
/// emit both directions of each off-diagonal entry (matching the
/// two-directed-edges encoding). Vertex ids are the 1-based matrix
/// indices shifted to 0-based; the vertex count is `max(rows, cols)`.
pub fn read<R: BufRead>(reader: R) -> crate::Result<EdgeList> {
    let mut lines = reader.lines().enumerate();
    // Header line.
    let (_, header) = lines.next().ok_or_else(|| GraphError::Parse {
        line: 1,
        message: "empty file".into(),
    })?;
    let header = header?;
    let mut h = header.split_whitespace();
    let banner = h.next().unwrap_or("");
    if banner != "%%MatrixMarket" {
        return Err(GraphError::Parse {
            line: 1,
            message: "missing %%MatrixMarket banner".into(),
        });
    }
    let object = h.next().unwrap_or("");
    let format = h.next().unwrap_or("");
    let field = h.next().unwrap_or("");
    let symmetry = h.next().unwrap_or("");
    if object != "matrix" || format != "coordinate" {
        return Err(GraphError::Parse {
            line: 1,
            message: format!("unsupported header: {object} {format} (need matrix coordinate)"),
        });
    }
    let field = match field {
        "pattern" => Field::Pattern,
        "real" => Field::Real,
        "integer" => Field::Integer,
        other => {
            return Err(GraphError::Parse {
                line: 1,
                message: format!("unsupported field type {other}"),
            })
        }
    };
    let symmetric = match symmetry {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(GraphError::Parse {
                line: 1,
                message: format!("unsupported symmetry {other}"),
            })
        }
    };
    // Size line: first non-comment line.
    let mut size: Option<(usize, usize, usize)> = None;
    let mut edges: Vec<Edge> = Vec::new();
    for (lineno, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_usize = |s: Option<&str>| -> crate::Result<usize> {
            s.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "missing field".into(),
            })?
            .parse::<usize>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad integer: {e}"),
            })
        };
        match size {
            None => {
                let rows = parse_usize(it.next())?;
                let cols = parse_usize(it.next())?;
                let nnz = parse_usize(it.next())?;
                size = Some((rows, cols, nnz));
                edges.reserve(if symmetric { nnz * 2 } else { nnz });
            }
            Some((rows, cols, _)) => {
                let i = parse_usize(it.next())?;
                let j = parse_usize(it.next())?;
                if i == 0 || j == 0 || i > rows || j > cols {
                    return Err(GraphError::Parse {
                        line: lineno + 1,
                        message: format!("index ({i}, {j}) outside {rows}×{cols}"),
                    });
                }
                let w = match field {
                    Field::Pattern => 1.0,
                    Field::Real | Field::Integer => it
                        .next()
                        .ok_or_else(|| GraphError::Parse {
                            line: lineno + 1,
                            message: "missing value".into(),
                        })?
                        .parse::<f64>()
                        .map_err(|e| GraphError::Parse {
                            line: lineno + 1,
                            message: format!("bad value: {e}"),
                        })?,
                };
                let (u, v) = ((i - 1) as u32, (j - 1) as u32);
                edges.push(Edge::new(u, v, w));
                if symmetric && u != v {
                    edges.push(Edge::new(v, u, w));
                }
            }
        }
    }
    let (rows, cols, nnz) = size.ok_or(GraphError::Format("missing size line".into()))?;
    let declared = if symmetric {
        // nnz counts stored (lower-triangle + diagonal) entries.
        edges.len() >= nnz
    } else {
        edges.len() == nnz
    };
    if !declared {
        return Err(GraphError::Format(format!(
            "entry count mismatch: declared {nnz}, parsed {}",
            edges.len()
        )));
    }
    EdgeList::new(rows.max(cols), edges)
}

/// Write a graph as `matrix coordinate real general` (1-based indices).
pub fn write<W: Write>(mut w: W, el: &EdgeList) -> crate::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by gee-graph")?;
    writeln!(
        w,
        "{} {} {}",
        el.num_vertices(),
        el.num_vertices(),
        el.num_edges()
    )?;
    for e in el.edges() {
        writeln!(w, "{} {} {}", e.u + 1, e.v + 1, e.w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const PATTERN_GENERAL: &str = "\
%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 2
1 2
3 1
";

    const REAL_SYMMETRIC: &str = "\
%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 5.0
2 1 1.5
3 2 2.5
";

    #[test]
    fn pattern_general() {
        let el = read(Cursor::new(PATTERN_GENERAL)).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.edges()[0], Edge::unit(0, 1));
        assert_eq!(el.edges()[1], Edge::unit(2, 0));
    }

    #[test]
    fn real_symmetric_mirrors_off_diagonal() {
        let el = read(Cursor::new(REAL_SYMMETRIC)).unwrap();
        // diagonal entry once + two off-diagonals mirrored = 5 edges
        assert_eq!(el.num_edges(), 5);
        assert!(el.edges().contains(&Edge::new(0, 1, 1.5)));
        assert!(el.edges().contains(&Edge::new(1, 0, 1.5)));
        assert!(el.edges().contains(&Edge::new(0, 0, 5.0)));
    }

    #[test]
    fn round_trip() {
        let el = EdgeList::new(4, vec![Edge::new(0, 1, 2.5), Edge::new(3, 0, 1.0)]).unwrap();
        let mut buf = Vec::new();
        write(&mut buf, &el).unwrap();
        let back = read(Cursor::new(buf)).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn rejects_bad_banner() {
        assert!(read(Cursor::new(
            "%%NotMatrixMarket matrix coordinate real general\n1 1 0\n"
        ))
        .is_err());
    }

    #[test]
    fn rejects_array_format() {
        assert!(read(Cursor::new(
            "%%MatrixMarket matrix array real general\n1 1\n"
        ))
        .is_err());
    }

    #[test]
    fn rejects_out_of_bounds_index() {
        let bad = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read(Cursor::new(bad)).is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let bad = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n";
        assert!(matches!(read(Cursor::new(bad)), Err(GraphError::Format(_))));
    }

    #[test]
    fn integer_field_parses_values() {
        let src = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n";
        let el = read(Cursor::new(src)).unwrap();
        assert_eq!(el.edges()[0].w, 7.0);
    }
}
