//! Plain text edge-list format: one `u v [w]` triple per line.

use std::io::{BufRead, Write};

use crate::{Edge, EdgeList, GraphError, VertexId};

/// Parse a plain edge list. Lines are `u v` (unit weight) or `u v w`.
/// Blank lines and lines starting with `#` or `%` are skipped.
/// The vertex count is `1 + max id` unless `num_vertices` is given.
pub fn read<R: BufRead>(reader: R, num_vertices: Option<usize>) -> crate::Result<EdgeList> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse_id = |s: Option<&str>, what: &str| -> crate::Result<VertexId> {
            s.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse::<VertexId>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let u = parse_id(it.next(), "source")?;
        let v = parse_id(it.next(), "destination")?;
        let w = match it.next() {
            None => 1.0,
            Some(ws) => ws.parse::<f64>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad weight: {e}"),
            })?,
        };
        if it.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "trailing tokens".into(),
            });
        }
        max_id = max_id.max(u as u64).max(v as u64);
        edges.push(Edge::new(u, v, w));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() {
        0
    } else {
        (max_id + 1) as usize
    });
    EdgeList::new(n, edges)
}

/// Write an edge list in the same format. Unit weights are omitted.
pub fn write<W: Write>(mut writer: W, el: &EdgeList) -> crate::Result<()> {
    for e in el.edges() {
        if e.w == 1.0 {
            writeln!(writer, "{} {}", e.u, e.v)?;
        } else {
            writeln!(writer, "{} {} {}", e.u, e.v, e.w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let el = EdgeList::new(3, vec![Edge::unit(0, 1), Edge::new(1, 2, 0.5)]).unwrap();
        let mut buf = Vec::new();
        write(&mut buf, &el).unwrap();
        let back = read(Cursor::new(buf), None).unwrap();
        assert_eq!(back, el);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n% more\n0 1\n";
        let el = read(Cursor::new(text), None).unwrap();
        assert_eq!(el.num_edges(), 1);
        assert_eq!(el.num_vertices(), 2);
    }

    #[test]
    fn explicit_vertex_count() {
        let el = read(Cursor::new("0 1\n"), Some(10)).unwrap();
        assert_eq!(el.num_vertices(), 10);
    }

    #[test]
    fn bad_weight_reports_line() {
        let err = read(Cursor::new("0 1\n1 2 zzz\n"), None).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn missing_destination_is_error() {
        assert!(read(Cursor::new("5\n"), None).is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(read(Cursor::new("0 1 1.0 extra\n"), None).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let el = read(Cursor::new(""), None).unwrap();
        assert_eq!(el.num_vertices(), 0);
        assert_eq!(el.num_edges(), 0);
    }
}
