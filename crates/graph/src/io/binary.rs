//! Compact binary CSR format for fast reload of generated benchmark graphs.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   : 8 bytes  = b"GEECSR1\0"
//! flags   : u64      (bit 0: weighted)
//! n       : u64
//! s       : u64
//! offsets : (n+1) × u64
//! targets : s × u32
//! weights : s × f64   (only if weighted)
//! ```
//!
//! This is ~12 bytes/edge unweighted — Friendster-scale stand-ins reload in
//! seconds instead of re-generating.

use std::io::{Read, Write};

use super::frame::read_u64;
use crate::{CsrGraph, GraphError};

const MAGIC: &[u8; 8] = b"GEECSR1\0";
const FLAG_WEIGHTED: u64 = 1;

/// Serialize a [`CsrGraph`] (transpose, if any, is not written).
pub fn write<W: Write>(mut w: W, g: &CsrGraph) -> crate::Result<()> {
    w.write_all(MAGIC)?;
    let flags: u64 = if g.is_weighted() { FLAG_WEIGHTED } else { 0 };
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &t in g.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    if let Some(ws) = g.weights() {
        for &x in ws {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize a [`CsrGraph`] written by [`write()`].
pub fn read<R: Read>(mut r: R) -> crate::Result<CsrGraph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format("bad magic; not a GEECSR1 file".into()));
    }
    let flags = read_u64(&mut r)?;
    let weighted = flags & FLAG_WEIGHTED != 0;
    let n = read_u64(&mut r)? as usize;
    let s = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&s) {
        return Err(GraphError::Format(
            "offset array does not span edge count".into(),
        ));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphError::Format("offsets not monotone".into()));
    }
    let mut targets = Vec::with_capacity(s);
    let mut buf4 = [0u8; 4];
    for _ in 0..s {
        r.read_exact(&mut buf4)?;
        let t = u32::from_le_bytes(buf4);
        if t as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: t as u64,
                n: n as u64,
            });
        }
        targets.push(t);
    }
    let weights = if weighted {
        let mut ws = Vec::with_capacity(s);
        let mut buf8 = [0u8; 8];
        for _ in 0..s {
            r.read_exact(&mut buf8)?;
            ws.push(f64::from_le_bytes(buf8));
        }
        Some(ws)
    } else {
        None
    };
    Ok(CsrGraph::from_raw_parts(n, offsets, targets, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, EdgeList};

    fn sample(weighted: bool) -> CsrGraph {
        let w = |i: usize| if weighted { i as f64 + 0.5 } else { 1.0 };
        let el = EdgeList::new(
            4,
            vec![
                Edge::new(0, 1, w(0)),
                Edge::new(1, 2, w(1)),
                Edge::new(2, 0, w(2)),
                Edge::new(3, 3, w(3)),
            ],
        )
        .unwrap();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn round_trip_unweighted() {
        let g = sample(false);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(back.offsets(), g.offsets());
        assert_eq!(back.targets(), g.targets());
        assert!(!back.is_weighted());
    }

    #[test]
    fn round_trip_weighted() {
        let g = sample(true);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(back.weights(), g.weights());
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read(&b"NOTAFILE________"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
    }

    #[test]
    fn rejects_truncated() {
        let g = sample(false);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_target_out_of_range() {
        let g = sample(false);
        let mut buf = Vec::new();
        write(&mut buf, &g).unwrap();
        // Corrupt the first target to a huge value. Header = 8 + 8 + 8 + 8 +
        // (n+1)*8 bytes.
        let target_start = 32 + 5 * 8;
        buf[target_start..target_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read(buf.as_slice()),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }
}
