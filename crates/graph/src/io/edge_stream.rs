//! Streaming binary edge format — `(u, v, w)` records read in bounded
//! chunks, so graphs larger than memory can feed a single-pass algorithm
//! like GEE without materializing the edge list.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic : 8 bytes = b"GEEES1\0\0"
//! n     : u64
//! s     : u64
//! edges : s × (u32 u, u32 v, f64 w)   — 16 bytes each
//! ```

use std::io::{Read, Write};

use crate::{Edge, EdgeList, GraphError};

const MAGIC: &[u8; 8] = b"GEEES1\0\0";

/// Write an edge list as a streamable binary file.
pub fn write<W: Write>(mut w: W, el: &EdgeList) -> crate::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(el.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(el.num_edges() as u64).to_le_bytes())?;
    for e in el.edges() {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
        w.write_all(&e.w.to_le_bytes())?;
    }
    Ok(())
}

/// Incremental reader over a streamed edge file.
pub struct EdgeStreamReader<R: Read> {
    inner: R,
    num_vertices: usize,
    num_edges: usize,
    remaining: usize,
}

impl<R: Read> EdgeStreamReader<R> {
    /// Open the stream, validating the header.
    pub fn new(mut inner: R) -> crate::Result<Self> {
        let mut magic = [0u8; 8];
        inner.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(GraphError::Format("bad magic; not a GEEES1 stream".into()));
        }
        let mut b = [0u8; 8];
        inner.read_exact(&mut b)?;
        let n = u64::from_le_bytes(b) as usize;
        inner.read_exact(&mut b)?;
        let s = u64::from_le_bytes(b) as usize;
        Ok(EdgeStreamReader {
            inner,
            num_vertices: n,
            num_edges: s,
            remaining: s,
        })
    }

    /// Declared vertex count.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Declared edge count.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Edges not yet consumed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Read up to `max` edges into `buf` (cleared first). Returns the count
    /// read; `0` means the stream is exhausted. Endpoints are validated
    /// against the declared vertex count.
    pub fn read_chunk(&mut self, buf: &mut Vec<Edge>, max: usize) -> crate::Result<usize> {
        buf.clear();
        let take = max.min(self.remaining);
        let mut rec = [0u8; 16];
        for _ in 0..take {
            self.inner.read_exact(&mut rec)?;
            let u = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
            let w = f64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
            if u as usize >= self.num_vertices || v as usize >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.max(v) as u64,
                    n: self.num_vertices as u64,
                });
            }
            buf.push(Edge::new(u, v, w));
        }
        self.remaining -= take;
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::new(
            5,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 2.5),
                Edge::new(3, 4, -0.5),
                Edge::unit(4, 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_in_chunks() {
        let el = sample();
        let mut bytes = Vec::new();
        write(&mut bytes, &el).unwrap();
        let mut r = EdgeStreamReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.num_vertices(), 5);
        assert_eq!(r.num_edges(), 4);
        let mut buf = Vec::new();
        let mut all = Vec::new();
        loop {
            let got = r.read_chunk(&mut buf, 3).unwrap();
            if got == 0 {
                break;
            }
            all.extend_from_slice(&buf);
        }
        assert_eq!(all, el.edges());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn chunk_boundaries_exact() {
        let el = sample();
        let mut bytes = Vec::new();
        write(&mut bytes, &el).unwrap();
        let mut r = EdgeStreamReader::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        assert_eq!(r.read_chunk(&mut buf, 2).unwrap(), 2);
        assert_eq!(r.read_chunk(&mut buf, 2).unwrap(), 2);
        assert_eq!(r.read_chunk(&mut buf, 2).unwrap(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(EdgeStreamReader::new(&b"WRONGMAGIC______"[..]).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let el = sample();
        let mut bytes = Vec::new();
        write(&mut bytes, &el).unwrap();
        bytes.truncate(bytes.len() - 5);
        let mut r = EdgeStreamReader::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        assert!(r.read_chunk(&mut buf, 10).is_err());
    }

    #[test]
    fn rejects_out_of_range_endpoint() {
        let el = sample();
        let mut bytes = Vec::new();
        write(&mut bytes, &el).unwrap();
        // Corrupt first record's u to a huge id: header is 24 bytes.
        bytes[24..28].copy_from_slice(&999u32.to_le_bytes());
        let mut r = EdgeStreamReader::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            r.read_chunk(&mut buf, 10),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }
}
