//! Graph file formats.
//!
//! * [`edgelist`] — whitespace-separated `u v [w]` lines, one edge per line.
//! * [`snap`] — the SNAP repository text format (`#`-comments, tab-separated
//!   pairs, arbitrary sparse vertex ids which are compacted on load).
//! * [`binary`] — a compact little-endian binary CSR dump for fast reload of
//!   generated benchmark graphs.

pub mod binary;
pub mod edge_stream;
pub mod edgelist;
pub mod mtx;
pub mod snap;
