//! Graph file formats.
//!
//! * [`edgelist`] — whitespace-separated `u v [w]` lines, one edge per line.
//! * [`snap`] — the SNAP repository text format (`#`-comments, tab-separated
//!   pairs, arbitrary sparse vertex ids which are compacted on load).
//! * [`binary`] — a compact little-endian binary CSR dump for fast reload of
//!   generated benchmark graphs.
//! * [`frame`] — length-prefixed, CRC-checksummed binary frames and the
//!   little-endian scalar primitives shared by [`binary`] and the
//!   `gee-serve` durability subsystem (WAL + checkpoints).

pub mod binary;
pub mod edge_stream;
pub mod edgelist;
pub mod frame;
pub mod mtx;
pub mod snap;
