//! Length-prefixed, CRC-checksummed binary frames plus little-endian
//! scalar/buffer primitives — the shared codec layer under the binary CSR
//! format and `gee-serve`'s durability subsystem (write-ahead log and
//! checkpoint files).
//!
//! A *frame* on disk is
//!
//! ```text
//! len     : u32 LE   payload byte count
//! crc32   : u32 LE   CRC-32 (IEEE 802.3) of the payload
//! payload : len bytes
//! ```
//!
//! [`read_frame`] distinguishes the failure modes a durable log cares
//! about: a clean end of stream ([`FrameError::Eof`]), a stream that ends
//! *inside* a frame ([`FrameError::TornTail`] — the signature of a torn
//! write, recoverable by truncation), and a complete frame whose checksum
//! does not match ([`FrameError::BadCrc`] — the signature of corruption,
//! not recoverable). Payloads are built and parsed with the [`put_*`]
//! helpers and [`Cursor`], which never panic on malformed input: every
//! shape violation is a typed [`FrameError::Malformed`].
//!
//! [`put_*`]: put_u32

use std::io::{Read, Write};

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// How reading a frame can fail.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream: zero bytes where the next frame would start.
    Eof,
    /// The stream ended mid-frame (header or payload incomplete) — a torn
    /// write. `got` of `expected` bytes were present.
    TornTail { expected: usize, got: usize },
    /// A complete frame whose payload checksum mismatched — corruption.
    BadCrc { stored: u32, computed: u32 },
    /// The length prefix exceeds the caller's cap.
    TooLong { len: usize, max: usize },
    /// A payload that decoded to an impossible shape (bad tag, count
    /// overrunning the buffer, invalid UTF-8, trailing bytes, …).
    Malformed { detail: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::TornTail { expected, got } => {
                write!(
                    f,
                    "torn frame: stream ended after {got} of {expected} bytes"
                )
            }
            FrameError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            FrameError::TooLong { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            FrameError::Malformed { detail } => write!(f, "malformed payload: {detail}"),
            FrameError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Shorthand for a [`FrameError::Malformed`].
    pub fn malformed(detail: impl Into<String>) -> FrameError {
        FrameError::Malformed {
            detail: detail.into(),
        }
    }
}

/// Write one `[len][crc32][payload]` frame. Streams the payload slice
/// directly (no intermediate copy — a multi-GB checkpoint payload would
/// double peak memory through [`encode_frame`]).
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// The exact bytes [`write_frame`] emits, as one buffer — so callers that
/// need all-or-nothing appends (or fault injection at byte granularity)
/// can manage the write themselves.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Read one frame, returning its verified payload. `max_len` bounds the
/// allocation a hostile/corrupt length prefix could demand.
pub fn read_frame<R: Read>(mut r: R, max_len: usize) -> Result<Vec<u8>, FrameError> {
    let mut head = [0u8; 8];
    let got = read_up_to(&mut r, &mut head)?;
    if got == 0 {
        return Err(FrameError::Eof);
    }
    if got < head.len() {
        return Err(FrameError::TornTail {
            expected: head.len(),
            got,
        });
    }
    let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
    let stored = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
    if len > max_len {
        return Err(FrameError::TooLong { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    let got = read_up_to(&mut r, &mut payload)?;
    if got < len {
        return Err(FrameError::TornTail { expected: len, got });
    }
    let computed = crc32(&payload);
    if computed != stored {
        return Err(FrameError::BadCrc { stored, computed });
    }
    Ok(payload)
}

/// Fill `buf` as far as the stream allows; returns bytes read (< len only
/// at end of stream). Retries `Interrupted`. Public so readers of other
/// framed formats (e.g. WAL segment headers) share the same torn-tail
/// detection loop.
pub fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read one little-endian `u64` (shared with the binary CSR reader).
pub fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

// ---- payload building -------------------------------------------------

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, x: u8) {
    buf.push(x);
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Append a little-endian `i32`.
pub fn put_i32(buf: &mut Vec<u8>, x: i32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Append an `f64` as its little-endian bit pattern (bit-exact, NaN and
/// all).
pub fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Append a UTF-8 string as `u32` length + bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

// ---- payload parsing ---------------------------------------------------

/// A bounds-checked, panic-free reader over a frame payload.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start parsing `buf` at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::malformed(format!(
                "{what}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn take_u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self, what: &str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self, what: &str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian `i32`.
    pub fn take_i32(&mut self, what: &str) -> Result<i32, FrameError> {
        Ok(i32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read an `f64` from its little-endian bit pattern.
    pub fn take_f64(&mut self, what: &str) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// Read a `u32`-length-prefixed UTF-8 string, rejecting lengths
    /// beyond `max_len`.
    pub fn take_str(&mut self, max_len: usize, what: &str) -> Result<String, FrameError> {
        let len = self.take_u32(what)? as usize;
        if len > max_len {
            return Err(FrameError::malformed(format!(
                "{what}: string length {len} exceeds cap {max_len}"
            )));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::malformed(format!("{what}: invalid UTF-8")))
    }

    /// Read a count that claims `count` items of at least `min_item_size`
    /// bytes each, rejecting counts the remaining buffer cannot hold (so a
    /// corrupt count can never drive a huge allocation).
    pub fn take_count(&mut self, min_item_size: usize, what: &str) -> Result<usize, FrameError> {
        let count = self.take_u32(what)? as usize;
        if count.saturating_mul(min_item_size) > self.remaining() {
            return Err(FrameError::malformed(format!(
                "{what}: count {count} overruns remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Assert every byte was consumed (trailing garbage is corruption).
    pub fn finish(self, what: &str) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError::malformed(format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Reference values of the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frame_round_trip() {
        for payload in [&b""[..], b"x", b"hello frame", &[0u8; 1000][..]] {
            let mut buf = Vec::new();
            write_frame(&mut buf, payload).unwrap();
            let back = read_frame(buf.as_slice(), 1 << 20).unwrap();
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn multiple_frames_then_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"one");
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"two");
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Eof)));
    }

    #[test]
    fn every_truncation_is_a_torn_tail() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&buf[..cut], 64).unwrap_err();
            assert!(
                matches!(err, FrameError::TornTail { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_is_bad_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        for i in 8..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(
                    read_frame(bad.as_slice(), 64),
                    Err(FrameError::BadCrc { .. })
                ),
                "flip at {i}"
            );
        }
    }

    #[test]
    fn flipped_crc_byte_is_bad_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf[5] ^= 0xFF;
        assert!(matches!(
            read_frame(buf.as_slice(), 64),
            Err(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u32(&mut buf, 0);
        assert!(matches!(
            read_frame(buf.as_slice(), 1 << 20),
            Err(FrameError::TooLong { .. })
        ));
    }

    #[test]
    fn cursor_round_trips_scalars_and_strings() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX);
        put_i32(&mut buf, -5);
        put_f64(&mut buf, f64::NAN);
        put_str(&mut buf, "héllo 🦀");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.take_u8("a").unwrap(), 7);
        assert_eq!(c.take_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.take_u64("c").unwrap(), u64::MAX);
        assert_eq!(c.take_i32("d").unwrap(), -5);
        assert!(c.take_f64("e").unwrap().is_nan());
        assert_eq!(c.take_str(64, "f").unwrap(), "héllo 🦀");
        c.finish("test").unwrap();
    }

    #[test]
    fn cursor_rejects_overrun_count_and_trailing_bytes() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1_000_000); // claims a million 8-byte items
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            c.take_count(8, "items"),
            Err(FrameError::Malformed { .. })
        ));
        let buf = [0u8; 3];
        let c = Cursor::new(&buf);
        assert!(matches!(c.finish("t"), Err(FrameError::Malformed { .. })));
    }

    #[test]
    fn cursor_rejects_bad_utf8() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            c.take_str(64, "s"),
            Err(FrameError::Malformed { .. })
        ));
    }
}
