//! Degree and size statistics, used by the bench harness to describe
//! workloads the way the paper's Table I header does (`n`, `s`, avg degree).

use rayon::prelude::*;

use crate::CsrGraph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count `n`.
    pub num_vertices: usize,
    /// Directed edge count `s`.
    pub num_edges: usize,
    /// Minimum out-degree.
    pub min_degree: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree `s / n`.
    pub avg_degree: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Number of self-loops.
    pub self_loops: usize,
}

/// Compute [`GraphStats`] in parallel.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_vertices();
    if n == 0 {
        return GraphStats {
            num_vertices: 0,
            num_edges: 0,
            min_degree: 0,
            max_degree: 0,
            avg_degree: 0.0,
            isolated: 0,
            self_loops: 0,
        };
    }
    let (min_d, max_d, isolated, self_loops) = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let d = g.out_degree(v);
            let loops = g.neighbors(v).iter().filter(|&&t| t == v).count();
            (d, d, usize::from(d == 0), loops)
        })
        .reduce(
            || (usize::MAX, 0usize, 0usize, 0usize),
            |a, b| (a.0.min(b.0), a.1.max(b.1), a.2 + b.2, a.3 + b.3),
        );
    GraphStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        min_degree: min_d,
        max_degree: max_d,
        avg_degree: g.num_edges() as f64 / n as f64,
        isolated,
        self_loops,
    }
}

/// Out-degree histogram with power-of-two buckets: bucket `i` counts
/// vertices with degree in `[2^i, 2^{i+1})`; bucket 0 additionally holds
/// degree-0 vertices.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; 40];
    for v in 0..g.num_vertices() as u32 {
        let d = g.out_degree(v);
        let bucket = if d == 0 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        let idx = bucket.min(hist.len() - 1);
        hist[idx] += 1;
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, EdgeList};

    fn star(n: usize) -> CsrGraph {
        let edges: Vec<Edge> = (1..n as u32).map(|v| Edge::unit(0, v)).collect();
        CsrGraph::from_edge_list(&EdgeList::new(n, edges).unwrap())
    }

    #[test]
    fn star_stats() {
        let s = graph_stats(&star(8));
        assert_eq!(s.num_vertices, 8);
        assert_eq!(s.num_edges, 7);
        assert_eq!(s.max_degree, 7);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.isolated, 7);
        assert_eq!(s.self_loops, 0);
    }

    #[test]
    fn self_loops_counted() {
        let el = EdgeList::new(
            2,
            vec![Edge::unit(0, 0), Edge::unit(1, 1), Edge::unit(0, 1)],
        )
        .unwrap();
        let s = graph_stats(&CsrGraph::from_edge_list(&el));
        assert_eq!(s.self_loops, 2);
    }

    #[test]
    fn empty_graph_stats() {
        let s = graph_stats(&CsrGraph::build(0, &[], false));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let h = degree_histogram(&star(8));
        // vertex 0 has degree 7 → bucket 2 ([4,8)); 7 isolated vertices → bucket 0
        assert_eq!(h[0], 7);
        assert_eq!(h[2], 1);
    }
}
