//! Graph containers and utilities for the Edge-Parallel GEE reproduction.
//!
//! This crate provides the substrate the Ligra-style engine and the GEE
//! algorithm run on:
//!
//! * [`EdgeList`] — the `E ∈ R^{s×3}` representation Algorithm 1 of the paper
//!   consumes: a flat list of `(source, destination, weight)` triples.
//! * [`CsrGraph`] — a compressed-sparse-row adjacency structure with optional
//!   per-edge weights and an optionally materialized transpose, the
//!   representation the Ligra engine traverses.
//! * [`builder::GraphBuilder`] — deduplicating/validating construction.
//! * [`io`] — plain edge-list text, SNAP-style text, and a compact binary
//!   format.
//! * [`transform`] — symmetrization, self-loop removal, vertex compaction.
//! * [`stats`] — degree statistics used by the benchmark harness to describe
//!   workloads the way the paper's Table I does.
//!
//! Vertex ids are `u32` ([`VertexId`]): the paper's largest graph has 65M
//! vertices, comfortably inside `u32`, and halving index width matters for a
//! memory-bound workload (§IV of the paper).

pub mod builder;
pub mod compressed;
pub mod csr;
pub mod edge_list;
pub mod io;
pub mod ordering;
pub mod stats;
pub mod transform;

pub use builder::GraphBuilder;
pub use compressed::CompressedCsr;
pub use csr::CsrGraph;
pub use edge_list::{Edge, EdgeList};

/// Vertex identifier. 32 bits: the paper's graphs top out at 65M vertices.
pub type VertexId = u32;

/// Edge weight type. The paper's Algorithm 1 is formulated for weighted
/// directed graphs with `f64` weights; unweighted graphs use unit weights.
pub type Weight = f64;

/// Errors produced while building or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= n`.
    VertexOutOfRange {
        /// Offending vertex id.
        vertex: u64,
        /// Number of vertices in the graph.
        n: u64,
    },
    /// A weight was NaN or infinite.
    InvalidWeight {
        /// Edge index in the input order.
        edge_index: usize,
    },
    /// An I/O error wrapped from `std::io`.
    Io(std::io::Error),
    /// A parse error with line number context.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
    /// Binary format violation.
    Format(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex id {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::InvalidWeight { edge_index } => {
                write!(f, "edge {edge_index} has a non-finite weight")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
