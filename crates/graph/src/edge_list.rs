//! Flat edge-list representation: the `E ∈ R^{s×3}` input of GEE Algorithm 1.
//!
//! The serial reference and "Numba analog" implementations of GEE iterate
//! this structure directly; the Ligra implementations convert it to
//! [`crate::CsrGraph`] first.

use crate::{VertexId, Weight};

/// One weighted directed edge `(u, v, w)`.
///
/// Unweighted graphs use `w = 1.0`; undirected graphs are represented as two
/// symmetric directed edges, exactly as §II of the paper prescribes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub u: VertexId,
    /// Destination vertex.
    pub v: VertexId,
    /// Edge weight.
    pub w: Weight,
}

impl Edge {
    /// Construct a weighted edge.
    #[inline]
    pub fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Edge { u, v, w }
    }

    /// Construct a unit-weight edge.
    #[inline]
    pub fn unit(u: VertexId, v: VertexId) -> Self {
        Edge { u, v, w: 1.0 }
    }

    /// The same edge with endpoints swapped (used when symmetrizing).
    #[inline]
    pub fn reversed(self) -> Self {
        Edge {
            u: self.v,
            v: self.u,
            w: self.w,
        }
    }
}

/// An edge list together with its vertex count.
///
/// Invariant: every endpoint is `< num_vertices`. Constructors enforce this;
/// use [`EdgeList::new_unchecked`] only for data known to be valid (e.g.
/// generator output).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Build an edge list, validating every endpoint against `num_vertices`
    /// and every weight for finiteness.
    pub fn new(num_vertices: usize, edges: Vec<Edge>) -> crate::Result<Self> {
        for (i, e) in edges.iter().enumerate() {
            if (e.u as usize) >= num_vertices {
                return Err(crate::GraphError::VertexOutOfRange {
                    vertex: e.u as u64,
                    n: num_vertices as u64,
                });
            }
            if (e.v as usize) >= num_vertices {
                return Err(crate::GraphError::VertexOutOfRange {
                    vertex: e.v as u64,
                    n: num_vertices as u64,
                });
            }
            if !e.w.is_finite() {
                return Err(crate::GraphError::InvalidWeight { edge_index: i });
            }
        }
        Ok(EdgeList {
            num_vertices,
            edges,
        })
    }

    /// Build without validation. The caller promises every endpoint is
    /// `< num_vertices` and every weight is finite.
    pub fn new_unchecked(num_vertices: usize, edges: Vec<Edge>) -> Self {
        debug_assert!(edges.iter().all(|e| (e.u as usize) < num_vertices
            && (e.v as usize) < num_vertices
            && e.w.is_finite()));
        EdgeList {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges `s`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Borrow the edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consume into the raw edge vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Iterate over `(u, v, w)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.edges.iter().map(|e| (e.u, e.v, e.w))
    }

    /// True if no edge carries a weight other than `1.0`.
    pub fn is_unit_weighted(&self) -> bool {
        self.edges.iter().all(|e| e.w == 1.0)
    }

    /// Append the reverse of every edge, turning a directed edge list into
    /// the two-symmetric-directed-edges encoding of an undirected graph.
    ///
    /// Self-loops are *not* duplicated (a loop is its own reverse).
    pub fn symmetrized(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        edges.extend_from_slice(&self.edges);
        edges.extend(
            self.edges
                .iter()
                .filter(|e| e.u != e.v)
                .map(|e| e.reversed()),
        );
        EdgeList {
            num_vertices: self.num_vertices,
            edges,
        }
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.w).sum()
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;
    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EdgeList {
        EdgeList::new(
            4,
            vec![Edge::unit(0, 1), Edge::new(1, 2, 2.5), Edge::unit(3, 3)],
        )
        .unwrap()
    }

    #[test]
    fn counts() {
        let el = small();
        assert_eq!(el.num_vertices(), 4);
        assert_eq!(el.num_edges(), 3);
    }

    #[test]
    fn validation_rejects_out_of_range_source() {
        let err = EdgeList::new(2, vec![Edge::unit(2, 0)]).unwrap_err();
        assert!(matches!(
            err,
            crate::GraphError::VertexOutOfRange { vertex: 2, n: 2 }
        ));
    }

    #[test]
    fn validation_rejects_out_of_range_destination() {
        let err = EdgeList::new(2, vec![Edge::unit(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            crate::GraphError::VertexOutOfRange { vertex: 5, n: 2 }
        ));
    }

    #[test]
    fn validation_rejects_nan_weight() {
        let err = EdgeList::new(2, vec![Edge::new(0, 1, f64::NAN)]).unwrap_err();
        assert!(matches!(
            err,
            crate::GraphError::InvalidWeight { edge_index: 0 }
        ));
    }

    #[test]
    fn symmetrize_doubles_non_loops() {
        let el = small().symmetrized();
        // 2 non-loop edges doubled + 1 loop kept once = 5
        assert_eq!(el.num_edges(), 5);
        assert!(el.edges().contains(&Edge::unit(1, 0)));
        assert!(el.edges().contains(&Edge::new(2, 1, 2.5)));
    }

    #[test]
    fn unit_weight_detection() {
        assert!(!small().is_unit_weighted());
        let el = EdgeList::new(2, vec![Edge::unit(0, 1)]).unwrap();
        assert!(el.is_unit_weighted());
    }

    #[test]
    fn total_weight_sums() {
        assert!((small().total_weight() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_triples() {
        let el = small();
        let triples: Vec<_> = el.iter().collect();
        assert_eq!(triples[1], (1, 2, 2.5));
    }
}
