//! Byte-compressed CSR (Ligra+-style): varint delta-encoded adjacency
//! lists, decoded on the fly during traversal.
//!
//! §IV of the paper concludes GEE is memory-bound ("two fused-multiply
//! adds per edge and two memory writes"), citing compressed structures
//! (CPMA, ref. 18 of the paper) as the direction for such workloads. This module provides
//! the classic compression the Ligra+ system applied to Ligra: per-vertex
//! neighbor lists sorted ascending, first neighbor stored as a
//! zigzag-encoded delta from the vertex id, the rest as gaps, all in
//! LEB128 varints. Typical social graphs compress to ~40–60% of the raw
//! 4-byte-per-target CSR, trading decode ALU work for memory bandwidth.
//! The `ablation-compression` bench measures that trade on GEE.
//!
//! Weights are not compressed (the paper's evaluation graphs are
//! unweighted); weighted graphs keep an uncompressed parallel array.

use rayon::prelude::*;

use crate::{CsrGraph, VertexId, Weight};

/// Byte-compressed adjacency.
#[derive(Debug, Clone)]
pub struct CompressedCsr {
    num_vertices: usize,
    num_edges: usize,
    /// Byte offset of each vertex's encoded list (`n+1` entries).
    offsets: Vec<usize>,
    /// Concatenated varint streams.
    data: Vec<u8>,
    /// Optional uncompressed weights, aligned with decode order.
    weights: Option<Vec<Weight>>,
    /// Edge-rank offsets (`n+1`): index of each vertex's first edge in
    /// decode order — needed to find a vertex's weights.
    edge_offsets: Vec<usize>,
}

/// Zigzag-encode a signed delta.
#[inline]
fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Zigzag-decode.
#[inline]
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Append a LEB128 varint.
#[inline]
fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; returns (value, bytes consumed).
#[inline]
fn get_varint(data: &[u8]) -> (u64, usize) {
    let mut x = 0u64;
    let mut shift = 0;
    for (i, &b) in data.iter().enumerate() {
        x |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return (x, i + 1);
        }
        shift += 7;
    }
    panic!("truncated varint");
}

impl CompressedCsr {
    /// Compress a CSR graph. Neighbor lists are sorted ascending (weights,
    /// if any, are permuted alongside), which GEE permits: addition order
    /// within a vertex's list only reorders FP sums.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        // Encode each vertex independently (parallel), then concatenate.
        let encoded: Vec<(Vec<u8>, Vec<Weight>)> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                let nbrs = g.neighbors(v);
                let mut order: Vec<usize> = (0..nbrs.len()).collect();
                order.sort_unstable_by_key(|&i| nbrs[i]);
                let mut bytes = Vec::with_capacity(nbrs.len());
                let mut ws = Vec::new();
                let mut prev: Option<u32> = None;
                for &i in &order {
                    let t = nbrs[i];
                    match prev {
                        None => put_varint(&mut bytes, zigzag(t as i64 - v as i64)),
                        Some(p) => put_varint(&mut bytes, (t - p) as u64),
                    }
                    prev = Some(t);
                    if g.is_weighted() {
                        ws.push(g.weight_at(v, i));
                    }
                }
                (bytes, ws)
            })
            .collect();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edge_offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::new();
        let mut weights = g.is_weighted().then(Vec::new);
        let mut edge_acc = 0usize;
        for (v, (bytes, ws)) in encoded.iter().enumerate() {
            offsets.push(data.len());
            edge_offsets.push(edge_acc);
            data.extend_from_slice(bytes);
            edge_acc += g.out_degree(v as u32);
            if let Some(w) = &mut weights {
                w.extend_from_slice(ws);
            }
        }
        offsets.push(data.len());
        edge_offsets.push(edge_acc);
        CompressedCsr {
            num_vertices: n,
            num_edges: g.num_edges(),
            offsets,
            data,
            weights,
            edge_offsets,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.edge_offsets[v + 1] - self.edge_offsets[v]
    }

    /// Bytes used by the adjacency encoding.
    pub fn adjacency_bytes(&self) -> usize {
        self.data.len()
    }

    /// Ratio of compressed adjacency bytes to the raw 4-byte-per-target
    /// CSR (< 1 means compression won).
    pub fn compression_ratio(&self) -> f64 {
        if self.num_edges == 0 {
            return 1.0;
        }
        self.data.len() as f64 / (self.num_edges * 4) as f64
    }

    /// Decode the out-neighbors of `v`, calling `f(target, weight)` per
    /// edge in ascending target order.
    #[inline]
    pub fn for_each_out<F: FnMut(VertexId, Weight)>(&self, v: VertexId, mut f: F) {
        let vi = v as usize;
        let mut cursor = self.offsets[vi];
        let end = self.offsets[vi + 1];
        let mut e = self.edge_offsets[vi];
        let mut prev: Option<u32> = None;
        while cursor < end {
            let (raw, used) = get_varint(&self.data[cursor..]);
            cursor += used;
            let t = match prev {
                None => (v as i64 + unzigzag(raw)) as u32,
                Some(p) => p + raw as u32,
            };
            prev = Some(t);
            let w = match &self.weights {
                Some(ws) => ws[e],
                None => 1.0,
            };
            e += 1;
            f(t, w);
        }
    }

    /// Decode back to an uncompressed CSR (neighbors in sorted order).
    pub fn to_csr(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.num_edges);
        for v in 0..self.num_vertices as u32 {
            self.for_each_out(v, |t, w| edges.push(crate::Edge::new(v, t, w)));
        }
        CsrGraph::build(self.num_vertices, &edges, self.weights.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, EdgeList};

    fn round_trip(el: &EdgeList) -> (CsrGraph, CompressedCsr) {
        let g = CsrGraph::from_edge_list(el);
        let c = CompressedCsr::from_csr(&g);
        (g, c)
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        for x in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, x);
            let (y, used) = get_varint(&buf);
            assert_eq!(x, y);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for x in [-5i64, -1, 0, 1, 7, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
    }

    #[test]
    fn preserves_edges_sorted() {
        let el = EdgeList::new(
            6,
            vec![
                Edge::unit(0, 5),
                Edge::unit(0, 2),
                Edge::unit(0, 3),
                Edge::unit(4, 1),
            ],
        )
        .unwrap();
        let (_, c) = round_trip(&el);
        let mut out = Vec::new();
        c.for_each_out(0, |t, _| out.push(t));
        assert_eq!(out, vec![2, 3, 5]);
        assert_eq!(c.out_degree(0), 3);
        assert_eq!(c.out_degree(4), 1);
        assert_eq!(c.num_edges(), 4);
    }

    #[test]
    fn weighted_edges_follow_sort() {
        let el = EdgeList::new(3, vec![Edge::new(0, 2, 9.0), Edge::new(0, 1, 4.0)]).unwrap();
        let (_, c) = round_trip(&el);
        let mut out = Vec::new();
        c.for_each_out(0, |t, w| out.push((t, w)));
        assert_eq!(out, vec![(1, 4.0), (2, 9.0)]);
    }

    #[test]
    fn round_trips_random_graph() {
        let el = gee_gen_like(500, 6000, 3);
        let (g, c) = round_trip(&el);
        let back = c.to_csr();
        let mut a: Vec<(u32, u32)> = g.iter_edges().map(|(u, v, _)| (u, v)).collect();
        let mut b: Vec<(u32, u32)> = back.iter_edges().map(|(u, v, _)| (u, v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn compresses_clustered_ids() {
        // Path graph: deltas are ±1, one byte each → 4× compression.
        let edges: Vec<Edge> = (0..10_000u32).map(|v| Edge::unit(v, v + 1)).collect();
        let el = EdgeList::new(10_001, edges).unwrap();
        let (_, c) = round_trip(&el);
        assert!(
            c.compression_ratio() < 0.3,
            "ratio {}",
            c.compression_ratio()
        );
    }

    #[test]
    fn duplicate_edges_survive() {
        let el = EdgeList::new(2, vec![Edge::unit(0, 1), Edge::unit(0, 1)]).unwrap();
        let (_, c) = round_trip(&el);
        let mut count = 0;
        c.for_each_out(0, |t, _| {
            assert_eq!(t, 1);
            count += 1;
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn empty_graph() {
        let el = EdgeList::new(0, vec![]).unwrap();
        let (_, c) = round_trip(&el);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.compression_ratio(), 1.0);
    }

    /// Local helper: deterministic pseudo-random edge list without a dev
    /// dependency on gee-gen (which depends on this crate).
    fn gee_gen_like(n: usize, m: usize, seed: u64) -> EdgeList {
        let mut x = seed;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u32
        };
        let edges = (0..m)
            .map(|_| Edge::unit(next() % n as u32, next() % n as u32))
            .collect();
        EdgeList::new_unchecked(n, edges)
    }
}
