//! Compressed-sparse-row adjacency — the representation the Ligra-style
//! engine traverses.
//!
//! Layout follows Ligra: a `n+1`-entry offset array into a flat target array,
//! with an optional parallel weight array. The transpose (in-edges) can be
//! materialized once and cached for pull-style (`edgeMapDense`) traversal.
//!
//! Construction is parallel (rayon): degree counting with atomic counters,
//! a prefix sum over degrees, and a parallel scatter — the same three-phase
//! build Ligra's `graphIO` performs.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use rayon::prelude::*;

use crate::{Edge, EdgeList, VertexId, Weight};

/// CSR adjacency for a weighted directed graph.
///
/// Undirected graphs are stored as two symmetric directed edges (build from
/// [`EdgeList::symmetrized`]), matching §II of the paper.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    num_vertices: usize,
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`weights` for vertex `v`.
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    /// `None` means every edge has unit weight (saves 8 bytes/edge on the
    /// memory-bound traversals of §IV).
    weights: Option<Vec<Weight>>,
    /// Cached transpose for pull-style traversal; built on demand.
    transpose: Option<Box<CsrGraph>>,
}

impl CsrGraph {
    /// Build from an edge list, preserving duplicate edges and self-loops
    /// (GEE sums contributions per edge occurrence, so duplicates matter).
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Self::build(el.num_vertices(), el.edges(), !el.is_unit_weighted())
    }

    /// Build from raw parts. `store_weights = false` drops the weight array
    /// and treats every edge as unit weight.
    pub fn build(num_vertices: usize, edges: &[Edge], store_weights: bool) -> Self {
        let n = num_vertices;
        // Phase 1: parallel degree count.
        let degrees: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        edges.par_iter().for_each(|e| {
            degrees[e.u as usize].fetch_add(1, Ordering::Relaxed);
        });
        // Phase 2: exclusive prefix sum (serial: n is small relative to s and
        // this is bandwidth-bound anyway; the engine crate has a parallel scan
        // for frontier packing where it matters).
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d.load(Ordering::Relaxed) as usize;
            offsets.push(acc);
        }
        let s = acc;
        // Phase 3: parallel scatter using per-vertex cursors.
        let cursors: Vec<AtomicUsize> = offsets[..n].iter().map(|&o| AtomicUsize::new(o)).collect();
        let mut targets = vec![0 as VertexId; s];
        let mut weights = if store_weights {
            vec![0.0; s]
        } else {
            Vec::new()
        };
        {
            let tgt_ptr = SendPtr(targets.as_mut_ptr());
            let w_ptr = SendPtr(weights.as_mut_ptr());
            edges.par_iter().for_each(|e| {
                let slot = cursors[e.u as usize].fetch_add(1, Ordering::Relaxed);
                // SAFETY: `slot` values are unique per edge — each comes from a
                // distinct fetch_add on the source vertex cursor, and cursors
                // partition `0..s` by the prefix sum. No two writes alias.
                unsafe {
                    *tgt_ptr.get().add(slot) = e.v;
                    if store_weights {
                        *w_ptr.get().add(slot) = e.w;
                    }
                }
            });
        }
        CsrGraph {
            num_vertices: n,
            offsets,
            targets,
            weights: if store_weights { Some(weights) } else { None },
            transpose: None,
        }
    }

    /// Assemble from pre-validated CSR arrays (used by the binary loader).
    ///
    /// Panics (debug) if the invariants don't hold; the binary reader
    /// validates before calling.
    pub fn from_raw_parts(
        num_vertices: usize,
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Option<Vec<Weight>>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), num_vertices + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), targets.len());
        debug_assert!(weights.as_ref().is_none_or(|w| w.len() == targets.len()));
        CsrGraph {
            num_vertices,
            offsets,
            targets,
            weights,
            transpose: None,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges `s`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights of out-edges of `v`, if the graph stores explicit weights.
    #[inline]
    pub fn edge_weights(&self, v: VertexId) -> Option<&[Weight]> {
        self.weights.as_ref().map(|w| {
            let v = v as usize;
            &w[self.offsets[v]..self.offsets[v + 1]]
        })
    }

    /// Weight of the `i`-th out-edge of `v` (unit if weights are elided).
    #[inline]
    pub fn weight_at(&self, v: VertexId, i: usize) -> Weight {
        match &self.weights {
            Some(w) => w[self.offsets[v as usize] + i],
            None => 1.0,
        }
    }

    /// True when the graph stores an explicit weight array.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Offset array (`n+1` entries). Exposed for engine internals.
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Flat target array. Exposed for engine internals.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Flat weight array if stored.
    #[inline]
    pub fn weights(&self) -> Option<&[Weight]> {
        self.weights.as_deref()
    }

    /// Iterate `(u, v, w)` for all edges in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_vertices as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .enumerate()
                .map(move |(i, &v)| (u, v, self.weight_at(u, i)))
        })
    }

    /// Reconstruct the edge list (CSR order).
    pub fn to_edge_list(&self) -> EdgeList {
        let edges = self
            .iter_edges()
            .map(|(u, v, w)| Edge::new(u, v, w))
            .collect();
        EdgeList::new_unchecked(self.num_vertices, edges)
    }

    /// Materialize and cache the transpose (in-edge CSR). Pull-style
    /// `edgeMapDense` iterates a vertex's *in*-edges; this provides them.
    pub fn ensure_transpose(&mut self) {
        if self.transpose.is_none() {
            let rev: Vec<Edge> = self
                .iter_edges()
                .map(|(u, v, w)| Edge::new(v, u, w))
                .collect();
            let t = CsrGraph::build(self.num_vertices, &rev, self.weights.is_some());
            self.transpose = Some(Box::new(t));
        }
    }

    /// The cached transpose, if [`CsrGraph::ensure_transpose`] has run.
    #[inline]
    pub fn transpose(&self) -> Option<&CsrGraph> {
        self.transpose.as_deref()
    }

    /// Sum of all edge weights (count of edges when unweighted).
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            Some(w) => w.iter().sum(),
            None => self.targets.len() as f64,
        }
    }
}

/// Raw pointer wrapper that is `Send + Sync` so rayon closures can scatter
/// into disjoint slots. Safety argument lives at each use site.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Access the pointer through the (Sync) wrapper so closures capture the
    /// wrapper rather than the raw pointer field.
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (weights 1..4)
        let el = EdgeList::new(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(0, 2, 2.0),
                Edge::new(1, 3, 3.0),
                Edge::new(2, 3, 4.0),
            ],
        )
        .unwrap();
        CsrGraph::from_edge_list(&el)
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn neighbors_and_weights_align() {
        let g = diamond();
        let nb = g.neighbors(0);
        let mut pairs: Vec<(u32, f64)> = nb
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, g.weight_at(0, i)))
            .collect();
        pairs.sort_by_key(|a| a.0);
        assert_eq!(pairs, vec![(1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn unit_weight_graph_elides_weights() {
        let el = EdgeList::new(3, vec![Edge::unit(0, 1), Edge::unit(1, 2)]).unwrap();
        let g = CsrGraph::from_edge_list(&el);
        assert!(!g.is_weighted());
        assert_eq!(g.weight_at(0, 0), 1.0);
    }

    #[test]
    fn duplicates_and_loops_preserved() {
        let el = EdgeList::new(
            2,
            vec![Edge::unit(0, 1), Edge::unit(0, 1), Edge::unit(1, 1)],
        )
        .unwrap();
        let g = CsrGraph::from_edge_list(&el);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let mut g = diamond();
        g.ensure_transpose();
        let t = g.transpose().unwrap();
        assert_eq!(t.out_degree(3), 2);
        assert_eq!(t.out_degree(0), 0);
        let mut inn: Vec<u32> = t.neighbors(3).to_vec();
        inn.sort_unstable();
        assert_eq!(inn, vec![1, 2]);
    }

    #[test]
    fn round_trip_edge_list() {
        let g = diamond();
        let el = g.to_edge_list();
        let g2 = CsrGraph::from_edge_list(&el);
        assert_eq!(g.offsets(), g2.offsets());
        // CSR order within a vertex may differ after round trip only if the
        // scatter ordered differently; compare as multisets.
        let mut a: Vec<_> = g
            .iter_edges()
            .map(|(u, v, w)| (u, v, w.to_bits()))
            .collect();
        let mut b: Vec<_> = g2
            .iter_edges()
            .map(|(u, v, w)| (u, v, w.to_bits()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn total_weight() {
        assert_eq!(diamond().total_weight(), 10.0);
    }

    #[test]
    fn iter_edges_covers_all() {
        let g = diamond();
        assert_eq!(g.iter_edges().count(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::build(0, &[], false);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let el = EdgeList::new(10, vec![Edge::unit(0, 9)]).unwrap();
        let g = CsrGraph::from_edge_list(&el);
        for v in 1..9 {
            assert_eq!(g.out_degree(v), 0);
        }
        assert_eq!(g.neighbors(0), &[9]);
    }
}
