//! Property-based tests of the graph substrate's core invariants.

use gee_graph::{transform, CsrGraph, Edge, EdgeList};
use proptest::prelude::*;

/// Strategy: an arbitrary small graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f64..10.0), 0..200).prop_map(
            move |triples| {
                let edges = triples
                    .into_iter()
                    .map(|(u, v, w)| Edge::new(u, v, w))
                    .collect();
                EdgeList::new_unchecked(n, edges)
            },
        )
    })
}

proptest! {
    /// CSR preserves the edge multiset exactly.
    #[test]
    fn csr_preserves_edge_multiset(el in arb_graph()) {
        let g = CsrGraph::from_edge_list(&el);
        prop_assert_eq!(g.num_edges(), el.num_edges());
        let mut a: Vec<(u32, u32, u64)> =
            el.iter().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        let mut b: Vec<(u32, u32, u64)> =
            g.iter_edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Degrees sum to the edge count and match per-vertex counts.
    #[test]
    fn degrees_consistent(el in arb_graph()) {
        let g = CsrGraph::from_edge_list(&el);
        let total: usize = (0..g.num_vertices() as u32).map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(total, g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(g.out_degree(v), g.neighbors(v).len());
        }
    }

    /// Transposing twice restores the original edge multiset.
    #[test]
    fn transpose_is_involution(el in arb_graph()) {
        let mut g = CsrGraph::from_edge_list(&el);
        g.ensure_transpose();
        let mut t = g.transpose().unwrap().clone();
        t.ensure_transpose();
        let tt = t.transpose().unwrap();
        let mut a: Vec<(u32, u32, u64)> =
            g.iter_edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        let mut b: Vec<(u32, u32, u64)> =
            tt.iter_edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Symmetrization makes in-degree equal out-degree for every vertex.
    #[test]
    fn symmetrize_balances_degrees(el in arb_graph()) {
        let sym = transform::remove_self_loops(&el).symmetrized();
        let mut g = CsrGraph::from_edge_list(&sym);
        g.ensure_transpose();
        let t = g.transpose().unwrap();
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(g.out_degree(v), t.out_degree(v), "vertex {}", v);
        }
    }

    /// Binary round trip is exact.
    #[test]
    fn binary_round_trip(el in arb_graph()) {
        let g = CsrGraph::from_edge_list(&el);
        let mut bytes = Vec::new();
        gee_graph::io::binary::write(&mut bytes, &g).unwrap();
        let back = gee_graph::io::binary::read(bytes.as_slice()).unwrap();
        prop_assert_eq!(g.offsets(), back.offsets());
        prop_assert_eq!(g.targets(), back.targets());
        prop_assert_eq!(g.weights(), back.weights());
    }

    /// Text edge-list round trip preserves the list exactly (weights in
    /// this strategy are short decimals that survive f64 printing).
    #[test]
    fn text_round_trip(el in arb_graph()) {
        let mut buf = Vec::new();
        gee_graph::io::edgelist::write(&mut buf, &el).unwrap();
        let back = gee_graph::io::edgelist::read(buf.as_slice(), Some(el.num_vertices())).unwrap();
        prop_assert_eq!(back.num_edges(), el.num_edges());
        for (a, b) in back.edges().iter().zip(el.edges()) {
            prop_assert_eq!(a.u, b.u);
            prop_assert_eq!(a.v, b.v);
            prop_assert!((a.w - b.w).abs() < 1e-12);
        }
    }

    /// Edge-stream round trip is bit-exact.
    #[test]
    fn stream_round_trip(el in arb_graph()) {
        let mut bytes = Vec::new();
        gee_graph::io::edge_stream::write(&mut bytes, &el).unwrap();
        let mut r = gee_graph::io::edge_stream::EdgeStreamReader::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        let mut all = Vec::new();
        while r.read_chunk(&mut buf, 13).unwrap() > 0 {
            all.extend_from_slice(&buf);
        }
        prop_assert_eq!(all.as_slice(), el.edges());
    }

    /// Compaction produces dense ids covering exactly the touched vertices.
    #[test]
    fn compaction_dense_and_complete(el in arb_graph()) {
        let (compact, map) = transform::compact(&el);
        prop_assert_eq!(compact.num_edges(), el.num_edges());
        // Every touched vertex maps below the new n; untouched map to MAX.
        let mut touched = vec![false; el.num_vertices()];
        for e in el.edges() {
            touched[e.u as usize] = true;
            touched[e.v as usize] = true;
        }
        for (v, &t) in touched.iter().enumerate() {
            if t {
                prop_assert!((map[v] as usize) < compact.num_vertices());
            } else {
                prop_assert_eq!(map[v], u32::MAX);
            }
        }
    }

    /// Coalescing preserves total weight and never increases edge count.
    #[test]
    fn coalesce_preserves_weight(el in arb_graph()) {
        let merged = transform::coalesce(&el);
        prop_assert!(merged.num_edges() <= el.num_edges());
        prop_assert!((merged.total_weight() - el.total_weight()).abs() < 1e-9);
    }

    /// Compression round-trips the edge multiset exactly.
    #[test]
    fn compression_round_trip(el in arb_graph()) {
        let g = CsrGraph::from_edge_list(&el);
        let c = gee_graph::CompressedCsr::from_csr(&g);
        prop_assert_eq!(c.num_edges(), g.num_edges());
        let back = c.to_csr();
        let mut a: Vec<(u32, u32, u64)> =
            g.iter_edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        let mut b: Vec<(u32, u32, u64)> =
            back.iter_edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Per-vertex degrees survive too.
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(c.out_degree(v), g.out_degree(v));
        }
    }

    /// Compressed decode yields ascending targets per vertex.
    #[test]
    fn compression_decodes_sorted(el in arb_graph()) {
        let g = CsrGraph::from_edge_list(&el);
        let c = gee_graph::CompressedCsr::from_csr(&g);
        for v in 0..g.num_vertices() as u32 {
            let mut prev = None;
            c.for_each_out(v, |t, _| {
                if let Some(p) = prev {
                    assert!(t >= p, "vertex {v}: {t} after {p}");
                }
                prev = Some(t);
            });
        }
    }

    /// Every ordering is a true permutation, and applying it preserves the
    /// degree multiset.
    #[test]
    fn orderings_are_permutations(el in arb_graph(), seed in 0u64..100) {
        use gee_graph::ordering;
        let g = CsrGraph::from_edge_list(&el);
        let n = g.num_vertices();
        for perm in [
            ordering::degree_order(&g),
            ordering::bfs_order(&g),
            ordering::random_order(n, seed),
        ] {
            let mut seen = vec![false; n];
            for &p in &perm {
                prop_assert!(!seen[p as usize], "duplicate target id");
                seen[p as usize] = true;
            }
            let permuted = ordering::apply(&el, &perm);
            let g2 = CsrGraph::from_edge_list(&permuted);
            let mut d1: Vec<usize> = (0..n as u32).map(|v| g.out_degree(v)).collect();
            let mut d2: Vec<usize> = (0..n as u32).map(|v| g2.out_degree(v)).collect();
            d1.sort_unstable();
            d2.sort_unstable();
            prop_assert_eq!(d1, d2);
        }
    }

    /// Matrix Market round trip preserves topology (weights as printed
    /// decimals survive f64 round trip for this strategy's values).
    #[test]
    fn mtx_round_trip(el in arb_graph()) {
        let mut buf = Vec::new();
        gee_graph::io::mtx::write(&mut buf, &el).unwrap();
        let back = gee_graph::io::mtx::read(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.num_edges(), el.num_edges());
        for (a, b) in back.edges().iter().zip(el.edges()) {
            prop_assert_eq!(a.u, b.u);
            prop_assert_eq!(a.v, b.v);
            prop_assert!((a.w - b.w).abs() < 1e-12);
        }
    }
}
