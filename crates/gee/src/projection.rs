//! The projection matrix `W` (Algorithm 1 lines 2–6 / Algorithm 2's
//! `ParallelFor`), in both the dense form the reference pseudocode writes
//! and the sparse form every real implementation uses.
//!
//! `W` has at most one non-zero per row: `W(v, Y(v)) = 1 / count(Y = Y(v))`
//! for labeled `v`. The sparse form stores just that coefficient per vertex.
//! §III of the paper: "We also parallelize the initialization of the
//! projection matrix, which costs O(nk) … O(nk) becomes the dominant
//! component of the runtime when graphs have a high n and a very low
//! average degree" — [`Projection::build_parallel`] is that parallel
//! initialization, and the `ablation-init` bench measures the claim.

use rayon::prelude::*;

use crate::labels::Labels;

/// Sparse per-vertex projection coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// `coeff[v] = 1 / |class(Y(v))|` for labeled `v`, else `0.0`.
    coeff: Vec<f64>,
}

impl Projection {
    /// Serial construction (the "Numba analog" path).
    pub fn build_serial(labels: &Labels) -> Self {
        let inv: Vec<f64> = labels
            .class_counts()
            .iter()
            .map(|&c| if c > 0 { 1.0 / c as f64 } else { 0.0 })
            .collect();
        let coeff = labels
            .raw_slice()
            .iter()
            .map(|&y| if y >= 0 { inv[y as usize] } else { 0.0 })
            .collect();
        Projection { coeff }
    }

    /// Parallel construction (Algorithm 2 lines 3–6).
    pub fn build_parallel(labels: &Labels) -> Self {
        let inv: Vec<f64> = labels
            .class_counts()
            .par_iter()
            .map(|&c| if c > 0 { 1.0 / c as f64 } else { 0.0 })
            .collect();
        let coeff = labels
            .raw_slice()
            .par_iter()
            .map(|&y| if y >= 0 { inv[y as usize] } else { 0.0 })
            .collect();
        Projection { coeff }
    }

    /// Coefficient of vertex `v` (`0.0` when unlabeled).
    #[inline]
    pub fn coeff(&self, v: u32) -> f64 {
        self.coeff[v as usize]
    }

    /// Flat coefficient slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.coeff
    }

    /// Materialize the dense `n × K` matrix of Algorithm 1 (reference /
    /// test use only — O(nK) memory).
    pub fn to_dense(&self, labels: &Labels) -> Vec<f64> {
        let k = labels.num_classes();
        let n = labels.len();
        let mut w = vec![0.0; n * k];
        for (v, c) in labels.iter_labeled() {
            w[v as usize * k + c as usize] = self.coeff[v as usize];
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Labels {
        Labels::from_options(&[Some(0), Some(0), Some(1), None])
    }

    #[test]
    fn serial_coefficients() {
        let p = Projection::build_serial(&labels());
        assert_eq!(p.coeff(0), 0.5);
        assert_eq!(p.coeff(1), 0.5);
        assert_eq!(p.coeff(2), 1.0);
        assert_eq!(p.coeff(3), 0.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let l = labels();
        assert_eq!(Projection::build_serial(&l), Projection::build_parallel(&l));
    }

    #[test]
    fn parallel_matches_serial_large() {
        let y: Vec<Option<u32>> = (0..10_000)
            .map(|i| {
                if i % 7 == 0 {
                    None
                } else {
                    Some((i % 13) as u32)
                }
            })
            .collect();
        let l = Labels::from_options(&y);
        assert_eq!(Projection::build_serial(&l), Projection::build_parallel(&l));
    }

    #[test]
    fn dense_matrix_shape_and_content() {
        let l = labels();
        let p = Projection::build_serial(&l);
        let w = p.to_dense(&l);
        assert_eq!(w.len(), 4 * 2);
        assert_eq!(w[0], 0.5); // W(0, 0)
        assert_eq!(w[2 * 2 + 1], 1.0); // W(2, 1)
        assert_eq!(w[3 * 2], 0.0); // unlabeled row all zero
        assert_eq!(w[3 * 2 + 1], 0.0);
    }

    #[test]
    fn empty_class_has_zero_coeff() {
        // Class 1 declared (k=2) but never used.
        let l = Labels::from_options_with_k(&[Some(0)], 2);
        let p = Projection::build_serial(&l);
        assert_eq!(p.coeff(0), 1.0);
    }
}
