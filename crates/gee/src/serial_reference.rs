//! Algorithm 1 verbatim: dense `n×K` projection matrix, one serial pass
//! over the edge list.
//!
//! This is the semantics oracle — deliberately literal, allocating the full
//! dense `W` exactly as the pseudocode does. All other implementations are
//! tested against it.

use gee_graph::EdgeList;

use crate::embedding::Embedding;
use crate::labels::Labels;
use crate::projection::Projection;

/// One-Hot Graph Encoder Embedding, Algorithm 1 of the paper.
pub fn embed(el: &EdgeList, labels: &Labels) -> Embedding {
    assert_eq!(
        el.num_vertices(),
        labels.len(),
        "labels must cover every vertex"
    );
    let n = el.num_vertices();
    let k = labels.num_classes();
    // Lines 2–6: W = zeros(n, K); W(idx, k) = 1/count(Y=k).
    let w = Projection::build_serial(labels).to_dense(labels);
    // Lines 7–12: single pass over the edges.
    let mut z = Embedding::zeros(n, k);
    for (u, v, wt) in el.iter() {
        // Z(u, Y(v)) += W(v, Y(v)) · w
        if let Some(yv) = labels.get(v) {
            let coeff = w[v as usize * k + yv as usize];
            z.row_mut(u)[yv as usize] += coeff * wt;
        }
        // Z(v, Y(u)) += W(u, Y(u)) · w
        if let Some(yu) = labels.get(u) {
            let coeff = w[u as usize * k + yu as usize];
            z.row_mut(v)[yu as usize] += coeff * wt;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_graph::{Edge, EdgeList};

    /// Tiny worked example, checked by hand.
    ///
    /// Vertices 0,1 in class 0 (count 2 → coeff 0.5); vertex 2 in class 1
    /// (count 1 → coeff 1.0); vertex 3 unlabeled. Edge (0,2,2.0):
    ///   Z(0, Y(2)=1) += 1.0·2.0 = 2.0
    ///   Z(2, Y(0)=0) += 0.5·2.0 = 1.0
    #[test]
    fn hand_worked_example() {
        let el = EdgeList::new(4, vec![Edge::new(0, 2, 2.0)]).unwrap();
        let labels = Labels::from_options(&[Some(0), Some(0), Some(1), None]);
        let z = embed(&el, &labels);
        assert_eq!(z.get(0, 1), 2.0);
        assert_eq!(z.get(2, 0), 1.0);
        assert_eq!(z.get(0, 0), 0.0);
        assert_eq!(z.get(1, 0), 0.0);
        assert_eq!(z.get(3, 0), 0.0);
    }

    #[test]
    fn unlabeled_endpoint_contributes_nothing() {
        let el = EdgeList::new(3, vec![Edge::unit(0, 2), Edge::unit(2, 1)]).unwrap();
        let labels = Labels::from_options(&[Some(0), Some(0), None]);
        let z = embed(&el, &labels);
        // Vertex 2 is unlabeled: edges touching it only push mass *toward* 2.
        // Class 0 has two members (vertices 0, 1) → coeff 0.5 each, so
        // edge (0,2) adds 0.5 to Z(2,0) and edge (2,1) adds another 0.5.
        assert_eq!(z.get(0, 0), 0.0); // Y(2) unknown → no update to Z(0,·)
        assert_eq!(z.get(2, 0), 1.0);
        assert_eq!(z.get(1, 0), 0.0);
    }

    #[test]
    fn self_loop_contributes_both_directions() {
        let el = EdgeList::new(1, vec![Edge::new(0, 0, 3.0)]).unwrap();
        let labels = Labels::from_full(&[0]);
        let z = embed(&el, &labels);
        // coeff = 1.0 (only member); both lines fire on the same entry.
        assert_eq!(z.get(0, 0), 6.0);
    }

    #[test]
    fn duplicate_edges_accumulate() {
        let el = EdgeList::new(2, vec![Edge::unit(0, 1), Edge::unit(0, 1)]).unwrap();
        let labels = Labels::from_full(&[0, 1]);
        let z = embed(&el, &labels);
        assert_eq!(z.get(0, 1), 2.0);
        assert_eq!(z.get(1, 0), 2.0);
    }

    #[test]
    fn total_mass_identity() {
        // Each edge contributes w·(coeff(u) + coeff(v)) in total.
        let el = gee_gen::erdos_renyi_gnm(50, 400, 3);
        let labels = Labels::from_options(&gee_gen::random_labels(
            50,
            gee_gen::LabelSpec {
                num_classes: 4,
                labeled_fraction: 0.5,
            },
            9,
        ));
        let p = crate::projection::Projection::build_serial(&labels);
        let expected: f64 = el
            .iter()
            .map(|(u, v, w)| w * (p.coeff(u) + p.coeff(v)))
            .sum();
        let z = embed(&el, &labels);
        assert!((z.total_mass() - expected).abs() < 1e-9);
    }

    #[test]
    fn no_labels_gives_zero_dim() {
        let el = EdgeList::new(2, vec![Edge::unit(0, 1)]).unwrap();
        let labels = Labels::from_options(&[None, None]);
        let z = embed(&el, &labels);
        assert_eq!(z.dim(), 0);
        assert_eq!(z.as_slice().len(), 0);
    }

    #[test]
    #[should_panic(expected = "labels must cover")]
    fn label_length_mismatch_panics() {
        let el = EdgeList::new(3, vec![Edge::unit(0, 1)]).unwrap();
        embed(&el, &Labels::from_full(&[0, 1]));
    }
}
