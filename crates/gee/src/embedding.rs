//! The embedding matrix `Z ∈ R^{n×K}`, row-major.

use gee_graph::VertexId;

/// Dense row-major `n × k` embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    n: usize,
    k: usize,
    data: Vec<f64>,
}

impl Embedding {
    /// Zero-filled embedding.
    pub fn zeros(n: usize, k: usize) -> Self {
        Embedding {
            n,
            k,
            data: vec![0.0; n * k],
        }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(n: usize, k: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * k, "buffer must be n×k");
        Embedding { n, k, data }
    }

    /// Number of embedded vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Embedding dimension `K`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.k
    }

    /// Row of vertex `v`.
    #[inline]
    pub fn row(&self, v: VertexId) -> &[f64] {
        let v = v as usize;
        &self.data[v * self.k..(v + 1) * self.k]
    }

    /// Mutable row of vertex `v`.
    #[inline]
    pub fn row_mut(&mut self, v: VertexId) -> &mut [f64] {
        let v = v as usize;
        &mut self.data[v * self.k..(v + 1) * self.k]
    }

    /// Entry `(v, c)`.
    #[inline]
    pub fn get(&self, v: VertexId, c: usize) -> f64 {
        self.data[v as usize * self.k + c]
    }

    /// Flat row-major view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Largest absolute entry-wise difference to another embedding.
    pub fn max_abs_diff(&self, other: &Embedding) -> f64 {
        assert_eq!(self.n, other.n, "vertex counts differ");
        assert_eq!(self.k, other.k, "dimensions differ");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Panic unless `other` matches entry-wise within `tol` *relative to
    /// the largest entry magnitude* (parallel GEE differs from serial only
    /// by FP-addition reordering, so tolerances are tiny but not zero).
    pub fn assert_close(&self, other: &Embedding, tol: f64) {
        let scale = self.data.iter().map(|a| a.abs()).fold(1.0f64, f64::max);
        let diff = self.max_abs_diff(other);
        assert!(
            diff <= tol * scale,
            "embeddings differ: max |Δ| = {diff:e} > {tol:e} × scale {scale:e}"
        );
    }

    /// L2-normalize every row in place (rows with zero norm are left as
    /// zeros). The GEE paper normalizes rows before clustering.
    pub fn normalize_rows(&mut self) {
        for v in 0..self.n {
            let row = &mut self.data[v * self.k..(v + 1) * self.k];
            let norm: f64 = row.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                for x in row {
                    *x /= norm;
                }
            }
        }
    }

    /// Sum of every entry — a cheap conservation check: each edge endpoint
    /// with a labeled opposite endpoint contributes exactly
    /// `w / |class|`, so the grand total equals
    /// `Σ_edges w·([Y(u) known]/|class(Y(u))| + [Y(v) known]/|class(Y(v))|)`.
    pub fn total_mass(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let e = Embedding::zeros(3, 2);
        assert_eq!(e.num_vertices(), 3);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.as_slice().len(), 6);
    }

    #[test]
    fn row_access() {
        let mut e = Embedding::zeros(2, 3);
        e.row_mut(1)[2] = 5.0;
        assert_eq!(e.get(1, 2), 5.0);
        assert_eq!(e.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(e.row(0), &[0.0; 3]);
    }

    #[test]
    fn max_abs_diff_and_close() {
        let a = Embedding::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Embedding::from_vec(1, 2, vec![1.0, 2.0 + 1e-12]);
        assert!(a.max_abs_diff(&b) < 1e-11);
        a.assert_close(&b, 1e-9);
    }

    #[test]
    #[should_panic(expected = "embeddings differ")]
    fn assert_close_panics_on_gap() {
        let a = Embedding::from_vec(1, 1, vec![1.0]);
        let b = Embedding::from_vec(1, 1, vec![2.0]);
        a.assert_close(&b, 1e-9);
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let mut e = Embedding::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        e.normalize_rows();
        assert!((e.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((e.get(0, 1) - 0.8).abs() < 1e-12);
        assert_eq!(e.row(1), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    fn total_mass_sums() {
        let e = Embedding::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.total_mass(), 10.0);
    }

    #[test]
    #[should_panic(expected = "n×k")]
    fn from_vec_validates_len() {
        Embedding::from_vec(2, 2, vec![0.0; 3]);
    }
}
