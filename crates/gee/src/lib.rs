//! One-Hot Graph Encoder Embedding (GEE) — serial reference, optimized
//! serial, and the edge-parallel Ligra formulation of the paper.
//!
//! GEE (Shen, Wang & Priebe, TPAMI 2023) embeds an `n`-vertex graph with
//! edge list `E ∈ R^{s×3}` and partial class labels `Y ∈ {unknown, 0..K}`
//! into `Z ∈ R^{n×K}` with a *single pass over the edges*:
//!
//! 1. Build the projection matrix `W` where `W(v, Y(v)) = 1 / |class(Y(v))|`
//!    for labeled `v` (zero elsewhere) — O(nK) as a dense matrix, O(n) in
//!    the sparse form every real implementation uses.
//! 2. For each edge `(u, v, w)`:
//!    `Z(u, Y(v)) += W(v, Y(v))·w` and `Z(v, Y(u)) += W(u, Y(u))·w`.
//!
//! The paper ("Edge-Parallel Graph Encoder Embedding", IPDPS 2024)
//! contributes the parallel formulation: map `updateEmb` over all edges
//! with a full frontier and protect the `Z` accumulations with lock-free
//! atomic `writeAdd`. This crate provides four implementations whose
//! outputs agree (bit-exactly for the serial pair; up to FP-addition
//! reordering for the parallel ones):
//!
//! | paper name      | function                          |
//! |-----------------|-----------------------------------|
//! | GEE (Python)    | [`serial_reference::embed`] — plus the `gee-interp` boxed-value executor as the cost model |
//! | Numba serial    | [`serial_optimized::embed`]       |
//! | GEE-Ligra serial| [`ligra::embed`] on 1 thread      |
//! | GEE-Ligra par.  | [`ligra::embed`] on N threads     |
//!
//! Extensions beyond the paper's evaluation, from the GEE literature it
//! builds on: the Laplacian variant ([`laplacian`]), unsupervised /
//! iterative GEE clustering ([`unsupervised`]), a bit-reproducible
//! parallel kernel ([`deterministic`]), and incremental maintenance under
//! edge/label updates ([`dynamic`]).

pub mod batch;
pub mod deterministic;
pub mod diagnostics;
pub mod dynamic;
pub mod embedding;
pub mod kernels;
pub mod labels;
pub mod laplacian;
pub mod ligra;
pub mod projection;
pub mod serial_optimized;
pub mod serial_reference;
pub mod streaming;
pub mod unsupervised;

pub use dynamic::{DynamicGee, DynamicGeeState};
pub use embedding::Embedding;
pub use gee_ligra::AtomicsMode;
pub use labels::Labels;
pub use projection::Projection;

use gee_graph::{CsrGraph, EdgeList};

/// Which GEE implementation to run — the four columns of the paper's
/// Table I (the interpreted "GEE-Python" cost model lives in `gee-interp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implementation {
    /// Algorithm 1 verbatim with a dense `n×K` projection matrix.
    Reference,
    /// Flat-array serial ("Numba analog").
    Optimized,
    /// Edge-map formulation on 1 thread ("GEE-Ligra serial").
    LigraSerial,
    /// Edge-map formulation on all (or `threads`) threads.
    LigraParallel,
}

/// Options shared by all implementations.
#[derive(Debug, Clone, Copy)]
pub struct GeeOptions {
    /// Graph variant: raw adjacency (paper default) or Laplacian-normalized.
    pub variant: Variant,
    /// Synchronization mode for the parallel implementation (the paper's
    /// atomics on/off ablation).
    pub atomics: AtomicsMode,
    /// Thread count for `LigraParallel` (0 = rayon default). Ignored by the
    /// serial implementations.
    pub threads: usize,
}

impl Default for GeeOptions {
    fn default() -> Self {
        GeeOptions {
            variant: Variant::Adjacency,
            atomics: AtomicsMode::Atomic,
            threads: 0,
        }
    }
}

/// Adjacency vs Laplacian preprocessing (§II: "our description does not
/// include the preprocessing steps needed to compute the Laplacian version
/// of the algorithm" — we do include them, see [`laplacian`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// Use edge weights as given.
    #[default]
    Adjacency,
    /// Rescale each edge `(u,v,w)` to `w / sqrt(deg(u)·deg(v))` first.
    Laplacian,
}

/// Embed an edge list with the selected implementation. Dispatcher used by
/// examples and the bench harness; performance-sensitive callers can call
/// the per-implementation `embed` functions directly.
pub fn embed(el: &EdgeList, labels: &Labels, imp: Implementation, opts: GeeOptions) -> Embedding {
    let prepared;
    let input = match opts.variant {
        Variant::Adjacency => el,
        Variant::Laplacian => {
            prepared = laplacian::normalize(el);
            &prepared
        }
    };
    match imp {
        Implementation::Reference => serial_reference::embed(input, labels),
        Implementation::Optimized => serial_optimized::embed(input, labels),
        Implementation::LigraSerial => {
            let g = CsrGraph::from_edge_list(input);
            gee_ligra::with_threads(1, || ligra::embed(&g, labels, opts.atomics))
        }
        Implementation::LigraParallel => {
            let g = CsrGraph::from_edge_list(input);
            gee_ligra::with_threads(opts.threads, || ligra::embed(&g, labels, opts.atomics))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_gen::LabelSpec;

    #[test]
    fn all_implementations_agree() {
        let el = gee_gen::erdos_renyi_gnm(300, 3000, 42);
        let labels = Labels::from_options(&gee_gen::random_labels(
            300,
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.3,
            },
            7,
        ));
        let opts = GeeOptions::default();
        let a = embed(&el, &labels, Implementation::Reference, opts);
        let b = embed(&el, &labels, Implementation::Optimized, opts);
        let c = embed(&el, &labels, Implementation::LigraSerial, opts);
        let d = embed(&el, &labels, Implementation::LigraParallel, opts);
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "reference vs optimized must be bit-identical"
        );
        a.assert_close(&c, 1e-9);
        a.assert_close(&d, 1e-9);
    }

    #[test]
    fn laplacian_variant_dispatches() {
        let el = gee_gen::erdos_renyi_gnm(100, 800, 3);
        let labels = Labels::from_options(&gee_gen::full_labels(100, 4, 5));
        let opts = GeeOptions {
            variant: Variant::Laplacian,
            ..Default::default()
        };
        let a = embed(&el, &labels, Implementation::Reference, opts);
        let b = embed(&el, &labels, Implementation::LigraParallel, opts);
        a.assert_close(&b, 1e-9);
        // Laplacian output differs from adjacency output.
        let adj = embed(
            &el,
            &labels,
            Implementation::Reference,
            GeeOptions::default(),
        );
        assert_ne!(a.as_slice(), adj.as_slice());
    }
}
