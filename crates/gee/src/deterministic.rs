//! Deterministic parallel GEE — bit-identical to the serial reference at
//! every thread count.
//!
//! The paper's `writeAdd` kernel is *numerically* non-deterministic: the
//! schedule decides the order in which contributions reach each `Z`
//! entry, and floating-point addition does not commute with reassociation.
//! That is fine for the paper's statistics (the perturbation is ~1 ulp per
//! conflict) but rules out bit-exact reproducibility, which HPC users
//! often need for regression testing and debugging.
//!
//! This kernel restores determinism with **sort-and-segmented-reduce**:
//!
//! 1. Expand each edge into its (up to two) contributions, keyed by
//!    `(flat Z index, contribution sequence number)`. The sequence number
//!    is the edge's position in the input, so the key order reproduces
//!    the serial loop's addition order per entry.
//! 2. Parallel stable sort by key (rayon's merge sort — deterministic
//!    output independent of the worker count).
//! 3. One task per `Z` row sums its contiguous contribution segment in
//!    key order — exactly the additions the serial loop performs for that
//!    entry, in the same order, so the result is bit-identical.
//!
//! The cost is materializing the contribution array (≈ 24 B per edge
//! endpoint) and an O(s log s) sort versus the atomic kernel's O(s)
//! streaming pass — the price of reproducibility, measured by the
//! `ablation-determinism` bench.

use gee_graph::Edge;
use rayon::prelude::*;

use crate::embedding::Embedding;
use crate::labels::Labels;
use crate::projection::Projection;

/// One expanded edge contribution: `z[flat] += val`, ordered by `seq`.
#[derive(Debug, Clone, Copy)]
struct Contribution {
    /// Flat row-major index into `Z`.
    flat: u64,
    /// Global order of this addition in the serial loop (`2·edge + side`).
    seq: u64,
    val: f64,
}

/// Deterministic parallel GEE over an edge list. Output is bit-identical
/// to [`crate::serial_reference::embed`] regardless of the rayon pool
/// size.
pub fn embed(num_vertices: usize, edges: &[Edge], labels: &Labels) -> Embedding {
    assert_eq!(num_vertices, labels.len(), "labels must cover every vertex");
    let n = num_vertices;
    let k = labels.num_classes();
    let proj = Projection::build_parallel(labels);
    let coeff = proj.as_slice();
    let y = labels.raw_slice();

    // Step 1: expand contributions. rayon's collect preserves the logical
    // (edge) order, so `seq` assignment needs no synchronization.
    let mut contribs: Vec<Contribution> = edges
        .par_iter()
        .enumerate()
        .flat_map_iter(|(i, e)| {
            let (u, v, w) = (e.u as usize, e.v as usize, e.w);
            let a = (y[v] >= 0).then(|| Contribution {
                flat: (u * k + y[v] as usize) as u64,
                seq: 2 * i as u64,
                val: coeff[v] * w,
            });
            let b = (y[u] >= 0).then(|| Contribution {
                flat: (v * k + y[u] as usize) as u64,
                seq: 2 * i as u64 + 1,
                val: coeff[u] * w,
            });
            a.into_iter().chain(b)
        })
        .collect();

    // Step 2: deterministic parallel sort; the key is unique per
    // contribution, so unstable sorting would also be deterministic, but
    // the stable merge sort has reliably deterministic splits.
    contribs.par_sort_by_key(|c| (c.flat, c.seq));

    // Step 3: per-row segmented reduction in key (= serial) order.
    let mut z = vec![0.0f64; n * k];
    z.par_chunks_mut(k.max(1)).enumerate().for_each(|(v, row)| {
        let base = (v * k) as u64;
        let lo = contribs.partition_point(|c| c.flat < base);
        let hi = contribs.partition_point(|c| c.flat < base + k as u64);
        for c in &contribs[lo..hi] {
            row[(c.flat - base) as usize] += c.val;
        }
    });
    Embedding::from_vec(n, k, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial_reference;
    use gee_gen::LabelSpec;
    use gee_graph::EdgeList;
    use proptest::prelude::*;

    fn setup(n: usize, m: usize, seed: u64, frac: f64) -> (EdgeList, Labels) {
        let el = gee_gen::erdos_renyi_gnm(n, m, seed);
        let labels = Labels::from_options(&gee_gen::random_labels(
            n,
            LabelSpec {
                num_classes: 6,
                labeled_fraction: frac,
            },
            seed ^ 0xBEEF,
        ));
        (el, labels)
    }

    #[test]
    fn bit_identical_to_reference() {
        let (el, labels) = setup(400, 4000, 9, 0.3);
        let a = serial_reference::embed(&el, &labels);
        let b = embed(el.num_vertices(), el.edges(), &labels);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let (el, labels) = setup(300, 3000, 21, 0.5);
        let reference = serial_reference::embed(&el, &labels);
        for threads in [1, 2, 4, 7] {
            let z =
                gee_ligra::with_threads(threads, || embed(el.num_vertices(), el.edges(), &labels));
            assert_eq!(
                reference.as_slice(),
                z.as_slice(),
                "bit mismatch at {threads} threads"
            );
        }
    }

    #[test]
    fn weighted_self_loops_and_duplicates() {
        use gee_graph::Edge;
        // Self-loop with labeled endpoint exercises the duplicate-key path
        // (both contributions of one edge hit the same Z entry).
        let el = EdgeList::new(
            3,
            vec![
                Edge::new(0, 0, 2.5),
                Edge::new(0, 1, 1.0),
                Edge::new(0, 1, 3.0),
                Edge::new(2, 0, 0.125),
            ],
        )
        .unwrap();
        let labels = Labels::from_options(&[Some(0), Some(0), Some(1)]);
        let a = serial_reference::embed(&el, &labels);
        let b = embed(3, el.edges(), &labels);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn unlabeled_graph_is_zero() {
        let el = gee_gen::erdos_renyi_gnm(50, 300, 2);
        let labels = Labels::from_options(&vec![None; 50]);
        let z = embed(50, el.edges(), &labels);
        assert!(z.as_slice().is_empty()); // K = 0 → 0-dim embedding
    }

    #[test]
    fn empty_edge_list() {
        let labels = Labels::from_options(&[Some(0), Some(1)]);
        let z = embed(2, &[], &labels);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(z.dim(), 2);
    }

    proptest! {
        /// Property: the deterministic kernel is bit-identical to the
        /// serial reference for arbitrary graphs and labelings.
        #[test]
        fn prop_bit_identical(
            n in 2usize..50,
            seed in 0u64..500,
            frac in 0.0f64..1.0,
        ) {
            let (el, labels) = setup(n, n * 5, seed, frac);
            let a = serial_reference::embed(&el, &labels);
            let b = embed(el.num_vertices(), el.edges(), &labels);
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }
}
