//! Unsupervised / iterative GEE ("GEE clustering" from the original GEE
//! paper, the "derived from unsupervised clustering" label source §II of
//! the parallel paper mentions).
//!
//! Loop: labels → embed → k-means on Z → new labels, until the labeling
//! stabilizes (ARI between consecutive labelings ≈ 1) or `max_rounds` is
//! hit. Each round is one parallel GEE pass plus one k-means, so the whole
//! procedure stays O(rounds · (s + nK)).

use gee_eval::kmeans::{kmeans, KMeansOptions};
use gee_eval::metrics::adjusted_rand_index;
use gee_graph::CsrGraph;
use gee_ligra::AtomicsMode;

use crate::embedding::Embedding;
use crate::labels::Labels;
use crate::ligra;

/// Options for [`cluster`].
#[derive(Debug, Clone, Copy)]
pub struct UnsupervisedOptions {
    /// Number of clusters / embedding dimension K.
    pub k: usize,
    /// Maximum refinement rounds.
    pub max_rounds: usize,
    /// Stop when consecutive labelings have ARI at least this.
    pub convergence_ari: f64,
    /// RNG seed (initial labeling and k-means).
    pub seed: u64,
}

impl UnsupervisedOptions {
    /// Defaults: 20 rounds max, ARI ≥ 0.999 convergence.
    pub fn new(k: usize, seed: u64) -> Self {
        UnsupervisedOptions {
            k,
            max_rounds: 20,
            convergence_ari: 0.999,
            seed,
        }
    }
}

/// Result of unsupervised GEE.
#[derive(Debug, Clone)]
pub struct UnsupervisedResult {
    /// Final cluster assignment per vertex.
    pub assignment: Vec<u32>,
    /// Final embedding.
    pub embedding: Embedding,
    /// Rounds executed.
    pub rounds: usize,
    /// ARI between the last two labelings (1.0 = fully converged).
    pub final_ari: f64,
}

/// Iterative GEE clustering on a CSR graph.
pub fn cluster(g: &CsrGraph, opts: UnsupervisedOptions) -> UnsupervisedResult {
    let n = g.num_vertices();
    assert!(opts.k >= 1, "k must be at least 1");
    assert!(n >= opts.k, "need at least k vertices");
    // Round 0: uniform random full labeling.
    let mut current: Vec<u32> = { gee_gen_free_random(n, opts.k, opts.seed) };
    let mut rounds = 0;
    let mut final_ari = 0.0;
    let mut embedding = Embedding::zeros(n, opts.k);
    for r in 0..opts.max_rounds {
        rounds = r + 1;
        let labels = Labels::from_options_with_k(
            &current.iter().map(|&c| Some(c)).collect::<Vec<_>>(),
            opts.k,
        );
        embedding = ligra::embed(g, &labels, AtomicsMode::Atomic);
        let mut z = embedding.clone();
        z.normalize_rows();
        let km = kmeans(
            z.as_slice(),
            n,
            opts.k,
            KMeansOptions::new(opts.k, opts.seed ^ r as u64),
        );
        final_ari = adjusted_rand_index(&current, &km.assignment);
        current = km.assignment;
        if final_ari >= opts.convergence_ari {
            break;
        }
    }
    UnsupervisedResult {
        assignment: current,
        embedding,
        rounds,
        final_ari,
    }
}

/// Deterministic uniform labels without depending on gee-gen (which would
/// create a dev-dependency cycle): SplitMix64 per vertex.
fn gee_gen_free_random(n: usize, k: usize, seed: u64) -> Vec<u32> {
    (0..n as u64)
        .map(|v| {
            let mut x = seed.wrapping_add(v).wrapping_add(0x9E3779B97F4A7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            ((x ^ (x >> 31)) % k as u64) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gee_eval::metrics::adjusted_rand_index;

    #[test]
    fn recovers_planted_partition() {
        let g = gee_gen::sbm(&gee_gen::SbmParams::balanced(3, 60, 0.4, 0.01), 5);
        let csr = CsrGraph::from_edge_list(&g.edges);
        let r = cluster(&csr, UnsupervisedOptions::new(3, 17));
        let ari = adjusted_rand_index(&r.assignment, &g.truth);
        assert!(ari > 0.9, "expected near-perfect recovery, ARI = {ari}");
    }

    #[test]
    fn converges_and_reports_rounds() {
        let g = gee_gen::sbm(&gee_gen::SbmParams::balanced(2, 50, 0.5, 0.02), 3);
        let csr = CsrGraph::from_edge_list(&g.edges);
        let r = cluster(&csr, UnsupervisedOptions::new(2, 7));
        assert!(r.rounds <= 20);
        assert!(r.final_ari > 0.9, "final ARI {}", r.final_ari);
        assert_eq!(r.assignment.len(), 100);
        assert_eq!(r.embedding.num_vertices(), 100);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = gee_gen::sbm(&gee_gen::SbmParams::balanced(2, 30, 0.5, 0.05), 9);
        let csr = CsrGraph::from_edge_list(&g.edges);
        let a = cluster(&csr, UnsupervisedOptions::new(2, 4));
        let b = cluster(&csr, UnsupervisedOptions::new(2, 4));
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    #[should_panic(expected = "at least k vertices")]
    fn rejects_k_above_n() {
        let csr = CsrGraph::build(2, &[], false);
        cluster(&csr, UnsupervisedOptions::new(5, 1));
    }
}
