//! Class labels `Y ∈ {unknown, 0, …, K-1}` for semi-supervised GEE.
//!
//! Algorithm 1 encodes "class unknown" as `k = 0` and classes as `1..=K`;
//! we use the equivalent but less error-prone encoding `Option<u32>` at the
//! API boundary and `-1` internally (a dense `i32` vector keeps the hot
//! loop branch-free: `y[v] < 0` is the unknown test).

use gee_graph::VertexId;

/// Per-vertex class labels with precomputed class sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Labels {
    /// `-1` = unknown, otherwise the class in `0..k`.
    y: Vec<i32>,
    /// Number of classes `K`.
    k: usize,
    /// Labeled-vertex count per class.
    counts: Vec<u64>,
}

impl Labels {
    /// Build from optional labels; `K` is inferred as `1 + max label`
    /// (zero classes if nothing is labeled).
    pub fn from_options(y: &[Option<u32>]) -> Self {
        let k = y.iter().flatten().max().map_or(0, |&m| m as usize + 1);
        Self::from_options_with_k(y, k)
    }

    /// Build with an explicit class count (labels must be `< k`).
    pub fn from_options_with_k(y: &[Option<u32>], k: usize) -> Self {
        let mut counts = vec![0u64; k];
        let y: Vec<i32> = y
            .iter()
            .map(|l| match l {
                None => -1,
                Some(c) => {
                    assert!((*c as usize) < k, "label {c} out of range for K={k}");
                    counts[*c as usize] += 1;
                    *c as i32
                }
            })
            .collect();
        Labels { y, k, counts }
    }

    /// Build from a fully-labeled vector.
    pub fn from_full(y: &[u32]) -> Self {
        let opts: Vec<Option<u32>> = y.iter().map(|&c| Some(c)).collect();
        Self::from_options(&opts)
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when no vertices are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of classes `K` (the embedding dimension).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Label of `v` (`None` = unknown).
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<u32> {
        let raw = self.y[v as usize];
        (raw >= 0).then_some(raw as u32)
    }

    /// Raw `-1`-encoded label — the hot-loop accessor.
    #[inline]
    pub fn raw(&self, v: VertexId) -> i32 {
        self.y[v as usize]
    }

    /// Raw label slice.
    #[inline]
    pub fn raw_slice(&self) -> &[i32] {
        &self.y
    }

    /// Labeled-vertex count of class `c`.
    #[inline]
    pub fn class_count(&self, c: u32) -> u64 {
        self.counts[c as usize]
    }

    /// All class counts.
    #[inline]
    pub fn class_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of labeled vertices.
    pub fn num_labeled(&self) -> usize {
        self.counts.iter().sum::<u64>() as usize
    }

    /// Iterate `(vertex, class)` over labeled vertices.
    pub fn iter_labeled(&self) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        self.y
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= 0)
            .map(|(v, &c)| (v as VertexId, c as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_k_from_max_label() {
        let l = Labels::from_options(&[Some(0), None, Some(3)]);
        assert_eq!(l.num_classes(), 4);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn counts_per_class() {
        let l = Labels::from_options(&[Some(1), Some(1), Some(0), None]);
        assert_eq!(l.class_count(0), 1);
        assert_eq!(l.class_count(1), 2);
        assert_eq!(l.num_labeled(), 3);
    }

    #[test]
    fn get_and_raw_agree() {
        let l = Labels::from_options(&[Some(2), None]);
        assert_eq!(l.get(0), Some(2));
        assert_eq!(l.get(1), None);
        assert_eq!(l.raw(0), 2);
        assert_eq!(l.raw(1), -1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_k_validates() {
        Labels::from_options_with_k(&[Some(5)], 3);
    }

    #[test]
    fn from_full_covers_everything() {
        let l = Labels::from_full(&[0, 1, 2, 1]);
        assert_eq!(l.num_labeled(), 4);
        assert_eq!(l.num_classes(), 3);
    }

    #[test]
    fn iter_labeled_skips_unknown() {
        let l = Labels::from_options(&[None, Some(0), None, Some(1)]);
        let pairs: Vec<_> = l.iter_labeled().collect();
        assert_eq!(pairs, vec![(1, 0), (3, 1)]);
    }

    #[test]
    fn empty_labels() {
        let l = Labels::from_options(&[]);
        assert!(l.is_empty());
        assert_eq!(l.num_classes(), 0);
    }

    #[test]
    fn all_unknown() {
        let l = Labels::from_options(&[None, None]);
        assert_eq!(l.num_classes(), 0);
        assert_eq!(l.num_labeled(), 0);
    }
}
