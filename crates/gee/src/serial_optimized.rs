//! Optimized serial GEE — the "Numba analog".
//!
//! The paper's Numba baseline JIT-compiles the Python loop into machine
//! code over flat NumPy buffers. The equivalent Rust program is this: the
//! sparse projection (one f64 per vertex instead of the dense `n×K`
//! matrix), raw `i32` labels, a single tight loop over the edge array, and
//! no allocation inside the loop. Bit-identical to the reference
//! implementation (same operations in the same order).

use gee_graph::EdgeList;

use crate::embedding::Embedding;
use crate::labels::Labels;
use crate::projection::Projection;

/// Optimized serial GEE over an edge list.
pub fn embed(el: &EdgeList, labels: &Labels) -> Embedding {
    assert_eq!(
        el.num_vertices(),
        labels.len(),
        "labels must cover every vertex"
    );
    let n = el.num_vertices();
    let k = labels.num_classes();
    let proj = Projection::build_serial(labels);
    let coeff = proj.as_slice();
    let y = labels.raw_slice();
    let mut z = vec![0.0f64; n * k];
    for e in el.edges() {
        let (u, v, wt) = (e.u as usize, e.v as usize, e.w);
        let yv = y[v];
        if yv >= 0 {
            z[u * k + yv as usize] += coeff[v] * wt;
        }
        let yu = y[u];
        if yu >= 0 {
            z[v * k + yu as usize] += coeff[u] * wt;
        }
    }
    Embedding::from_vec(n, k, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial_reference;
    use gee_gen::LabelSpec;
    use proptest::prelude::*;

    #[test]
    fn bit_identical_to_reference_random() {
        let el = gee_gen::erdos_renyi_gnm(200, 2000, 5);
        let labels = Labels::from_options(&gee_gen::random_labels(
            200,
            LabelSpec {
                num_classes: 6,
                labeled_fraction: 0.25,
            },
            3,
        ));
        let a = serial_reference::embed(&el, &labels);
        let b = embed(&el, &labels);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn bit_identical_on_weighted_graph() {
        use gee_graph::Edge;
        let edges: Vec<Edge> = (0..500u32)
            .map(|i| Edge::new(i % 40, (i * 7 + 3) % 40, (i as f64 * 0.37).sin() + 2.0))
            .collect();
        let el = EdgeList::new(40, edges).unwrap();
        let labels = Labels::from_options(&gee_gen::full_labels(40, 5, 7));
        let a = serial_reference::embed(&el, &labels);
        let b = embed(&el, &labels);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    proptest! {
        /// Property: for any random graph + labeling, optimized == reference
        /// bit-for-bit.
        #[test]
        fn prop_matches_reference(
            n in 2usize..40,
            edge_seed in 0u64..1000,
            label_seed in 0u64..1000,
            k in 1usize..6,
            frac in 0.0f64..1.0,
        ) {
            let m = n * 4;
            let el = gee_gen::erdos_renyi_gnm(n, m, edge_seed);
            let labels = Labels::from_options(&gee_gen::random_labels(
                n,
                LabelSpec { num_classes: k, labeled_fraction: frac },
                label_seed,
            ));
            let a = serial_reference::embed(&el, &labels);
            let b = embed(&el, &labels);
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }

        /// Property: unlabeled graphs always produce the zero embedding.
        #[test]
        fn prop_unlabeled_is_zero(n in 2usize..30, seed in 0u64..100) {
            let el = gee_gen::erdos_renyi_gnm(n, n * 3, seed);
            let labels = Labels::from_options(&vec![None; n]);
            let z = embed(&el, &labels);
            prop_assert!(z.as_slice().iter().all(|&x| x == 0.0));
        }

        /// Property: scaling all weights by c scales the embedding by c.
        #[test]
        fn prop_linear_in_weights(seed in 0u64..100, c in 1.0f64..16.0) {
            use gee_graph::Edge;
            let el = gee_gen::erdos_renyi_gnm(20, 100, seed);
            let labels = Labels::from_options(&gee_gen::full_labels(20, 3, seed));
            let scaled = EdgeList::new_unchecked(
                20,
                el.edges().iter().map(|e| Edge::new(e.u, e.v, e.w * c)).collect(),
            );
            let z1 = embed(&el, &labels);
            let z2 = embed(&scaled, &labels);
            for (a, b) in z1.as_slice().iter().zip(z2.as_slice()) {
                prop_assert!((a * c - b).abs() < 1e-9 * c.max(1.0));
            }
        }
    }
}
