//! Out-of-core GEE: embed from a bounded-memory edge stream.
//!
//! §I of the paper: "The remaining gap this paper addresses is parallelism
//! and **memory efficiency**." GEE is a single pass over the edges, so the
//! edge list never needs to be resident: this module embeds directly from
//! a [`gee_graph::io::edge_stream`] reader, holding only `Z` (`n×K`), the
//! sparse projection (`n`), and one edge chunk in memory. Each chunk is
//! processed either serially (bit-identical to `serial_optimized`) or with
//! the same atomic edge-parallel kernel as GEE-Ligra.

use std::io::Read;

use gee_graph::io::edge_stream::EdgeStreamReader;
use gee_graph::Edge;
use gee_ligra::{AtomicF64Vec, AtomicsMode};
use rayon::prelude::*;

use crate::embedding::Embedding;
use crate::labels::Labels;
use crate::projection::Projection;

/// How each streamed chunk is processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkMode {
    /// Sequential per chunk; output bit-identical to the in-memory serial
    /// implementation.
    #[default]
    Serial,
    /// Edge-parallel per chunk with atomic `writeAdd` (same kernel as
    /// GEE-Ligra, scheduled over edges instead of source vertices).
    Parallel,
}

/// Embed from a streamed edge file with O(nK + chunk) memory.
pub fn embed_stream<R: Read>(
    reader: &mut EdgeStreamReader<R>,
    labels: &Labels,
    chunk_edges: usize,
    mode: ChunkMode,
) -> gee_graph::Result<Embedding> {
    assert!(chunk_edges >= 1, "chunk size must be positive");
    assert_eq!(
        reader.num_vertices(),
        labels.len(),
        "labels must cover every vertex"
    );
    let n = reader.num_vertices();
    let k = labels.num_classes();
    let proj = Projection::build_parallel(labels);
    let coeff = proj.as_slice();
    let y = labels.raw_slice();
    let mut buf: Vec<Edge> = Vec::with_capacity(chunk_edges);
    match mode {
        ChunkMode::Serial => {
            let mut z = vec![0.0f64; n * k];
            loop {
                let got = reader.read_chunk(&mut buf, chunk_edges)?;
                if got == 0 {
                    break;
                }
                for e in &buf {
                    let (u, v, wt) = (e.u as usize, e.v as usize, e.w);
                    let yv = y[v];
                    if yv >= 0 {
                        z[u * k + yv as usize] += coeff[v] * wt;
                    }
                    let yu = y[u];
                    if yu >= 0 {
                        z[v * k + yu as usize] += coeff[u] * wt;
                    }
                }
            }
            Ok(Embedding::from_vec(n, k, z))
        }
        ChunkMode::Parallel => {
            let z = AtomicF64Vec::zeros(n * k);
            loop {
                let got = reader.read_chunk(&mut buf, chunk_edges)?;
                if got == 0 {
                    break;
                }
                buf.par_iter().for_each(|e| {
                    let (u, v, wt) = (e.u as usize, e.v as usize, e.w);
                    let yv = y[v];
                    if yv >= 0 {
                        z.add(AtomicsMode::Atomic, u * k + yv as usize, coeff[v] * wt);
                    }
                    let yu = y[u];
                    if yu >= 0 {
                        z.add(AtomicsMode::Atomic, v * k + yu as usize, coeff[u] * wt);
                    }
                });
            }
            Ok(Embedding::from_vec(n, k, z.into_vec()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial_optimized;
    use gee_gen::LabelSpec;
    use gee_graph::io::edge_stream;
    use gee_graph::EdgeList;

    fn setup(n: usize, m: usize, seed: u64) -> (EdgeList, Labels, Vec<u8>) {
        let el = gee_gen::erdos_renyi_gnm(n, m, seed);
        let labels = Labels::from_options(&gee_gen::random_labels(
            n,
            LabelSpec {
                num_classes: 6,
                labeled_fraction: 0.3,
            },
            seed ^ 0xFACE,
        ));
        let mut bytes = Vec::new();
        edge_stream::write(&mut bytes, &el).unwrap();
        (el, labels, bytes)
    }

    #[test]
    fn serial_stream_bit_identical_to_in_memory() {
        let (el, labels, bytes) = setup(300, 4000, 3);
        let expected = serial_optimized::embed(&el, &labels);
        for chunk in [1usize, 7, 100, 4000, 10_000] {
            let mut r = EdgeStreamReader::new(bytes.as_slice()).unwrap();
            let z = embed_stream(&mut r, &labels, chunk, ChunkMode::Serial).unwrap();
            assert_eq!(z.as_slice(), expected.as_slice(), "chunk size {chunk}");
        }
    }

    #[test]
    fn parallel_stream_matches_within_tolerance() {
        let (el, labels, bytes) = setup(500, 10_000, 9);
        let expected = serial_optimized::embed(&el, &labels);
        let mut r = EdgeStreamReader::new(bytes.as_slice()).unwrap();
        let z = embed_stream(&mut r, &labels, 1 << 12, ChunkMode::Parallel).unwrap();
        expected.assert_close(&z, 1e-9);
    }

    #[test]
    fn empty_stream_gives_zero_embedding() {
        let el = EdgeList::new(4, vec![]).unwrap();
        let labels = Labels::from_full(&[0, 1, 0, 1]);
        let mut bytes = Vec::new();
        edge_stream::write(&mut bytes, &el).unwrap();
        let mut r = EdgeStreamReader::new(bytes.as_slice()).unwrap();
        let z = embed_stream(&mut r, &labels, 16, ChunkMode::Serial).unwrap();
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn io_error_propagates() {
        let (_, labels, mut bytes) = setup(100, 1000, 5);
        bytes.truncate(bytes.len() / 2);
        let mut r = EdgeStreamReader::new(bytes.as_slice()).unwrap();
        assert!(embed_stream(&mut r, &labels, 1 << 8, ChunkMode::Serial).is_err());
    }
}
