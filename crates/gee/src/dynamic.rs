//! Incremental (dynamic) GEE — maintain an embedding under edge
//! insertions, edge deletions, and label changes without re-running the
//! O(s) edge pass.
//!
//! GEE is a *linear* sketch of the edge list, which makes it naturally
//! incremental: `Z(u, c) = Σ_{(u,v,w) ∈ E, Y(v)=c} w / |class c|` (plus
//! the symmetric term). We maintain the **unnormalized** accumulator
//! `Ẑ(u, c) = Σ w` (coefficient 1 instead of `1/|class c|`); because the
//! projection coefficient of a contribution depends only on the *column*
//! class `c`, the normalized embedding is recovered by dividing each
//! column by its current class count:
//!
//! `Z(u, c) = Ẑ(u, c) / count(c)`.
//!
//! Under this split the update costs are:
//!
//! * edge insert / delete — O(1): two `Ẑ` updates.
//! * label change of vertex `x` — O(deg(x)): move the `Ẑ` mass of `x`'s
//!   incident edges between the old and new columns (plus an O(1) count
//!   update that implicitly rescales both columns everywhere).
//!
//! A full recompute after `q` updates costs O(s + nK); the delta path
//! costs O(q) for edge updates — the crossover is measured by the
//! `ablation-dynamic` bench. Every mutator is validated against a fresh
//! static recompute in the tests.

use gee_graph::{EdgeList, VertexId, Weight};

use crate::embedding::Embedding;
use crate::labels::Labels;

/// The complete internal state of a [`DynamicGee`] — every field that
/// determines its future behavior, exposed so a checkpoint can persist
/// the writer *bit-exactly* and restore it with
/// [`DynamicGee::from_state`].
///
/// Bit-exactness matters: the accumulator `Ẑ` is a floating-point sum
/// whose value depends on the order contributions arrived, and the
/// adjacency mirror's entry order determines which duplicate edge a
/// future `remove_edge` takes and the order `set_label` walks incident
/// edges. Persisting the raw fields (f64 bit patterns, adjacency order
/// intact) is therefore the only representation from which a restarted
/// writer behaves identically to one that never stopped — re-deriving
/// the state from an edge list would change summation order.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicGeeState {
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Class universe size `K`.
    pub num_classes: usize,
    /// Unnormalized accumulator `Ẑ`, row-major `n × K`.
    pub zhat: Vec<f64>,
    /// Label per vertex (`-1` = unlabeled), length `n`.
    pub labels: Vec<i32>,
    /// Labeled-vertex count per class, length `K`.
    pub class_counts: Vec<u64>,
    /// Incident-edge mirror in insertion order, length `n`.
    pub adjacency: Vec<Vec<(VertexId, Weight)>>,
}

/// A GEE embedding maintained under streaming graph/label updates.
///
/// The class universe `K` is fixed at construction; labels move within
/// `0..K` (or to/from unlabeled).
#[derive(Debug, Clone)]
pub struct DynamicGee {
    n: usize,
    k: usize,
    /// Unnormalized accumulator `Ẑ`, row-major `n × k`.
    zhat: Vec<f64>,
    /// Current label per vertex (`-1` = unknown).
    y: Vec<i32>,
    /// Labeled-vertex count per class.
    counts: Vec<u64>,
    /// Incident-edge mirror: `adj[x]` holds `(opposite endpoint, w)` for
    /// every edge with `x` as source or destination (self-loops twice).
    /// Needed to relocate contributions when `x`'s label changes.
    adj: Vec<Vec<(VertexId, Weight)>>,
}

impl DynamicGee {
    /// Initialize from a static edge list and labeling (bulk pass, O(s)).
    pub fn new(el: &EdgeList, labels: &Labels) -> Self {
        assert_eq!(
            el.num_vertices(),
            labels.len(),
            "labels must cover every vertex"
        );
        let n = el.num_vertices();
        let k = labels.num_classes();
        let mut dg = DynamicGee {
            n,
            k,
            zhat: vec![0.0; n * k],
            y: labels.raw_slice().to_vec(),
            counts: labels.class_counts().to_vec(),
            adj: vec![Vec::new(); n],
        };
        for e in el.edges() {
            dg.apply_edge(e.u, e.v, e.w, 1.0);
            dg.adj[e.u as usize].push((e.v, e.w));
            dg.adj[e.v as usize].push((e.u, e.w));
        }
        dg
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Embedding dimension `K`.
    pub fn dim(&self) -> usize {
        self.k
    }

    /// Current label of `v`.
    pub fn label(&self, v: VertexId) -> Option<u32> {
        let raw = self.y[v as usize];
        (raw >= 0).then_some(raw as u32)
    }

    /// Current labeled count of class `c`.
    pub fn class_count(&self, c: u32) -> u64 {
        self.counts[c as usize]
    }

    /// Add the two Algorithm-1 contributions of edge `(u, v, w)` into `Ẑ`
    /// with sign `sgn` (+1 insert, −1 delete).
    fn apply_edge(&mut self, u: VertexId, v: VertexId, w: Weight, sgn: f64) {
        let (u, v) = (u as usize, v as usize);
        let yv = self.y[v];
        if yv >= 0 {
            self.zhat[u * self.k + yv as usize] += sgn * w;
        }
        let yu = self.y[u];
        if yu >= 0 {
            self.zhat[v * self.k + yu as usize] += sgn * w;
        }
    }

    /// Insert a directed edge `(u, v, w)` (undirected graphs insert both
    /// directions, matching §II's encoding).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "endpoint out of range"
        );
        self.apply_edge(u, v, w, 1.0);
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
    }

    /// Remove one occurrence of edge `(u, v, w)`. Returns `false` (and
    /// changes nothing) if no matching edge exists.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> bool {
        let pos = self.adj[u as usize]
            .iter()
            .position(|&(t, tw)| t == v && tw == w);
        let Some(i) = pos else { return false };
        self.adj[u as usize].swap_remove(i);
        // Remove the mirror entry (for a self-loop both entries live in
        // the same list; the first removal above took one of them).
        let j = self.adj[v as usize]
            .iter()
            .position(|&(t, tw)| t == u && tw == w)
            .expect("adjacency mirror out of sync");
        self.adj[v as usize].swap_remove(j);
        self.apply_edge(u, v, w, -1.0);
        true
    }

    /// Change the label of `x` (to `None` for unlabeled). O(deg(x)): the
    /// `Ẑ` mass of `x`'s incident edges moves from the old class column to
    /// the new one; class counts (and therefore the per-column scaling)
    /// update implicitly.
    pub fn set_label(&mut self, x: VertexId, label: Option<u32>) {
        let new = match label {
            Some(c) => {
                assert!(
                    (c as usize) < self.k,
                    "label {c} out of range for K={}",
                    self.k
                );
                c as i32
            }
            None => -1,
        };
        let old = self.y[x as usize];
        if old == new {
            return;
        }
        // Move the incident contribution mass between columns. Entry
        // `(t, w)` in adj[x] covers one Algorithm-1 contribution
        // `Z(t, Y(x)) += w`, whichever direction the edge had.
        let xi = x as usize;
        for i in 0..self.adj[xi].len() {
            let (t, w) = self.adj[xi][i];
            let t = t as usize;
            if old >= 0 {
                self.zhat[t * self.k + old as usize] -= w;
            }
            if new >= 0 {
                self.zhat[t * self.k + new as usize] += w;
            }
        }
        if old >= 0 {
            self.counts[old as usize] -= 1;
        }
        if new >= 0 {
            self.counts[new as usize] += 1;
        }
        self.y[xi] = new;
    }

    /// Current labels as a [`Labels`] value (rebuilt, O(n)).
    pub fn labels(&self) -> Labels {
        let opts: Vec<Option<u32>> = self
            .y
            .iter()
            .map(|&c| (c >= 0).then_some(c as u32))
            .collect();
        Labels::from_options_with_k(&opts, self.k)
    }

    /// Current edges as an [`EdgeList`]. The adjacency mirror does not
    /// record direction, so each edge is emitted from its lower endpoint —
    /// GEE's two per-edge contributions are symmetric in `(u, v)`, so the
    /// embedding of the reconstruction matches the original. O(s).
    pub fn edge_list(&self) -> EdgeList {
        use gee_graph::Edge;
        let mut edges = Vec::new();
        for (u, list) in self.adj.iter().enumerate() {
            // Each non-loop edge appears in both endpoint lists; emit it
            // from the lower endpoint only.
            for &(v, w) in list {
                if (u as VertexId) < v {
                    edges.push(Edge::new(u as VertexId, v, w));
                }
            }
            // Self-loops appear twice in their own list; emit one edge per
            // pair of entries.
            let selfs: Vec<Weight> = list
                .iter()
                .filter(|&&(t, _)| t as usize == u)
                .map(|&(_, w)| w)
                .collect();
            for pair in selfs.chunks(2) {
                edges.push(Edge::new(u as VertexId, u as VertexId, pair[0]));
            }
        }
        EdgeList::new_unchecked(self.n, edges)
    }

    /// Export the complete writer state for checkpointing. The returned
    /// [`DynamicGeeState`] round-trips through [`DynamicGee::from_state`]
    /// bit-exactly.
    pub fn export_state(&self) -> DynamicGeeState {
        DynamicGeeState {
            num_vertices: self.n,
            num_classes: self.k,
            zhat: self.zhat.clone(),
            labels: self.y.clone(),
            class_counts: self.counts.clone(),
            adjacency: self.adj.clone(),
        }
    }

    /// Rebuild a writer from an exported state, validating every
    /// structural invariant (shapes, label ranges, class-count histogram,
    /// adjacency-mirror symmetry) so a corrupted checkpoint yields a
    /// typed error instead of a writer that panics later.
    pub fn from_state(state: DynamicGeeState) -> Result<Self, String> {
        let DynamicGeeState {
            num_vertices: n,
            num_classes: k,
            zhat,
            labels: y,
            class_counts: counts,
            adjacency: adj,
        } = state;
        if zhat.len() != n.checked_mul(k).ok_or("n × K overflows")? {
            return Err(format!("zhat has {} entries, want {}", zhat.len(), n * k));
        }
        if y.len() != n {
            return Err(format!("labels cover {} of {n} vertices", y.len()));
        }
        if counts.len() != k {
            return Err(format!("{} class counts for K={k}", counts.len()));
        }
        if adj.len() != n {
            return Err(format!("adjacency covers {} of {n} vertices", adj.len()));
        }
        let mut histogram = vec![0u64; k];
        for (v, &label) in y.iter().enumerate() {
            if label >= 0 {
                *histogram
                    .get_mut(label as usize)
                    .ok_or_else(|| format!("vertex {v} labeled {label}, K={k}"))? += 1;
            } else if label != -1 {
                return Err(format!("vertex {v} has invalid raw label {label}"));
            }
        }
        if histogram != counts {
            return Err("class counts disagree with the label histogram".into());
        }
        // The mirror invariant: entry (v, w) in adj[u] pairs with entry
        // (u, w) in adj[v] (self-loops pair within their own list), which
        // is what remove_edge's two-sided removal relies on.
        let mut pair_balance: std::collections::HashMap<(u32, u32, u64), i64> =
            std::collections::HashMap::new();
        for (u, list) in adj.iter().enumerate() {
            let u = u as u32;
            for &(v, w) in list {
                if v as usize >= n {
                    return Err(format!("adjacency of {u} references vertex {v}, n={n}"));
                }
                if u == v {
                    *pair_balance.entry((u, u, w.to_bits())).or_default() += 1;
                } else {
                    let key = (u.min(v), u.max(v), w.to_bits());
                    *pair_balance.entry(key).or_default() += if u < v { 1 } else { -1 };
                }
            }
        }
        for ((u, v, _), balance) in &pair_balance {
            let ok = if u == v {
                balance % 2 == 0
            } else {
                *balance == 0
            };
            if !ok {
                return Err(format!("adjacency mirror out of sync on edge ({u}, {v})"));
            }
        }
        Ok(DynamicGee {
            n,
            k,
            zhat,
            y,
            counts,
            adj,
        })
    }

    /// Materialize the normalized embedding `Z(u,c) = Ẑ(u,c)/count(c)`
    /// (columns of empty classes are zero). O(nK).
    pub fn embedding(&self) -> Embedding {
        let data = self.embedding_rows(0, self.n);
        Embedding::from_vec(self.n, self.k, data)
    }

    /// Materialize only rows `lo..hi` of the normalized embedding as a
    /// row-major buffer of `(hi - lo) × K`. This is the shard-parallel
    /// building block: `gee-serve` publishes a snapshot by materializing
    /// each shard's vertex range on its own thread and concatenating.
    pub fn embedding_rows(&self, lo: usize, hi: usize) -> Vec<f64> {
        assert!(
            lo <= hi && hi <= self.n,
            "row range {lo}..{hi} out of bounds for n={}",
            self.n
        );
        let k = self.k;
        let inv: Vec<f64> = self
            .counts
            .iter()
            .map(|&c| if c > 0 { 1.0 / c as f64 } else { 0.0 })
            .collect();
        let mut out = Vec::with_capacity((hi - lo) * k);
        for v in lo..hi {
            let row = &self.zhat[v * k..(v + 1) * k];
            out.extend(row.iter().zip(&inv).map(|(&z, &s)| z * s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial_optimized;
    use gee_gen::LabelSpec;
    use gee_graph::Edge;

    /// Static recompute oracle for the dynamic state.
    fn oracle(dg: &DynamicGee) -> Embedding {
        serial_optimized::embed(&dg.edge_list(), &dg.labels())
    }

    fn assert_matches_oracle(dg: &DynamicGee, tol: f64) {
        let dynamic = dg.embedding();
        let fresh = oracle(dg);
        fresh.assert_close(&dynamic, tol);
    }

    fn setup(n: usize, m: usize, seed: u64) -> DynamicGee {
        let el = gee_gen::erdos_renyi_gnm(n, m, seed);
        let labels = Labels::from_options(&gee_gen::random_labels(
            n,
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.4,
            },
            seed ^ 0xAB,
        ));
        DynamicGee::new(&el, &labels)
    }

    #[test]
    fn initial_state_matches_static() {
        let el = gee_gen::erdos_renyi_gnm(100, 900, 3);
        let labels = Labels::from_options(&gee_gen::random_labels(
            100,
            LabelSpec {
                num_classes: 4,
                labeled_fraction: 0.5,
            },
            7,
        ));
        let dg = DynamicGee::new(&el, &labels);
        let statik = serial_optimized::embed(&el, &labels);
        statik.assert_close(&dg.embedding(), 1e-12);
    }

    #[test]
    fn insert_matches_recompute() {
        let mut dg = setup(60, 400, 11);
        dg.insert_edge(3, 17, 2.5);
        dg.insert_edge(17, 3, 1.0);
        dg.insert_edge(5, 5, 4.0); // self-loop
        assert_matches_oracle(&dg, 1e-12);
    }

    #[test]
    fn remove_matches_recompute() {
        let mut dg = setup(60, 400, 13);
        // Remove a known edge: insert one then remove it, and remove one
        // from the initial graph.
        dg.insert_edge(1, 2, 9.0);
        assert!(dg.remove_edge(1, 2, 9.0));
        let el = gee_gen::erdos_renyi_gnm(60, 400, 13);
        let e = el.edges()[0];
        assert!(dg.remove_edge(e.u, e.v, e.w));
        assert_matches_oracle(&dg, 1e-12);
    }

    #[test]
    fn remove_missing_edge_is_noop() {
        let mut dg = setup(20, 60, 17);
        let before = dg.embedding();
        assert!(!dg.remove_edge(0, 1, 123.456));
        assert_eq!(before.as_slice(), dg.embedding().as_slice());
    }

    #[test]
    fn self_loop_insert_remove_roundtrip() {
        let mut dg = setup(20, 60, 19);
        let before = dg.embedding();
        dg.insert_edge(4, 4, 2.0);
        assert!(dg.remove_edge(4, 4, 2.0));
        let after = dg.embedding();
        before.assert_close(&after, 1e-12);
    }

    #[test]
    fn label_change_matches_recompute() {
        let mut dg = setup(80, 600, 23);
        dg.set_label(0, Some(2));
        dg.set_label(1, None);
        dg.set_label(2, Some(4));
        dg.set_label(2, Some(1)); // twice
        assert_matches_oracle(&dg, 1e-12);
    }

    #[test]
    fn label_change_rescales_class_columns() {
        // Two vertices in class 0 linked to vertex 2; relabeling one of
        // them halves→doubles the coefficient of the survivor.
        let el = EdgeList::new(3, vec![Edge::unit(0, 2), Edge::unit(1, 2)]).unwrap();
        let labels = Labels::from_options_with_k(&[Some(0), Some(0), None], 2);
        let mut dg = DynamicGee::new(&el, &labels);
        assert!((dg.embedding().get(2, 0) - 1.0).abs() < 1e-12); // 0.5 + 0.5
        dg.set_label(1, Some(1));
        // Class 0 now has one member with coefficient 1; vertex 2 sees
        // 1.0 from vertex 0 in column 0 and 1.0 from vertex 1 in column 1.
        assert!((dg.embedding().get(2, 0) - 1.0).abs() < 1e-12);
        assert!((dg.embedding().get(2, 1) - 1.0).abs() < 1e-12);
        assert_matches_oracle(&dg, 1e-12);
    }

    #[test]
    fn mixed_update_stream_matches_recompute() {
        let mut dg = setup(100, 800, 29);
        for i in 0..50u32 {
            match i % 4 {
                0 => dg.insert_edge(i % 100, (i * 13 + 1) % 100, 1.0 + f64::from(i % 3)),
                1 => dg.set_label(i % 100, Some(i % 5)),
                2 => {
                    dg.insert_edge(i, i + 1, 2.0);
                    assert!(dg.remove_edge(i, i + 1, 2.0));
                }
                _ => dg.set_label((i * 7) % 100, None),
            }
        }
        assert_matches_oracle(&dg, 1e-11);
    }

    #[test]
    fn embedding_rows_match_full_materialization() {
        let dg = setup(50, 300, 43);
        let full = dg.embedding();
        let k = dg.dim();
        for (lo, hi) in [(0usize, 17), (17, 50), (0, 50), (25, 25)] {
            let rows = dg.embedding_rows(lo, hi);
            assert_eq!(
                rows,
                full.as_slice()[lo * k..hi * k].to_vec(),
                "range {lo}..{hi}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn embedding_rows_validates_range() {
        let dg = setup(10, 30, 47);
        dg.embedding_rows(5, 11);
    }

    #[test]
    fn class_counts_track_label_moves() {
        let mut dg = setup(30, 100, 31);
        let c0 = dg.class_count(0);
        // Find a vertex not in class 0 and move it there.
        let v = (0..30u32).find(|&v| dg.label(v) != Some(0)).unwrap();
        dg.set_label(v, Some(0));
        assert_eq!(dg.class_count(0), c0 + 1);
    }

    #[test]
    fn edge_list_roundtrip_preserves_multiset() {
        let el = EdgeList::new(
            4,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 0, 2.0),
                Edge::new(2, 2, 3.0),
                Edge::new(3, 1, 1.0),
            ],
        )
        .unwrap();
        let labels = Labels::from_options_with_k(&[Some(0), Some(0), Some(0), Some(0)], 1);
        let dg = DynamicGee::new(&el, &labels);
        let mut a: Vec<_> = el
            .edges()
            .iter()
            .map(|e| (e.u.min(e.v), e.u.max(e.v), e.w.to_bits()))
            .collect();
        let mut b: Vec<_> = dg
            .edge_list()
            .edges()
            .iter()
            .map(|e| (e.u.min(e.v), e.u.max(e.v), e.w.to_bits()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn state_export_round_trips_bit_exactly() {
        let mut dg = setup(60, 400, 53);
        dg.insert_edge(1, 2, 3.25);
        dg.set_label(4, Some(2));
        let state = dg.export_state();
        let mut restored = DynamicGee::from_state(state.clone()).unwrap();
        assert_eq!(restored.export_state(), state);
        let a: Vec<u64> = dg
            .embedding()
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let b: Vec<u64> = restored
            .embedding()
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(a, b, "restored embedding must match bit-for-bit");
        // The restored writer behaves identically under further updates.
        dg.set_label(1, Some(0));
        restored.set_label(1, Some(0));
        assert!(dg.remove_edge(1, 2, 3.25));
        assert!(restored.remove_edge(1, 2, 3.25));
        assert_eq!(restored.export_state(), dg.export_state());
    }

    #[test]
    fn from_state_rejects_structural_corruption() {
        let dg = setup(20, 60, 59);
        let good = dg.export_state();
        // Shape violations.
        let mut s = good.clone();
        s.zhat.pop();
        assert!(DynamicGee::from_state(s).is_err());
        let mut s = good.clone();
        s.labels.push(0);
        assert!(DynamicGee::from_state(s).is_err());
        let mut s = good.clone();
        s.class_counts.push(0);
        assert!(DynamicGee::from_state(s).is_err());
        // Label out of the class universe.
        let mut s = good.clone();
        s.labels[0] = 99;
        assert!(DynamicGee::from_state(s).is_err());
        // Counts disagreeing with the histogram.
        let mut s = good.clone();
        s.class_counts[0] = s.class_counts[0].wrapping_add(1);
        assert!(DynamicGee::from_state(s).is_err());
        // One-sided adjacency entry (mirror broken).
        let mut s = good.clone();
        s.adjacency[0].push((1, 777.0));
        assert!(DynamicGee::from_state(s).is_err());
        // Adjacency referencing a vertex beyond n.
        let mut s = good.clone();
        s.adjacency[0].push((19_999, 1.0));
        assert!(DynamicGee::from_state(s).is_err());
        assert!(DynamicGee::from_state(good).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_label_validates_class() {
        let mut dg = setup(10, 30, 37);
        dg.set_label(0, Some(99));
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn insert_validates_endpoints() {
        let mut dg = setup(10, 30, 41);
        dg.insert_edge(0, 100, 1.0);
    }
}
