//! Sanity diagnostics on embeddings — used by tests, examples, and the
//! bench harness to verify every timed run actually computed the right
//! thing (a timing harness that silently computes garbage is worse than no
//! harness).

use gee_graph::EdgeList;

use crate::embedding::Embedding;
use crate::labels::Labels;
use crate::projection::Projection;

/// Full diagnostic report for an embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Any NaN/Inf entries?
    pub all_finite: bool,
    /// Sum of all entries.
    pub total_mass: f64,
    /// The mass the GEE update rule must conserve (see
    /// [`expected_mass`]).
    pub expected_mass: f64,
    /// |total - expected| / max(expected, 1).
    pub mass_relative_error: f64,
    /// Number of all-zero rows (isolated or unlabeled-neighborhood
    /// vertices).
    pub zero_rows: usize,
}

/// The exact total mass GEE must produce on `el` with `labels`:
/// `Σ_edges w·(coeff(u) + coeff(v))`.
pub fn expected_mass(el: &EdgeList, labels: &Labels) -> f64 {
    let p = Projection::build_serial(labels);
    el.iter()
        .map(|(u, v, w)| w * (p.coeff(u) + p.coeff(v)))
        .sum()
}

/// Produce a [`Report`] for `z` as the embedding of `el` under `labels`.
pub fn check(z: &Embedding, el: &EdgeList, labels: &Labels) -> Report {
    let all_finite = z.as_slice().iter().all(|x| x.is_finite());
    let total_mass = z.total_mass();
    let expected = expected_mass(el, labels);
    let zero_rows = (0..z.num_vertices() as u32)
        .filter(|&v| z.row(v).iter().all(|&x| x == 0.0))
        .count();
    Report {
        all_finite,
        total_mass,
        expected_mass: expected,
        mass_relative_error: (total_mass - expected).abs() / expected.abs().max(1.0),
        zero_rows,
    }
}

/// Assert the report is healthy (finite entries, mass conserved to `tol`).
pub fn assert_healthy(z: &Embedding, el: &EdgeList, labels: &Labels, tol: f64) {
    let r = check(z, el, labels);
    assert!(r.all_finite, "embedding contains non-finite entries");
    assert!(
        r.mass_relative_error <= tol,
        "mass not conserved: total {} vs expected {} (rel err {:e})",
        r.total_mass,
        r.expected_mass,
        r.mass_relative_error
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial_optimized;
    use gee_gen::LabelSpec;

    #[test]
    fn healthy_embedding_passes() {
        let el = gee_gen::erdos_renyi_gnm(100, 1000, 3);
        let labels = Labels::from_options(&gee_gen::random_labels(
            100,
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.4,
            },
            5,
        ));
        let z = serial_optimized::embed(&el, &labels);
        assert_healthy(&z, &el, &labels, 1e-9);
        let r = check(&z, &el, &labels);
        assert!(r.all_finite);
        assert!(r.mass_relative_error < 1e-12);
    }

    #[test]
    fn corrupted_embedding_fails_mass_check() {
        let el = gee_gen::erdos_renyi_gnm(50, 500, 3);
        let labels = Labels::from_options(&gee_gen::full_labels(50, 3, 1));
        let mut z = serial_optimized::embed(&el, &labels);
        z.row_mut(0)[0] += 100.0;
        let r = check(&z, &el, &labels);
        assert!(r.mass_relative_error > 0.01);
    }

    #[test]
    fn zero_rows_counted() {
        use gee_graph::Edge;
        // Vertex 2 isolated → zero row.
        let el = EdgeList::new(3, vec![Edge::unit(0, 1)]).unwrap();
        let labels = Labels::from_full(&[0, 1, 0]);
        let z = serial_optimized::embed(&el, &labels);
        let r = check(&z, &el, &labels);
        assert_eq!(r.zero_rows, 1);
    }

    #[test]
    fn nan_detected() {
        let el = gee_gen::erdos_renyi_gnm(10, 50, 1);
        let labels = Labels::from_options(&gee_gen::full_labels(10, 2, 1));
        let mut z = serial_optimized::embed(&el, &labels);
        z.row_mut(0)[0] = f64::NAN;
        assert!(!check(&z, &el, &labels).all_finite);
    }
}
