//! GEE-Ligra — Algorithm 2 of the paper.
//!
//! The edge loop becomes an `edgeMap` over the full frontier with the
//! `updateEmb` functor; the two `Z` accumulations are lock-free atomic
//! `writeAdd`s. Traversal is *dense-forward*: one task per source vertex
//! whose out-edge list is processed sequentially, so
//!
//! * successive updates through `Z(u, ·)` hit the processor cache (§III),
//! * updates `Z(u, Y(v1))`, `Z(u, Y(v2))` from one source never conflict —
//!   they are serialized within the task — and only cross-source updates
//!   to a shared destination row contend, which the paper expects (and we
//!   measure) to be rare.
//!
//! The `AtomicsMode::Racy` path reproduces the paper's "atomics off" run:
//! same schedule, relaxed read+write instead of CAS.

use gee_graph::{CsrGraph, VertexId, Weight};
use gee_ligra::{
    edge_map, AtomicF64Vec, AtomicsMode, EdgeMapFn, EdgeMapOptions, TraversalKind, VertexSubset,
};

use crate::embedding::Embedding;
use crate::labels::Labels;
use crate::projection::Projection;

/// The `updateEmb` functor of Algorithm 2.
struct UpdateEmb<'a> {
    z: &'a AtomicF64Vec,
    coeff: &'a [f64],
    y: &'a [i32],
    k: usize,
    mode: AtomicsMode,
}

impl UpdateEmb<'_> {
    /// Lines 10–11 of Algorithm 2:
    /// `writeAdd(Z(u, Y(v)), W(v, Y(v))·w)`;
    /// `writeAdd(Z(v, Y(u)), W(u, Y(u))·w)`.
    #[inline]
    fn apply(&self, u: VertexId, v: VertexId, w: Weight) {
        let yv = self.y[v as usize];
        if yv >= 0 {
            self.z.add(
                self.mode,
                u as usize * self.k + yv as usize,
                self.coeff[v as usize] * w,
            );
        }
        let yu = self.y[u as usize];
        if yu >= 0 {
            self.z.add(
                self.mode,
                v as usize * self.k + yu as usize,
                self.coeff[u as usize] * w,
            );
        }
    }
}

impl EdgeMapFn for UpdateEmb<'_> {
    fn update(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        self.apply(s, d, w);
        false
    }
    fn update_atomic(&self, s: VertexId, d: VertexId, w: Weight) -> bool {
        self.apply(s, d, w);
        false
    }
}

/// GEE-Ligra (Algorithm 2): parallel projection init + edge map with
/// atomic `writeAdd`. Runs on the ambient rayon pool — wrap in
/// [`gee_ligra::with_threads`] to control the worker count (the paper's
/// Fig. 3 sweep).
pub fn embed(g: &CsrGraph, labels: &Labels, mode: AtomicsMode) -> Embedding {
    assert_eq!(
        g.num_vertices(),
        labels.len(),
        "labels must cover every vertex"
    );
    let n = g.num_vertices();
    let k = labels.num_classes();
    // Algorithm 2 lines 2–6: ParallelFor over classes / vertices.
    let proj = Projection::build_parallel(labels);
    // Line 7: EdgeMap(updateEmb, Z, W, Y, frontier = n).
    let z = AtomicF64Vec::zeros(n * k);
    let functor = UpdateEmb {
        z: &z,
        coeff: proj.as_slice(),
        y: labels.raw_slice(),
        k,
        mode,
    };
    let frontier = VertexSubset::full(n);
    edge_map(
        g,
        &frontier,
        &functor,
        EdgeMapOptions {
            kind: TraversalKind::DenseForward,
            no_output: true,
        },
    );
    Embedding::from_vec(n, k, z.into_vec())
}

/// GEE-Ligra over a byte-compressed graph ([`gee_graph::CompressedCsr`]):
/// the same dense-forward edge-parallel kernel, decoding each source's
/// neighbor list on the fly. Trades decode ALU work for memory bandwidth —
/// the direction §IV's memory-bound analysis points at (CPMA, ref. 18 of the paper); the
/// `ablation-compression` bench quantifies it.
pub fn embed_compressed(
    g: &gee_graph::CompressedCsr,
    labels: &Labels,
    mode: AtomicsMode,
) -> Embedding {
    use rayon::prelude::*;
    assert_eq!(
        g.num_vertices(),
        labels.len(),
        "labels must cover every vertex"
    );
    let n = g.num_vertices();
    let k = labels.num_classes();
    let proj = Projection::build_parallel(labels);
    let z = AtomicF64Vec::zeros(n * k);
    let functor = UpdateEmb {
        z: &z,
        coeff: proj.as_slice(),
        y: labels.raw_slice(),
        k,
        mode,
    };
    (0..n as u32).into_par_iter().for_each(|u| {
        g.for_each_out(u, |v, w| functor.apply(u, v, w));
    });
    Embedding::from_vec(n, k, z.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial_reference;
    use gee_gen::LabelSpec;
    use gee_graph::EdgeList;
    use proptest::prelude::*;

    fn setup(n: usize, m: usize, k: usize, frac: f64, seed: u64) -> (EdgeList, Labels) {
        let el = gee_gen::erdos_renyi_gnm(n, m, seed);
        let labels = Labels::from_options(&gee_gen::random_labels(
            n,
            LabelSpec {
                num_classes: k,
                labeled_fraction: frac,
            },
            seed ^ 0xABCD,
        ));
        (el, labels)
    }

    #[test]
    fn matches_reference_up_to_fp_reordering() {
        let (el, labels) = setup(400, 4000, 8, 0.3, 11);
        let reference = serial_reference::embed(&el, &labels);
        let g = CsrGraph::from_edge_list(&el);
        let z = embed(&g, &labels, AtomicsMode::Atomic);
        reference.assert_close(&z, 1e-9);
    }

    #[test]
    fn serial_pool_matches_reference() {
        let (el, labels) = setup(200, 2000, 5, 0.5, 3);
        let reference = serial_reference::embed(&el, &labels);
        let g = CsrGraph::from_edge_list(&el);
        let z = gee_ligra::with_threads(1, || embed(&g, &labels, AtomicsMode::Atomic));
        reference.assert_close(&z, 1e-9);
    }

    #[test]
    fn racy_mode_single_thread_is_exact() {
        // On one thread the racy path has no races: must equal atomic mode.
        let (el, labels) = setup(150, 1500, 4, 0.4, 7);
        let g = CsrGraph::from_edge_list(&el);
        let a = gee_ligra::with_threads(1, || embed(&g, &labels, AtomicsMode::Atomic));
        let b = gee_ligra::with_threads(1, || embed(&g, &labels, AtomicsMode::Racy));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn racy_mode_parallel_is_approximately_right() {
        // The paper's "atomics off" run computes *approximately* the same
        // embedding (lost updates are rare). Verify mass is within 1%.
        let (el, labels) = setup(500, 20_000, 6, 0.5, 13);
        let g = CsrGraph::from_edge_list(&el);
        let exact = embed(&g, &labels, AtomicsMode::Atomic);
        let racy = embed(&g, &labels, AtomicsMode::Racy);
        let lost = (exact.total_mass() - racy.total_mass()).abs();
        assert!(
            lost <= 0.01 * exact.total_mass().max(1.0),
            "lost {lost} of {}",
            exact.total_mass()
        );
    }

    #[test]
    fn weighted_graph_matches_reference() {
        use gee_graph::Edge;
        let edges: Vec<Edge> = (0..2000u32)
            .map(|i| {
                Edge::new(
                    i % 100,
                    (i * 13 + 1) % 100,
                    ((i % 17) as f64).exp().min(10.0),
                )
            })
            .collect();
        let el = EdgeList::new(100, edges).unwrap();
        let labels = Labels::from_options(&gee_gen::full_labels(100, 7, 5));
        let reference = serial_reference::embed(&el, &labels);
        let g = CsrGraph::from_edge_list(&el);
        let z = embed(&g, &labels, AtomicsMode::Atomic);
        reference.assert_close(&z, 1e-9);
    }

    #[test]
    fn compressed_matches_reference() {
        let (el, labels) = setup(300, 5000, 6, 0.4, 21);
        let reference = serial_reference::embed(&el, &labels);
        let g = CsrGraph::from_edge_list(&el);
        let c = gee_graph::CompressedCsr::from_csr(&g);
        let z = embed_compressed(&c, &labels, AtomicsMode::Atomic);
        reference.assert_close(&z, 1e-9);
    }

    #[test]
    fn compressed_weighted_matches() {
        use gee_graph::Edge;
        let edges: Vec<Edge> = (0..1500u32)
            .map(|i| Edge::new(i % 60, (i * 11 + 2) % 60, 0.5 + (i % 5) as f64))
            .collect();
        let el = EdgeList::new(60, edges).unwrap();
        let labels = Labels::from_options(&gee_gen::full_labels(60, 4, 3));
        let reference = serial_reference::embed(&el, &labels);
        let g = CsrGraph::from_edge_list(&el);
        let c = gee_graph::CompressedCsr::from_csr(&g);
        let z = embed_compressed(&c, &labels, AtomicsMode::Atomic);
        reference.assert_close(&z, 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Property: GEE-Ligra equals the serial reference for arbitrary
        /// graphs and labelings (within FP-reassociation tolerance).
        #[test]
        fn prop_matches_reference(
            n in 2usize..60,
            seed in 0u64..500,
            k in 1usize..5,
            frac in 0.0f64..1.0,
        ) {
            let (el, labels) = setup(n, n * 5, k, frac, seed);
            let reference = serial_reference::embed(&el, &labels);
            let g = CsrGraph::from_edge_list(&el);
            let z = embed(&g, &labels, AtomicsMode::Atomic);
            reference.assert_close(&z, 1e-9);
        }
    }
}
