//! Alternative parallel kernels for the GEE edge pass — ablations on the
//! paper's design choice of push-style traversal with atomic `writeAdd`.
//!
//! * [`embed_pull`] — **atomics-free** GEE for symmetric graphs. The paper
//!   resolves write conflicts with `writeAdd`; but Ligra's pull-style
//!   `edgeMapDense` gives each *destination* a single owner task. For a
//!   symmetric graph every edge appears in both directions, so performing
//!   only the line-10 update `Z(d, Y(s)) += W(s)·w` while pulling over
//!   each `d`'s in-edges (= out-edges, by symmetry) covers both updates of
//!   Algorithm 1 — with plain, unsynchronized writes into `Z(d, ·)`.
//! * [`embed_binned`] — propagation blocking (Beamer et al.): phase 1
//!   routes each edge's two contributions into per-destination-range bins
//!   (sequential appends); phase 2 drains each bin with exclusive
//!   ownership of its `Z` range. Converts the paper's "one write likely
//!   misses" random traffic into two streaming passes, again without
//!   atomics.
//!
//! Both are validated against the serial reference and raced against the
//! atomic kernel in `ablation-kernels`.

use gee_graph::{CsrGraph, Edge};
use rayon::prelude::*;

use crate::embedding::Embedding;
use crate::labels::Labels;
use crate::projection::Projection;

/// Atomics-free pull GEE over a **symmetric** graph (each undirected edge
/// stored in both directions — the encoding §II prescribes). Parallel over
/// destinations; each task owns its `Z` row exclusively.
///
/// Panics (debug builds) if the graph is visibly asymmetric; correctness
/// for directed inputs requires the transpose trick instead.
pub fn embed_pull(g: &CsrGraph, labels: &Labels) -> Embedding {
    assert_eq!(
        g.num_vertices(),
        labels.len(),
        "labels must cover every vertex"
    );
    let n = g.num_vertices();
    let k = labels.num_classes();
    let proj = Projection::build_parallel(labels);
    let coeff = proj.as_slice();
    let y = labels.raw_slice();
    let mut z = vec![0.0f64; n * k];
    // Each task writes exactly the rows of its chunk — no synchronization.
    z.par_chunks_mut(k.max(1)).enumerate().for_each(|(d, row)| {
        let d = d as u32;
        for (i, &s) in g.neighbors(d).iter().enumerate() {
            // Symmetric graph: the out-edge (d→s) mirrors the in-edge
            // (s→d); apply line 10 of Algorithm 1 for that in-edge.
            let ys = y[s as usize];
            if ys >= 0 {
                // Algorithm 1 over the symmetric list updates Z(d, Y(s))
                // twice per undirected edge: line 10 of the stored edge
                // (s→d) and line 11 of its mirror (d→s). One pull visit
                // covers both, hence the factor 2 (self-loops included:
                // stored once, both lines hit the same entry).
                row[ys as usize] += 2.0 * coeff[s as usize] * g.weight_at(d, i);
            }
        }
    });
    Embedding::from_vec(n, k, z)
}

/// Propagation-blocking GEE: bin contributions by destination range, then
/// drain bins with exclusive ownership. Works for arbitrary (directed,
/// weighted) inputs. `bin_bits` sets the destination-range width
/// (`2^bin_bits` vertices per bin; 16 ≈ a 25 MiB Z stripe at K=50).
pub fn embed_binned(
    el_vertices: usize,
    edges: &[Edge],
    labels: &Labels,
    bin_bits: u32,
) -> Embedding {
    assert_eq!(el_vertices, labels.len(), "labels must cover every vertex");
    let n = el_vertices;
    let k = labels.num_classes();
    let proj = Projection::build_parallel(labels);
    let coeff = proj.as_slice();
    let y = labels.raw_slice();
    let num_bins = (n >> bin_bits) + 1;
    // Phase 1: per-worker-chunk local bins, merged per bin afterwards.
    // Each contribution is (z-flat-index, value).
    let chunk = 1usize << 16;
    let locals: Vec<Vec<Vec<(u64, f64)>>> = edges
        .par_chunks(chunk)
        .map(|es| {
            let mut bins: Vec<Vec<(u64, f64)>> = vec![Vec::new(); num_bins];
            for e in es {
                let (u, v, w) = (e.u as usize, e.v as usize, e.w);
                let yv = y[v];
                if yv >= 0 {
                    bins[u >> bin_bits].push(((u * k + yv as usize) as u64, coeff[v] * w));
                }
                let yu = y[u];
                if yu >= 0 {
                    bins[v >> bin_bits].push(((v * k + yu as usize) as u64, coeff[u] * w));
                }
            }
            bins
        })
        .collect();
    // Phase 2: one task per bin applies all its contributions; bins own
    // disjoint Z ranges, so plain writes through a raw-pointer wrapper are
    // race-free.
    let mut z = vec![0.0f64; n * k];
    let zp = SendPtr(z.as_mut_ptr());
    (0..num_bins).into_par_iter().for_each(|b| {
        for local in &locals {
            for &(idx, val) in &local[b] {
                // SAFETY: idx / k >> bin_bits == b by construction, and bin
                // b is processed by exactly one task, so no two tasks write
                // the same element.
                unsafe { *zp.get().add(idx as usize) += val };
            }
        }
    });
    Embedding::from_vec(n, k, z)
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial_reference;
    use gee_gen::LabelSpec;
    use gee_graph::EdgeList;

    fn symmetric_setup(n: usize, m: usize, seed: u64) -> (EdgeList, Labels) {
        let el = gee_gen::erdos_renyi_gnm(n, m, seed).symmetrized();
        let labels = Labels::from_options(&gee_gen::random_labels(
            n,
            LabelSpec {
                num_classes: 7,
                labeled_fraction: 0.3,
            },
            seed ^ 0xF00D,
        ));
        (el, labels)
    }

    #[test]
    fn pull_matches_reference_on_symmetric_graph() {
        let (el, labels) = symmetric_setup(300, 2500, 3);
        let reference = serial_reference::embed(&el, &labels);
        let g = CsrGraph::from_edge_list(&el);
        let z = embed_pull(&g, &labels);
        reference.assert_close(&z, 1e-9);
    }

    #[test]
    fn pull_matches_on_weighted_symmetric() {
        use gee_graph::Edge;
        let mut edges = Vec::new();
        for i in 0..800u32 {
            let (u, v, w) = (i % 50, (i * 7 + 3) % 50, 0.5 + (i % 9) as f64);
            edges.push(Edge::new(u, v, w));
            edges.push(Edge::new(v, u, w));
        }
        let el = EdgeList::new(50, edges).unwrap();
        let labels = Labels::from_options(&gee_gen::full_labels(50, 4, 1));
        let reference = serial_reference::embed(&el, &labels);
        let g = CsrGraph::from_edge_list(&el);
        embed_pull(&g, &labels).assert_close(&reference, 1e-9);
        reference.assert_close(&embed_pull(&g, &labels), 1e-9);
    }

    #[test]
    fn binned_matches_reference_directed() {
        // Binned kernel handles plain directed inputs.
        let el = gee_gen::erdos_renyi_gnm(500, 6000, 11);
        let labels = Labels::from_options(&gee_gen::random_labels(
            500,
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.4,
            },
            13,
        ));
        let reference = serial_reference::embed(&el, &labels);
        for bits in [4u32, 8, 16] {
            let z = embed_binned(el.num_vertices(), el.edges(), &labels, bits);
            reference.assert_close(&z, 1e-9);
        }
    }

    #[test]
    fn binned_matches_on_symmetric_weighted() {
        let (el, labels) = symmetric_setup(200, 1500, 21);
        let reference = serial_reference::embed(&el, &labels);
        let z = embed_binned(el.num_vertices(), el.edges(), &labels, 6);
        reference.assert_close(&z, 1e-9);
    }

    #[test]
    fn all_kernels_agree() {
        let (el, labels) = symmetric_setup(400, 4000, 31);
        let g = CsrGraph::from_edge_list(&el);
        let a = crate::ligra::embed(&g, &labels, gee_ligra::AtomicsMode::Atomic);
        let b = embed_pull(&g, &labels);
        let c = embed_binned(el.num_vertices(), el.edges(), &labels, 10);
        a.assert_close(&b, 1e-9);
        a.assert_close(&c, 1e-9);
    }

    #[test]
    fn empty_graph_kernels() {
        let labels = Labels::from_options(&[None, None]);
        let g = CsrGraph::build(2, &[], false);
        assert_eq!(embed_pull(&g, &labels).as_slice().len(), 0);
        assert_eq!(embed_binned(2, &[], &labels, 8).as_slice().len(), 0);
    }
}
