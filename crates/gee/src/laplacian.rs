//! Laplacian preprocessing for GEE.
//!
//! §II of the paper: "our description does not include the preprocessing
//! steps needed to compute the Laplacian version of the algorithm (ref. 13 of the paper)".
//! Those steps (from the original GEE paper) replace the adjacency weights
//! with symmetrically degree-normalized weights,
//! `w'(u,v) = w(u,v) / sqrt(deg(u) · deg(v))`, where `deg` is the weighted
//! degree counting both directions (so the undirected two-directed-edge
//! encoding normalizes like the undirected graph it represents). The
//! embedding pass itself is unchanged — any GEE implementation then runs
//! on the reweighted edge list.

use gee_graph::{Edge, EdgeList};

/// Weighted degree per vertex: sum of |w| over all incident edge endpoints
/// (out plus in; a self-loop counts twice, as in an undirected degree).
pub fn weighted_degrees(el: &EdgeList) -> Vec<f64> {
    let mut deg = vec![0.0f64; el.num_vertices()];
    for (u, v, w) in el.iter() {
        deg[u as usize] += w.abs();
        deg[v as usize] += w.abs();
    }
    deg
}

/// Produce the Laplacian-normalized edge list. Edges incident to an
/// isolated endpoint (degree 0 cannot occur for an edge endpoint) keep a
/// finite weight by construction.
pub fn normalize(el: &EdgeList) -> EdgeList {
    let deg = weighted_degrees(el);
    let edges: Vec<Edge> = el
        .iter()
        .map(|(u, v, w)| {
            let d = (deg[u as usize] * deg[v as usize]).sqrt();
            Edge::new(u, v, if d > 0.0 { w / d } else { 0.0 })
        })
        .collect();
    EdgeList::new_unchecked(el.num_vertices(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_count_both_endpoints() {
        let el = EdgeList::new(3, vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 3.0)]).unwrap();
        assert_eq!(weighted_degrees(&el), vec![2.0, 5.0, 3.0]);
    }

    #[test]
    fn self_loop_counts_twice() {
        let el = EdgeList::new(1, vec![Edge::new(0, 0, 1.5)]).unwrap();
        assert_eq!(weighted_degrees(&el), vec![3.0]);
    }

    #[test]
    fn normalized_weights() {
        let el = EdgeList::new(3, vec![Edge::new(0, 1, 2.0), Edge::new(1, 2, 3.0)]).unwrap();
        let norm = normalize(&el);
        // w'(0,1) = 2 / sqrt(2·5), w'(1,2) = 3 / sqrt(5·3)
        assert!((norm.edges()[0].w - 2.0 / (10.0f64).sqrt()).abs() < 1e-12);
        assert!((norm.edges()[1].w - 3.0 / (15.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn regular_graph_uniform_scaling() {
        // 4-cycle, symmetrized: every vertex has degree 4 (2 out + 2 in);
        // every weight becomes 1/4.
        let el = EdgeList::new(4, (0..4u32).map(|v| Edge::unit(v, (v + 1) % 4)).collect())
            .unwrap()
            .symmetrized();
        let norm = normalize(&el);
        for e in norm.edges() {
            assert!((e.w - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn preserves_shape() {
        let el = gee_gen::erdos_renyi_gnm(50, 300, 7);
        let norm = normalize(&el);
        assert_eq!(norm.num_vertices(), 50);
        assert_eq!(norm.num_edges(), 300);
        assert!(norm.edges().iter().all(|e| e.w.is_finite() && e.w >= 0.0));
    }
}
