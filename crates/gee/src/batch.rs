//! Batch GEE — embed several labelings of the *same* graph in one fused
//! edge pass.
//!
//! §IV of the paper argues the edge pass is **memory bound**: "two
//! fused-multiply adds per edge and two memory writes, one of which is
//! likely to miss". When several embeddings are needed (label-propagation
//! seeding sweeps, bootstrap resampling of the known labels, γ-sweeps of
//! community labels), running L separate passes pays the edge-stream
//! traffic L times. The fused pass reads each edge once and applies all L
//! updates while the endpoints' metadata is hot, so edge traffic is paid
//! once.
//!
//! The trade-off (measured by the `ablation-batch` bench): fusing pays
//! for an L-times-larger `Z` working set with interleaved rows. It wins
//! when the per-labeling footprint `n·K·8 B` is small (low K, so the
//! edge stream dominates traffic) and loses at the paper's K = 50 where
//! `Z` writes dominate — the same footprint reasoning as §IV.
//!
//! Layout: one row-major accumulator per vertex holding the L per-labeling
//! blocks back to back (`row(v) = [Z₀(v,·) | Z₁(v,·) | …]`), so a vertex's
//! entire update footprint is one contiguous stripe.

use gee_graph::EdgeList;

use crate::embedding::Embedding;
use crate::labels::Labels;
use crate::projection::Projection;

/// Serial fused pass: bit-identical to running
/// [`crate::serial_optimized::embed`] once per labeling.
pub fn embed_many(el: &EdgeList, labelings: &[&Labels]) -> Vec<Embedding> {
    let n = el.num_vertices();
    for l in labelings {
        assert_eq!(n, l.len(), "every labeling must cover every vertex");
    }
    let dims: Vec<usize> = labelings.iter().map(|l| l.num_classes()).collect();
    let offsets: Vec<usize> = dims
        .iter()
        .scan(0usize, |acc, &k| {
            let o = *acc;
            *acc += k;
            Some(o)
        })
        .collect();
    let stride: usize = dims.iter().sum();
    let projections: Vec<Projection> = labelings
        .iter()
        .map(|l| Projection::build_serial(l))
        .collect();
    // Hoist the per-labeling slices out of the edge loop.
    let metas: Vec<(usize, &[i32], &[f64])> = labelings
        .iter()
        .zip(&projections)
        .zip(&offsets)
        .map(|((l, p), &off)| (off, l.raw_slice(), p.as_slice()))
        .collect();
    let mut z = vec![0.0f64; n * stride];
    for e in el.edges() {
        let (u, v, w) = (e.u as usize, e.v as usize, e.w);
        for &(off, y, coeff) in &metas {
            let yv = y[v];
            if yv >= 0 {
                z[u * stride + off + yv as usize] += coeff[v] * w;
            }
            let yu = y[u];
            if yu >= 0 {
                z[v * stride + off + yu as usize] += coeff[u] * w;
            }
        }
    }
    unpack(z, n, stride, &offsets, &dims)
}

/// Parallel fused pass (deterministic): per-chunk contribution bins as in
/// the propagation-blocking kernel, all labelings routed together.
pub fn embed_many_parallel(el: &EdgeList, labelings: &[&Labels], bin_bits: u32) -> Vec<Embedding> {
    use rayon::prelude::*;
    let n = el.num_vertices();
    for l in labelings {
        assert_eq!(n, l.len(), "every labeling must cover every vertex");
    }
    let dims: Vec<usize> = labelings.iter().map(|l| l.num_classes()).collect();
    let offsets: Vec<usize> = dims
        .iter()
        .scan(0usize, |acc, &k| {
            let o = *acc;
            *acc += k;
            Some(o)
        })
        .collect();
    let stride: usize = dims.iter().sum();
    if stride == 0 {
        return dims.iter().map(|_| Embedding::zeros(n, 0)).collect();
    }
    let projections: Vec<Projection> = labelings
        .iter()
        .map(|l| Projection::build_parallel(l))
        .collect();
    let num_bins = (n >> bin_bits) + 1;
    let chunk = 1usize << 16;
    // Phase 1: route each edge's contributions (over all labelings) into
    // per-chunk destination bins. Chunk boundaries are fixed, so the
    // result is deterministic at any thread count.
    let locals: Vec<Vec<Vec<(u64, f64)>>> = el
        .edges()
        .par_chunks(chunk)
        .map(|es| {
            let mut bins: Vec<Vec<(u64, f64)>> = vec![Vec::new(); num_bins];
            for e in es {
                let (u, v, w) = (e.u as usize, e.v as usize, e.w);
                for (li, l) in labelings.iter().enumerate() {
                    let y = l.raw_slice();
                    let coeff = projections[li].as_slice();
                    let yv = y[v];
                    if yv >= 0 {
                        let idx = (u * stride + offsets[li] + yv as usize) as u64;
                        bins[u >> bin_bits].push((idx, coeff[v] * w));
                    }
                    let yu = y[u];
                    if yu >= 0 {
                        let idx = (v * stride + offsets[li] + yu as usize) as u64;
                        bins[v >> bin_bits].push((idx, coeff[u] * w));
                    }
                }
            }
            bins
        })
        .collect();
    // Phase 2: drain bins with exclusive ownership of their Z stripes.
    let mut z = vec![0.0f64; n * stride];
    let zp = SendPtr(z.as_mut_ptr());
    (0..num_bins).into_par_iter().for_each(|b| {
        for local in &locals {
            for &(idx, val) in &local[b] {
                // SAFETY: (idx / stride) >> bin_bits == b by construction
                // and bin b has exactly one owner task.
                unsafe { *zp.get().add(idx as usize) += val };
            }
        }
    });
    unpack(z, n, stride, &offsets, &dims)
}

/// Split the interleaved accumulator back into one embedding per labeling.
fn unpack(
    z: Vec<f64>,
    n: usize,
    stride: usize,
    offsets: &[usize],
    dims: &[usize],
) -> Vec<Embedding> {
    dims.iter()
        .zip(offsets)
        .map(|(&k, &off)| {
            let mut data = Vec::with_capacity(n * k);
            for v in 0..n {
                data.extend_from_slice(&z[v * stride + off..v * stride + off + k]);
            }
            Embedding::from_vec(n, k, data)
        })
        .collect()
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial_optimized;
    use gee_gen::LabelSpec;

    fn three_labelings(n: usize, seed: u64) -> Vec<Labels> {
        (0..3)
            .map(|i| {
                Labels::from_options(&gee_gen::random_labels(
                    n,
                    LabelSpec {
                        num_classes: 3 + i,
                        labeled_fraction: 0.2 + 0.2 * i as f64,
                    },
                    seed + i as u64,
                ))
            })
            .collect()
    }

    #[test]
    fn fused_serial_matches_individual_passes() {
        let el = gee_gen::erdos_renyi_gnm(300, 2500, 7);
        let labelings = three_labelings(300, 9);
        let refs: Vec<&Labels> = labelings.iter().collect();
        let batch = embed_many(&el, &refs);
        for (l, z) in labelings.iter().zip(&batch) {
            let single = serial_optimized::embed(&el, l);
            assert_eq!(
                single.as_slice(),
                z.as_slice(),
                "fused pass must be bit-identical"
            );
        }
    }

    #[test]
    fn fused_parallel_matches_serial_bit_exact() {
        let el = gee_gen::erdos_renyi_gnm(250, 2000, 11);
        let labelings = three_labelings(250, 13);
        let refs: Vec<&Labels> = labelings.iter().collect();
        let serial = embed_many(&el, &refs);
        for bits in [6u32, 12] {
            let parallel = embed_many_parallel(&el, &refs, bits);
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.as_slice(), b.as_slice(), "bin_bits={bits}");
            }
        }
    }

    #[test]
    fn single_labeling_degenerates_to_plain_embed() {
        let el = gee_gen::erdos_renyi_gnm(100, 700, 17);
        let l = Labels::from_options(&gee_gen::full_labels(100, 5, 19));
        let batch = embed_many(&el, &[&l]);
        assert_eq!(batch.len(), 1);
        assert_eq!(
            batch[0].as_slice(),
            serial_optimized::embed(&el, &l).as_slice()
        );
    }

    #[test]
    fn empty_labeling_list() {
        let el = gee_gen::erdos_renyi_gnm(10, 30, 1);
        assert!(embed_many(&el, &[]).is_empty());
        assert!(embed_many_parallel(&el, &[], 8).is_empty());
    }

    #[test]
    fn mixed_dimensions_unpack_correctly() {
        let el = gee_gen::erdos_renyi_gnm(80, 500, 23);
        let a = Labels::from_options(&gee_gen::full_labels(80, 2, 1));
        let b = Labels::from_options(&gee_gen::full_labels(80, 7, 2));
        let out = embed_many(&el, &[&a, &b]);
        assert_eq!(out[0].dim(), 2);
        assert_eq!(out[1].dim(), 7);
        assert_eq!(out[0].num_vertices(), 80);
    }

    #[test]
    fn all_unlabeled_labelings() {
        let el = gee_gen::erdos_renyi_gnm(20, 60, 3);
        let l = Labels::from_options(&[None; 20]);
        let out = embed_many_parallel(&el, &[&l, &l], 4);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].dim(), 0);
    }
}
