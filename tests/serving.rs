//! Facade-level coverage of the `gee-serve` subsystem: the serving query
//! path must agree with the library's static embedding and kNN paths, and
//! batched execution must be equivalent to one-at-a-time execution.
//! (The deeper acceptance test lives in `crates/serve/tests/`.)

use std::sync::Arc;

use gee_repro::prelude::*;

fn setup() -> (EdgeList, Labels, Vec<u32>) {
    let sbm = gee_gen::sbm(&SbmParams::balanced(3, 50, 0.3, 0.02), 13);
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.4, 3), 3);
    (sbm.edges, labels, sbm.truth)
}

#[test]
fn serve_query_path_matches_library_paths() {
    let (el, labels, _) = setup();
    let registry = Arc::new(Registry::new(2));
    let snap = registry.register("g", &el, &labels).unwrap();

    // Epoch-0 snapshot equals the paper's parallel embedding.
    let g = CsrGraph::from_edge_list(&el);
    let ligra = gee_repro::core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    ligra.assert_close(&snap.to_embedding(), 1e-9);

    // Served Classify equals gee_eval::knn_classify over that embedding.
    let engine = ServeEngine::new(registry);
    let queries: Vec<u32> = (0..el.num_vertices() as u32).collect();
    let served = match engine
        .execute("g", Request::classify(queries.clone(), 3))
        .unwrap()
    {
        Response::Classes(c) => c,
        other => panic!("unexpected response {other:?}"),
    };
    let train: Vec<(u32, u32)> = labels.iter_labeled().collect();
    let expected =
        gee_repro::eval::knn_classify(ligra.as_slice(), ligra.dim(), &train, &queries, 3);
    assert_eq!(served, expected);
}

#[test]
fn serve_updates_then_read_equals_recompute() {
    let (el, labels, _) = setup();
    let registry = Arc::new(Registry::new(3));
    registry.register("g", &el, &labels).unwrap();
    let engine = ServeEngine::new(registry.clone());

    let updates = vec![
        Update::InsertEdge {
            u: 0,
            v: 60,
            w: 3.0,
        },
        Update::SetLabel {
            v: 10,
            label: Some(2),
        },
        Update::SetLabel { v: 20, label: None },
    ];
    let batch = vec![
        Envelope::new("g", Request::embed_row(0)),
        Envelope::new(
            "g",
            Request::ApplyUpdates {
                updates: updates.clone(),
            },
        ),
        Envelope::new("g", Request::embed_row(0)),
    ];
    let batched = engine.execute_batch(batch.clone());
    assert!(batched.iter().all(Result::is_ok));

    // Batched == one-at-a-time (on a fresh identical registry).
    let registry2 = Arc::new(Registry::new(3));
    registry2.register("g", &el, &labels).unwrap();
    let engine2 = ServeEngine::new(registry2);
    let sequential: Vec<_> = batch
        .into_iter()
        .map(|e| engine2.execute(&e.graph, e.request))
        .collect();
    assert_eq!(batched, sequential);

    // Post-update snapshot equals a from-scratch recompute.
    let mut oracle = DynamicGee::new(&el, &labels);
    oracle.insert_edge(0, 60, 3.0);
    oracle.set_label(10, Some(2));
    oracle.set_label(20, None);
    let fresh = gee_repro::core::serial_optimized::embed(&oracle.edge_list(), &oracle.labels());
    let snap = registry.snapshot("g").unwrap();
    assert_eq!(snap.epoch, 1);
    fresh.assert_close(&snap.to_embedding(), 1e-11);
}
