//! Property-based tests for the extension features, driven by random
//! operation sequences and graph shapes: the bucketing structure against
//! a naive model, dynamic GEE against static recompute, Δ-stepping
//! against Dijkstra, and the configuration model's degree guarantee.

use proptest::prelude::*;

use gee_repro::prelude::*;

// ---------------------------------------------------------------------
// Buckets vs a naive oracle model.
// ---------------------------------------------------------------------

/// Oracle: bucket per vertex in a plain vector; pop scans for the min.
#[derive(Debug)]
struct NaiveBuckets {
    bucket_of: Vec<Option<u64>>,
}

impl NaiveBuckets {
    fn new(n: usize) -> Self {
        NaiveBuckets {
            bucket_of: vec![None; n],
        }
    }
    fn update(&mut self, v: u32, b: u64) {
        self.bucket_of[v as usize] = Some(b);
    }
    fn remove(&mut self, v: u32) {
        self.bucket_of[v as usize] = None;
    }
    /// Pop the minimum bucket: returns (id, sorted members).
    fn pop_min(&mut self) -> Option<(u64, Vec<u32>)> {
        let id = self.bucket_of.iter().flatten().copied().min()?;
        let members: Vec<u32> = (0..self.bucket_of.len() as u32)
            .filter(|&v| self.bucket_of[v as usize] == Some(id))
            .collect();
        for &v in &members {
            self.bucket_of[v as usize] = None;
        }
        Some((id, members))
    }
}

/// One step of the randomized bucket workout.
#[derive(Debug, Clone)]
enum BucketOp {
    Update { v: u32, b: u64 },
    Remove { v: u32 },
    Pop,
}

fn bucket_op_strategy(n: u32) -> impl Strategy<Value = BucketOp> {
    prop_oneof![
        (0..n, 0u64..20).prop_map(|(v, b)| BucketOp::Update { v, b }),
        (0..n).prop_map(|v| BucketOp::Remove { v }),
        Just(BucketOp::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lazy-deletion bucket structure agrees with the naive model on
    /// arbitrary operation sequences.
    #[test]
    fn buckets_match_naive_model(
        ops in proptest::collection::vec(bucket_op_strategy(12), 1..80),
    ) {
        let n = 12usize;
        let mut real = gee_repro::ligra::Buckets::new(n, gee_repro::ligra::BucketOrder::Increasing, |_| None);
        let mut naive = NaiveBuckets::new(n);
        for op in ops {
            match op {
                BucketOp::Update { v, b } => {
                    real.update_bucket(v, b);
                    naive.update(v, b);
                }
                BucketOp::Remove { v } => {
                    real.remove(v);
                    naive.remove(v);
                }
                BucketOp::Pop => {
                    let got = real.next_bucket().map(|bk| {
                        let mut vs = bk.vertices;
                        vs.sort_unstable();
                        (bk.id, vs)
                    });
                    prop_assert_eq!(got, naive.pop_min());
                }
            }
            prop_assert_eq!(real.num_live(), naive.bucket_of.iter().flatten().count());
        }
        // Drain both to the end.
        loop {
            let got = real.next_bucket().map(|bk| {
                let mut vs = bk.vertices;
                vs.sort_unstable();
                (bk.id, vs)
            });
            let want = naive.pop_min();
            prop_assert_eq!(&got, &want);
            if got.is_none() {
                break;
            }
        }
    }

    /// Dynamic GEE equals a static recompute after any random update
    /// stream (small instances; the oracle is O(s) per check).
    #[test]
    fn dynamic_matches_static_after_random_stream(
        seed in 0u64..200,
        ops in proptest::collection::vec((0u8..4, 0u32..30, 0u32..30, 1u32..4), 0..60),
    ) {
        let n = 30usize;
        let k = 4usize;
        let el = gee_gen::erdos_renyi_gnm(n, 90, seed);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(n, LabelSpec { num_classes: k, labeled_fraction: 0.5 }, seed ^ 1),
            k,
        );
        let mut dg = gee_core::dynamic::DynamicGee::new(&el, &labels);
        let mut tracked: Vec<(u32, u32, f64)> = Vec::new();
        for (kind, a, b, w) in ops {
            let w = f64::from(w);
            match kind {
                0 => {
                    dg.insert_edge(a, b, w);
                    tracked.push((a, b, w));
                }
                1 if !tracked.is_empty() => {
                    let (u, v, w) = tracked.swap_remove(a as usize % tracked.len());
                    prop_assert!(dg.remove_edge(u, v, w));
                }
                2 => dg.set_label(a, Some(b % k as u32)),
                _ => dg.set_label(a, None),
            }
        }
        let fresh = gee_core::serial_optimized::embed(&dg.edge_list(), &dg.labels());
        let dynamic = dg.embedding();
        let scale = fresh.as_slice().iter().fold(1.0f64, |m, x| m.max(x.abs()));
        prop_assert!(fresh.max_abs_diff(&dynamic) <= 1e-9 * scale);
    }

    /// Δ-stepping equals Dijkstra for random graphs, weights, and Δ.
    #[test]
    fn delta_stepping_matches_dijkstra(
        seed in 0u64..100,
        n in 10usize..80,
        delta in 0.05f64..50.0,
    ) {
        let el = gee_gen::erdos_renyi_gnm(n, n * 4, seed);
        let edges: Vec<Edge> = el
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| Edge::new(e.u, e.v, 0.1 + ((i * 7 + seed as usize) % 13) as f64 * 0.4))
            .collect();
        let g = CsrGraph::from_edge_list(&EdgeList::new_unchecked(n, edges));
        let fast = gee_repro::algos::delta_stepping(&g, 0, delta);
        // Dijkstra oracle.
        let mut dist = vec![f64::INFINITY; n];
        dist[0] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((std::cmp::Reverse(0u64), 0u32));
        while let Some((std::cmp::Reverse(db), u)) = heap.pop() {
            let d = f64::from_bits(db);
            if d > dist[u as usize] {
                continue;
            }
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                let nd = d + g.weight_at(u, i);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push((std::cmp::Reverse(nd.to_bits()), v));
                }
            }
        }
        for v in 0..n {
            if fast[v].is_finite() || dist[v].is_finite() {
                prop_assert!((fast[v] - dist[v]).abs() < 1e-9, "vertex {}: {} vs {}", v, fast[v], dist[v]);
            }
        }
    }

    /// The configuration model reproduces its degree sequence exactly.
    #[test]
    fn config_model_degree_sequence_exact(
        seed in 0u64..200,
        mut degrees in proptest::collection::vec(0usize..8, 2..40),
    ) {
        if degrees.iter().sum::<usize>() % 2 == 1 {
            degrees[0] += 1;
        }
        let el = gee_gen::config_model(&degrees, seed);
        let mut out = vec![0usize; degrees.len()];
        for e in el.edges() {
            out[e.u as usize] += 1;
        }
        prop_assert_eq!(out, degrees);
    }

    /// Watts–Strogatz never loses edges and never produces self-loops.
    #[test]
    fn watts_strogatz_invariants(
        n in 5usize..60,
        half_k in 1usize..3,
        beta in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let k = 2 * half_k;
        prop_assume!(k < n);
        let el = gee_gen::watts_strogatz(gee_gen::WsParams { n, k, beta }, seed);
        prop_assert_eq!(el.num_edges(), n * k);
        prop_assert!(el.edges().iter().all(|e| e.u != e.v));
    }

    /// Parallel edge filtering equals the serial filter for arbitrary
    /// weight thresholds.
    #[test]
    fn filter_graph_matches_serial_filter(
        seed in 0u64..100,
        n in 4usize..60,
        threshold in 0.0f64..10.0,
    ) {
        let base = gee_gen::erdos_renyi_gnm(n, n * 4, seed);
        let weighted = gee_gen::assign_weights(
            &base,
            gee_gen::WeightDistribution::Uniform { lo: 0.0, hi: 10.0 },
            seed ^ 9,
        );
        let g = CsrGraph::from_edge_list(&weighted);
        let filtered = gee_repro::ligra::filter_graph(&g, |_, _, w| w >= threshold);
        let mut expect: Vec<(u32, u32, u64)> = weighted
            .edges()
            .iter()
            .filter(|e| e.w >= threshold)
            .map(|e| (e.u, e.v, e.w.to_bits()))
            .collect();
        let mut got: Vec<(u32, u32, u64)> =
            filtered.iter_edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expect, got);
    }

    /// GEE is linear in the edge set: embedding(kept) + embedding(dropped)
    /// equals embedding(all), entrywise up to FP reassociation.
    #[test]
    fn gee_is_linear_in_the_edge_set(
        seed in 0u64..100,
        p in 0.0f64..1.0,
    ) {
        let n = 40usize;
        let el = gee_gen::erdos_renyi_gnm(n, 200, seed);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(n, LabelSpec { num_classes: 4, labeled_fraction: 0.5 }, seed ^ 3),
            4,
        );
        let kept = gee_graph::transform::sample_edges(&el, p, seed ^ 7);
        // sample_edges keeps each *occurrence* independently; rebuild the
        // dropped multiset by decrementing kept occurrences.
        let mut counts = std::collections::HashMap::new();
        for e in kept.edges() {
            *counts.entry((e.u, e.v, e.w.to_bits())).or_insert(0u32) += 1;
        }
        let mut dropped = Vec::new();
        for e in el.edges() {
            let key = (e.u, e.v, e.w.to_bits());
            match counts.get_mut(&key) {
                Some(c) if *c > 0 => *c -= 1,
                _ => dropped.push(*e),
            }
        }
        let dropped_el = EdgeList::new_unchecked(n, dropped);
        let z_kept = gee_core::serial_optimized::embed(&kept, &labels);
        let z_dropped = gee_core::serial_optimized::embed(&dropped_el, &labels);
        let z_full = gee_core::serial_optimized::embed(&el, &labels);
        for ((a, b), c) in z_kept.as_slice().iter().zip(z_dropped.as_slice()).zip(z_full.as_slice()) {
            prop_assert!((a + b - c).abs() < 1e-9, "linearity violated: {} + {} != {}", a, b, c);
        }
    }
}
