//! Cross-crate integration for the extension features: deterministic
//! kernel, dynamic updates, bucketed algorithms, new generators, and the
//! downstream-inference evaluation stack — every extension validated
//! end-to-end on generated workloads.

use gee_core::dynamic::DynamicGee;
use gee_repro::prelude::*;

/// The deterministic kernel must be bit-identical to the serial reference
/// on every workload family, at several pool sizes.
#[test]
fn deterministic_kernel_bit_exact_on_all_families() {
    let workloads: Vec<EdgeList> = vec![
        gee_gen::erdos_renyi_gnm(1_500, 20_000, 3),
        gee_gen::rmat(11, 30_000, RmatParams::default(), 5),
        gee_gen::preferential_attachment(2_000, 4, 7).symmetrized(),
        gee_gen::watts_strogatz(
            gee_gen::WsParams {
                n: 1_000,
                k: 8,
                beta: 0.2,
            },
            9,
        ),
    ];
    for (i, el) in workloads.iter().enumerate() {
        let n = el.num_vertices();
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                n,
                LabelSpec {
                    num_classes: 12,
                    labeled_fraction: 0.2,
                },
                i as u64,
            ),
            12,
        );
        let reference = gee_core::serial_reference::embed(el, &labels);
        for threads in [1, 3] {
            let z = with_threads(threads, || {
                gee_core::deterministic::embed(n, el.edges(), &labels)
            });
            assert_eq!(
                reference.as_slice(),
                z.as_slice(),
                "workload {i} not bit-exact at {threads} threads"
            );
        }
    }
}

/// A long random stream of dynamic updates must track the static oracle.
#[test]
fn dynamic_gee_tracks_static_recompute_through_long_stream() {
    let el = gee_gen::erdos_renyi_gnm(500, 4_000, 11);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            500,
            LabelSpec {
                num_classes: 8,
                labeled_fraction: 0.3,
            },
            13,
        ),
        8,
    );
    let mut dg = DynamicGee::new(&el, &labels);
    // Deterministic pseudo-random op stream.
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut inserted: Vec<(u32, u32, f64)> = Vec::new();
    for step in 0..400 {
        match next() % 4 {
            0 | 1 => {
                let (u, v) = ((next() % 500) as u32, (next() % 500) as u32);
                let w = 1.0 + (next() % 5) as f64;
                dg.insert_edge(u, v, w);
                inserted.push((u, v, w));
            }
            2 if !inserted.is_empty() => {
                let (u, v, w) = inserted.swap_remove((next() as usize) % inserted.len());
                assert!(
                    dg.remove_edge(u, v, w),
                    "step {step}: tracked edge must exist"
                );
            }
            _ => {
                let v = (next() % 500) as u32;
                let label = if next() % 5 == 0 {
                    None
                } else {
                    Some((next() % 8) as u32)
                };
                dg.set_label(v, label);
            }
        }
        // Spot-check against the oracle at intervals (full check per step
        // would be O(steps · s)).
        if step % 100 == 99 {
            let fresh = gee_core::serial_optimized::embed(&dg.edge_list(), &dg.labels());
            fresh.assert_close(&dg.embedding(), 1e-9);
        }
    }
}

/// Bucketed k-core must agree with the level-scan implementation on every
/// generator family.
#[test]
fn bucketed_kcore_agrees_across_generators() {
    let graphs = [
        gee_gen::erdos_renyi_gnm(800, 6_000, 17).symmetrized(),
        gee_gen::rmat(10, 15_000, RmatParams::default(), 19).symmetrized(),
        gee_gen::watts_strogatz(
            gee_gen::WsParams {
                n: 600,
                k: 6,
                beta: 0.3,
            },
            21,
        ),
        gee_gen::config_model(&gee_gen::power_law_degrees(500, 2.3, 1, 60, 23), 23),
    ];
    for (i, el) in graphs.iter().enumerate() {
        let g = CsrGraph::from_edge_list(el);
        assert_eq!(
            gee_repro::algos::kcore_bucketed(&g),
            gee_repro::algos::kcore(&g),
            "family {i}"
        );
    }
}

/// Δ-stepping must agree with frontier Bellman-Ford on weighted R-MAT.
#[test]
fn delta_stepping_agrees_with_bellman_ford() {
    let base = gee_gen::rmat(10, 12_000, RmatParams::default(), 29).symmetrized();
    // Derive deterministic positive weights from the endpoints.
    let edges: Vec<Edge> = base
        .edges()
        .iter()
        .map(|e| Edge::new(e.u, e.v, 0.25 + f64::from((e.u ^ e.v) % 16)))
        .collect();
    let g = CsrGraph::from_edge_list(&EdgeList::new_unchecked(base.num_vertices(), edges));
    let a = gee_repro::algos::delta_stepping(&g, 0, gee_repro::algos::suggest_delta(&g));
    let b = gee_repro::algos::sssp(&g, 0);
    for v in 0..g.num_vertices() {
        if a[v].is_finite() || b[v].is_finite() {
            assert!(
                (a[v] - b[v]).abs() < 1e-9,
                "vertex {v}: {} vs {}",
                a[v],
                b[v]
            );
        }
    }
}

/// End-to-end inference: GEE embedding of an SBM feeds a linear
/// classifier that must beat chance by a wide margin on held-out
/// vertices, and internal validity indices must prefer the truth
/// clustering over a random one.
#[test]
fn embedding_supports_downstream_inference() {
    let params = SbmParams::balanced(4, 250, 0.08, 0.005);
    let sbm = gee_gen::sbm(&params, 31);
    let n = sbm.edges.num_vertices();
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.2, 33), 4);
    let mut z = gee_core::serial_optimized::embed(&sbm.edges, &labels);
    z.normalize_rows();

    // Train on the labeled vertices, evaluate on the unlabeled rest.
    let (mut xtr, mut ytr, mut xte, mut yte) = (vec![], vec![], vec![], vec![]);
    for v in 0..n as u32 {
        let row = z.row(v).to_vec();
        match labels.get(v) {
            Some(c) => {
                xtr.push(row);
                ytr.push(c);
            }
            None => {
                xte.push(row);
                yte.push(sbm.truth[v as usize]);
            }
        }
    }
    let model = gee_repro::eval::LogisticRegression::fit(
        &xtr,
        &ytr,
        4,
        gee_repro::eval::LogRegOptions::default(),
    );
    let pred = model.predict_batch(&xte);
    let acc = pred.iter().zip(&yte).filter(|(a, b)| a == b).count() as f64 / yte.len() as f64;
    assert!(
        acc > 0.9,
        "logistic regression accuracy {acc} (chance = 0.25)"
    );

    // Internal validity: the truth partition of the embedding must score
    // better than a rotated (shifted) partition.
    let points: Vec<Vec<f64>> = (0..n as u32).take(400).map(|v| z.row(v).to_vec()).collect();
    let truth: Vec<u32> = sbm.truth[..400].to_vec();
    let shifted: Vec<u32> = truth.iter().map(|&c| (c + 1) % 4).collect();
    let mixed: Vec<u32> = (0..400u32).map(|i| i % 4).collect();
    let sil_truth = gee_repro::eval::silhouette(&points, &truth);
    let sil_mixed = gee_repro::eval::silhouette(&points, &mixed);
    assert!(
        sil_truth > sil_mixed + 0.2,
        "silhouette {sil_truth} vs mixed {sil_mixed}"
    );
    // Relabeling (a permutation) scores identically — silhouette is
    // label-invariant.
    let sil_shifted = gee_repro::eval::silhouette(&points, &shifted);
    assert!((sil_truth - sil_shifted).abs() < 1e-12);
}

/// Energy test on GEE embeddings: different SBM blocks reject the null,
/// same block does not (the §I hypothesis-testing use case end-to-end).
#[test]
fn energy_test_separates_blocks_end_to_end() {
    let sbm = gee_gen::sbm(&SbmParams::balanced(2, 300, 0.1, 0.01), 37);
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.25, 39), 2);
    let mut z = gee_core::serial_optimized::embed(&sbm.edges, &labels);
    z.normalize_rows();
    let rows = |block: u32| -> Vec<Vec<f64>> {
        (0..sbm.edges.num_vertices() as u32)
            .filter(|&v| sbm.truth[v as usize] == block && labels.get(v).is_none())
            .take(80)
            .map(|v| z.row(v).to_vec())
            .collect()
    };
    let (a, b) = (rows(0), rows(1));
    assert!(gee_repro::eval::energy_test(&a, &b, 200, 41).rejects_at(0.01));
    let (a1, a2) = a.split_at(a.len() / 2);
    assert!(!gee_repro::eval::energy_test(a1, a2, 200, 43).rejects_at(0.01));
}

/// Generators compose with the full pipeline: every new family embeds,
/// and the mass invariant holds.
#[test]
fn new_generators_flow_through_pipeline() {
    let families: Vec<(&str, EdgeList)> = vec![
        (
            "watts-strogatz",
            gee_gen::watts_strogatz(
                gee_gen::WsParams {
                    n: 2_000,
                    k: 10,
                    beta: 0.1,
                },
                45,
            ),
        ),
        (
            "config-model",
            gee_gen::config_model(&gee_gen::power_law_degrees(2_000, 2.4, 1, 100, 47), 47),
        ),
        (
            "config-simple",
            gee_gen::config_model_simple(&gee_gen::power_law_degrees(1_000, 2.2, 2, 50, 49), 49),
        ),
    ];
    for (name, el) in families {
        let n = el.num_vertices();
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                n,
                LabelSpec {
                    num_classes: 10,
                    labeled_fraction: 0.15,
                },
                51,
            ),
            10,
        );
        let g = CsrGraph::from_edge_list(&el);
        let z = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
        gee_core::diagnostics::assert_healthy(&z, &el, &labels, 1e-6);
        let _ = name;
    }
}

/// The GEE→spectral convergence claim, checked with the alignment tool
/// spectral theory requires: both embeddings are identifiable only up to
/// an orthogonal transform, so they are compared after Procrustes
/// alignment. With correct vertex correspondence the aligned residual
/// must be far below the residual of a correspondence-destroying row
/// rotation of the same matrix.
#[test]
fn gee_aligns_with_spectral_embedding_up_to_rotation() {
    let k = 3usize;
    let sbm = gee_gen::sbm(&SbmParams::balanced(k, 200, 0.15, 0.01), 61);
    let n = sbm.edges.num_vertices();
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.3, 63), k);
    let mut gee = gee_core::serial_optimized::embed(&sbm.edges, &labels);
    gee.normalize_rows();

    let g = CsrGraph::from_edge_list(&sbm.edges);
    let spectral = gee_repro::eval::spectral_embedding(
        &g,
        gee_repro::eval::SpectralOptions {
            k,
            iterations: 80,
            seed: 65,
            scale_by_eigenvalues: true,
        },
    );
    // Row-normalize the spectral embedding the same way.
    let mut spec = spectral;
    for row in spec.chunks_mut(k) {
        let norm: f64 = row.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            row.iter_mut().for_each(|x| *x /= norm);
        }
    }

    let aligned = gee_repro::eval::orthogonal_procrustes(gee.as_slice(), &spec, n, k);
    // Destroy the vertex correspondence with a pseudo-random row
    // permutation (a *block-consistent* shift would not do: permuting
    // symmetric block centroids is itself an orthogonal transform).
    let shuffled: Vec<f64> = {
        let mut s = vec![0.0; n * k];
        for v in 0..n {
            let w = (v * 7 + 13) % n;
            s[w * k..(w + 1) * k].copy_from_slice(&gee.as_slice()[v * k..(v + 1) * k]);
        }
        s
    };
    let broken = gee_repro::eval::orthogonal_procrustes(&shuffled, &spec, n, k);
    assert!(
        aligned.relative_residual < 0.6 * broken.relative_residual,
        "aligned {} vs broken {}",
        aligned.relative_residual,
        broken.relative_residual
    );
}

/// Buckets + engine: Δ-stepping on a Watts–Strogatz ring with unit
/// weights equals BFS depth (every bucket is one BFS level when Δ = 1).
#[test]
fn delta_stepping_on_unit_weights_is_bfs() {
    let el = gee_gen::watts_strogatz(
        gee_gen::WsParams {
            n: 800,
            k: 6,
            beta: 0.05,
        },
        53,
    );
    let g = CsrGraph::from_edge_list(&el);
    let d = gee_repro::algos::delta_stepping(&g, 0, 1.0);
    let bfs = gee_repro::algos::bfs_distances(&g, 0);
    for v in 0..800 {
        if bfs[v] == u32::MAX {
            assert!(d[v].is_infinite());
        } else {
            assert_eq!(d[v], f64::from(bfs[v]), "vertex {v}");
        }
    }
}
