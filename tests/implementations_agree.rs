//! Cross-crate integration: all five executors of the GEE semantics (the
//! four Table I implementations plus the bytecode interpreter) agree on
//! every workload family the benchmarks use.

use gee_repro::prelude::*;

fn check_agreement(el: &EdgeList, labels: &Labels) {
    let reference = gee_core::serial_reference::embed(el, labels);
    let optimized = gee_core::serial_optimized::embed(el, labels);
    assert_eq!(
        reference.as_slice(),
        optimized.as_slice(),
        "optimized must be bit-identical"
    );
    let interp = gee_repro::interp::embed(el, labels);
    assert_eq!(
        reference.as_slice(),
        interp.as_slice(),
        "interpreter must be bit-identical"
    );
    let g = CsrGraph::from_edge_list(el);
    let serial = with_threads(1, || {
        gee_core::ligra::embed(&g, labels, AtomicsMode::Atomic)
    });
    reference.assert_close(&serial, 1e-9);
    let parallel = gee_core::ligra::embed(&g, labels, AtomicsMode::Atomic);
    reference.assert_close(&parallel, 1e-9);
}

#[test]
fn agree_on_erdos_renyi() {
    let el = gee_gen::erdos_renyi_gnm(2_000, 30_000, 17);
    let labels =
        Labels::from_options_with_k(&gee_gen::random_labels(2_000, LabelSpec::default(), 3), 50);
    check_agreement(&el, &labels);
}

#[test]
fn agree_on_rmat() {
    let el = gee_gen::rmat(12, 50_000, RmatParams::default(), 23);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            el.num_vertices(),
            LabelSpec {
                num_classes: 50,
                labeled_fraction: 0.1,
            },
            5,
        ),
        50,
    );
    check_agreement(&el, &labels);
}

#[test]
fn agree_on_sbm_with_truth_labels() {
    let sbm = gee_gen::sbm(&SbmParams::balanced(5, 100, 0.2, 0.01), 7);
    let labels = Labels::from_options(&gee_gen::subsample_labels(&sbm.truth, 0.3, 9));
    check_agreement(&sbm.edges, &labels);
}

#[test]
fn agree_on_preferential_attachment() {
    let el = gee_gen::preferential_attachment(3_000, 4, 31).symmetrized();
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            3_000,
            LabelSpec {
                num_classes: 10,
                labeled_fraction: 0.2,
            },
            13,
        ),
        10,
    );
    check_agreement(&el, &labels);
}

#[test]
fn agree_on_weighted_graph() {
    let base = gee_gen::erdos_renyi_gnm(500, 8_000, 3);
    let el = EdgeList::new_unchecked(
        500,
        base.edges()
            .iter()
            .enumerate()
            .map(|(i, e)| Edge::new(e.u, e.v, 0.1 + (i % 31) as f64 * 0.13))
            .collect(),
    );
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            500,
            LabelSpec {
                num_classes: 8,
                labeled_fraction: 0.5,
            },
            21,
        ),
        8,
    );
    check_agreement(&el, &labels);
}

#[test]
fn agree_on_laplacian_variant() {
    let el = gee_gen::erdos_renyi_gnm(800, 10_000, 5);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            800,
            LabelSpec {
                num_classes: 6,
                labeled_fraction: 0.3,
            },
            2,
        ),
        6,
    );
    let norm = gee_core::laplacian::normalize(&el);
    check_agreement(&norm, &labels);
}

#[test]
fn agree_under_many_seeds() {
    for seed in 0..10u64 {
        let el = gee_gen::erdos_renyi_gnm(300, 3_000, seed);
        let labels = Labels::from_options_with_k(
            &gee_gen::random_labels(
                300,
                LabelSpec {
                    num_classes: 4,
                    labeled_fraction: 0.25,
                },
                seed,
            ),
            4,
        );
        check_agreement(&el, &labels);
    }
}

#[test]
fn dispatcher_covers_every_implementation() {
    let el = gee_gen::erdos_renyi_gnm(200, 2_000, 3);
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            200,
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.4,
            },
            4,
        ),
        5,
    );
    let opts = GeeOptions::default();
    let a = gee_core::embed(&el, &labels, Implementation::Reference, opts);
    for imp in [
        Implementation::Optimized,
        Implementation::LigraSerial,
        Implementation::LigraParallel,
    ] {
        let z = gee_core::embed(&el, &labels, imp, opts);
        a.assert_close(&z, 1e-9);
    }
}
