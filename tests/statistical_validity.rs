//! Cross-crate integration: the *statistical* premise of the paper — GEE
//! embeddings carry community structure (GEE → spectral convergence, §I) —
//! holds for the parallel implementation on planted-partition graphs.

use gee_repro::eval::{adjusted_rand_index, kmeans_best_of, purity, scatter_ratio, KMeansOptions};
use gee_repro::prelude::*;

/// Embed an SBM with a fraction of ground-truth labels and cluster the
/// result; returns the ARI against the planted truth.
fn sbm_recovery_ari(blocks: usize, per_block: usize, label_frac: f64, seed: u64) -> f64 {
    let sbm = gee_gen::sbm(&SbmParams::balanced(blocks, per_block, 0.25, 0.01), seed);
    let n = sbm.edges.num_vertices();
    let labels = Labels::from_options_with_k(
        &gee_gen::subsample_labels(&sbm.truth, label_frac, seed ^ 0x77),
        blocks,
    );
    let g = CsrGraph::from_edge_list(&sbm.edges);
    let mut z = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    z.normalize_rows();
    let km = kmeans_best_of(
        z.as_slice(),
        n,
        blocks,
        KMeansOptions::new(blocks, seed ^ 0x11),
        8,
    );
    adjusted_rand_index(&km.assignment, &sbm.truth)
}

#[test]
fn semi_supervised_recovery_on_sbm() {
    let ari = sbm_recovery_ari(4, 200, 0.10, 42);
    assert!(
        ari > 0.85,
        "10% labels should recover a well-separated SBM; ARI = {ari:.3}"
    );
}

#[test]
fn more_labels_do_not_hurt() {
    let lo = sbm_recovery_ari(3, 150, 0.05, 7);
    let hi = sbm_recovery_ari(3, 150, 0.5, 7);
    assert!(
        hi >= lo - 0.05,
        "more supervision should not hurt: 5% → {lo:.3}, 50% → {hi:.3}"
    );
}

#[test]
fn embedding_separates_classes_geometrically() {
    let sbm = gee_gen::sbm(&SbmParams::balanced(3, 150, 0.12, 0.004), 19);
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.2, 3), 3);
    let g = CsrGraph::from_edge_list(&sbm.edges);
    let mut z = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    z.normalize_rows();
    let r = scatter_ratio(z.as_slice(), z.num_vertices(), z.dim(), &sbm.truth);
    assert!(
        r < 0.5,
        "within/between scatter should be small; got {r:.3}"
    );
}

#[test]
fn unsupervised_gee_matches_leiden_quality() {
    // Two fully-unsupervised pipelines on the same SBM: iterative GEE
    // clustering vs Leiden; both should recover the planted partition.
    let sbm = gee_gen::sbm(&SbmParams::balanced(3, 120, 0.15, 0.01), 23);
    let g = CsrGraph::from_edge_list(&sbm.edges);

    let gee =
        gee_core::unsupervised::cluster(&g, gee_core::unsupervised::UnsupervisedOptions::new(3, 5));
    let ari_gee = adjusted_rand_index(&gee.assignment, &sbm.truth);

    let leiden = gee_repro::community::leiden(&g, gee_repro::community::LeidenOptions::default());
    let ari_leiden = adjusted_rand_index(leiden.membership(), &sbm.truth);

    assert!(ari_gee > 0.8, "iterative GEE ARI {ari_gee:.3}");
    assert!(ari_leiden > 0.8, "leiden ARI {ari_leiden:.3}");
}

#[test]
fn purity_of_labeled_vertices_embedding() {
    // Labeled vertices' strongest coordinate should usually be their own
    // class on an assortative graph.
    let sbm = gee_gen::sbm(&SbmParams::balanced(4, 100, 0.2, 0.01), 31);
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.5, 1), 4);
    let g = CsrGraph::from_edge_list(&sbm.edges);
    let z = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    let argmax: Vec<u32> = (0..z.num_vertices() as u32)
        .map(|v| {
            z.row(v)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i as u32)
                .unwrap()
        })
        .collect();
    let p = purity(&argmax, &sbm.truth);
    assert!(p > 0.9, "argmax-class purity {p:.3}");
}

#[test]
fn laplacian_variant_also_recovers() {
    let sbm = gee_gen::sbm(&SbmParams::balanced(3, 150, 0.12, 0.006), 47);
    let labels = Labels::from_options_with_k(&gee_gen::subsample_labels(&sbm.truth, 0.15, 2), 3);
    let norm = gee_core::laplacian::normalize(&sbm.edges);
    let g = CsrGraph::from_edge_list(&norm);
    let mut z = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    z.normalize_rows();
    // Multiple restarts: a single Lloyd run from one seed can land in a
    // local optimum just under the threshold.
    let km = kmeans_best_of(
        z.as_slice(),
        z.num_vertices(),
        3,
        KMeansOptions::new(3, 9),
        5,
    );
    let ari = adjusted_rand_index(&km.assignment, &sbm.truth);
    assert!(ari > 0.8, "laplacian-variant ARI {ari:.3}");
}
