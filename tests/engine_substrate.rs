//! Cross-crate integration: the Ligra-style engine substrate behaves
//! correctly under composition — algorithms from `gee-algos` on generated
//! graphs, I/O round trips feeding the engine, and thread-count
//! independence of results.

use gee_repro::algos;
use gee_repro::graph::io::{binary, edgelist};
use gee_repro::prelude::*;

#[test]
fn bfs_pagerank_cc_compose_on_generated_graph() {
    let el = gee_gen::rmat(11, 20_000, RmatParams::default(), 3).symmetrized();
    let g = CsrGraph::from_edge_list(&el);
    let n = g.num_vertices();

    let cc = algos::connected_components(&g);
    let dist = algos::bfs_distances(&g, 0);
    // BFS reachability from 0 must be exactly the component of 0.
    for v in 0..n as u32 {
        let same_component = cc[v as usize] == cc[0];
        let reached = dist[v as usize] != u32::MAX;
        assert_eq!(same_component, reached, "vertex {v}");
    }

    let pr = algos::pagerank(&g, algos::PageRankOptions::default());
    assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
}

#[test]
fn results_independent_of_thread_count() {
    let el = gee_gen::rmat(10, 10_000, RmatParams::default(), 5).symmetrized();
    let g = CsrGraph::from_edge_list(&el);
    let cc1 = with_threads(1, || algos::connected_components(&g));
    let cc8 = with_threads(8, || algos::connected_components(&g));
    assert_eq!(cc1, cc8, "CC labels must not depend on parallelism");

    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            g.num_vertices(),
            LabelSpec {
                num_classes: 5,
                labeled_fraction: 0.3,
            },
            7,
        ),
        5,
    );
    let z1 = with_threads(1, || {
        gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
    });
    let z8 = with_threads(8, || {
        gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic)
    });
    z1.assert_close(&z8, 1e-9);
}

#[test]
fn io_round_trip_feeds_engine() {
    let el = gee_gen::erdos_renyi_gnm(400, 4_000, 9);
    // Text round trip.
    let mut text = Vec::new();
    edgelist::write(&mut text, &el).unwrap();
    let back = edgelist::read(std::io::Cursor::new(text), Some(400)).unwrap();
    assert_eq!(back, el);
    // Binary round trip through CSR.
    let g = CsrGraph::from_edge_list(&el);
    let mut bin = Vec::new();
    binary::write(&mut bin, &g).unwrap();
    let g2 = binary::read(bin.as_slice()).unwrap();
    // Same embedding from both.
    let labels = Labels::from_options_with_k(
        &gee_gen::random_labels(
            400,
            LabelSpec {
                num_classes: 4,
                labeled_fraction: 0.5,
            },
            1,
        ),
        4,
    );
    let z1 = gee_core::ligra::embed(&g, &labels, AtomicsMode::Atomic);
    let z2 = gee_core::ligra::embed(&g2, &labels, AtomicsMode::Atomic);
    z1.assert_close(&z2, 1e-12);
}

#[test]
fn triangle_count_and_kcore_on_cliques() {
    // 3 disjoint K_5s: 10 triangles and core 4 each.
    let mut builder = GraphBuilder::new(15);
    for c in 0..3u32 {
        for i in 0..5 {
            for j in (i + 1)..5 {
                builder = builder.add_unit_edge(c * 5 + i, c * 5 + j);
            }
        }
    }
    let g = builder.symmetrize(true).build_csr().unwrap();
    assert_eq!(algos::triangle_count(&g), 30);
    assert!(algos::kcore(&g).iter().all(|&c| c == 4));
    assert_eq!(
        algos::cc::num_components(&algos::connected_components(&g)),
        3
    );
}

#[test]
fn betweenness_on_barbell() {
    // Two K_4s joined by a path through vertex 8: the bridge dominates.
    let mut b = GraphBuilder::new(9);
    for i in 0..4u32 {
        for j in (i + 1)..4 {
            b = b.add_unit_edge(i, j).add_unit_edge(4 + i, 4 + j);
        }
    }
    b = b.add_unit_edge(0, 8).add_unit_edge(8, 4);
    let g = b.symmetrize(true).build_csr().unwrap();
    // From source 0 the bridge vertex 8 relays all four far-clique targets.
    let dep = algos::betweenness(&g, 0);
    assert!(
        (dep[8] - 4.0).abs() < 1e-9,
        "bridge dependency should be 4: {dep:?}"
    );
    // Exclude the source itself: Brandes' δ_s(s) is defined but never
    // counted toward centrality.
    let max_other = (1..8u32).map(|v| dep[v as usize]).fold(0.0, f64::max);
    assert!(
        dep[8] >= max_other,
        "bridge vertex should dominate: {dep:?}"
    );
}
